"""Unit tests for the exception hierarchy (repro.exceptions)."""

import pytest

from repro import exceptions


def test_everything_derives_from_repro_error():
    leaves = [
        exceptions.PageError,
        exceptions.BufferPoolError,
        exceptions.SequenceNotFoundError,
        exceptions.IndexNotBuiltError,
        exceptions.QueryTooShortError,
        exceptions.ConfigurationError,
        exceptions.BudgetExceededError,
    ]
    for leaf in leaves:
        assert issubclass(leaf, exceptions.ReproError)


def test_storage_family():
    assert issubclass(exceptions.PageError, exceptions.StorageError)
    assert issubclass(
        exceptions.SequenceNotFoundError, exceptions.StorageError
    )


def test_query_family():
    assert issubclass(exceptions.QueryTooShortError, exceptions.QueryError)


def test_index_family():
    assert issubclass(exceptions.IndexNotBuiltError, exceptions.IndexError_)
    # The trailing-underscore class must not shadow the builtin.
    assert exceptions.IndexError_ is not IndexError


def test_one_catch_all_at_api_boundary(walk_db):
    with pytest.raises(exceptions.ReproError):
        walk_db.search([0.0] * 5, k=1)  # too short
    with pytest.raises(exceptions.ReproError):
        walk_db.search(
            walk_db.store.peek_subsequence(0, 0, 48).copy(), k=0
        )
