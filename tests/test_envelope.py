"""Unit tests for query envelopes (repro.core.envelope)."""

import numpy as np
import pytest

from repro.core.envelope import Envelope, envelope_bounds, query_envelope
from repro.exceptions import QueryError


def naive_envelope(values, rho):
    """O(n * rho) reference implementation."""
    n = len(values)
    lower = np.empty(n)
    upper = np.empty(n)
    for i in range(n):
        window = values[max(0, i - rho) : min(n, i + rho + 1)]
        lower[i] = min(window)
        upper[i] = max(window)
    return lower, upper


class TestQueryEnvelope:
    def test_contains_query(self):
        rng = np.random.default_rng(1)
        q = rng.standard_normal(50)
        env = query_envelope(q, rho=4)
        assert np.all(env.lower <= q)
        assert np.all(env.upper >= q)

    def test_rho_zero_is_the_query_itself(self):
        q = np.array([1.0, -2.0, 3.0])
        env = query_envelope(q, rho=0)
        assert env.lower.tolist() == q.tolist()
        assert env.upper.tolist() == q.tolist()

    @pytest.mark.parametrize("rho", [1, 2, 5, 13])
    def test_matches_naive_implementation(self, rho):
        rng = np.random.default_rng(rho)
        q = rng.standard_normal(64)
        env = query_envelope(q, rho=rho)
        lower, upper = naive_envelope(q.tolist(), rho)
        np.testing.assert_allclose(env.lower, lower)
        np.testing.assert_allclose(env.upper, upper)

    def test_rho_larger_than_sequence(self):
        q = np.array([3.0, 1.0, 2.0])
        env = query_envelope(q, rho=10)
        assert env.lower.tolist() == [1.0, 1.0, 1.0]
        assert env.upper.tolist() == [3.0, 3.0, 3.0]

    def test_wider_rho_widens_envelope(self):
        rng = np.random.default_rng(2)
        q = rng.standard_normal(40)
        narrow = query_envelope(q, rho=2)
        wide = query_envelope(q, rho=6)
        assert np.all(wide.lower <= narrow.lower)
        assert np.all(wide.upper >= narrow.upper)

    def test_rejects_bad_inputs(self):
        with pytest.raises(QueryError):
            query_envelope([], rho=1)
        with pytest.raises(QueryError):
            query_envelope([1.0], rho=-1)
        with pytest.raises(QueryError):
            query_envelope(np.zeros((2, 2)), rho=1)

    def test_envelope_is_read_only(self):
        env = query_envelope([1.0, 2.0, 3.0], rho=1)
        with pytest.raises(ValueError):
            env.lower[0] = 0.0


class TestSlice:
    def test_slice_values(self):
        env = query_envelope([1.0, 5.0, 2.0, 8.0], rho=1)
        part = env.slice(1, 2)
        assert part.lower.tolist() == env.lower[1:3].tolist()
        assert len(part) == 2

    def test_slice_bounds_checked(self):
        env = query_envelope([1.0, 2.0, 3.0], rho=0)
        with pytest.raises(QueryError):
            env.slice(2, 2)
        with pytest.raises(QueryError):
            env.slice(-1, 2)

    def test_mismatched_halves_rejected(self):
        with pytest.raises(QueryError):
            Envelope(lower=np.zeros(3), upper=np.zeros(4))


def test_envelope_bounds():
    env = query_envelope([1.0, 5.0, -2.0], rho=1)
    assert envelope_bounds(env) == (-2.0, 5.0)
