"""Differential conformance tests: vectorized kernels vs scalar oracles.

The contract (module docstrings of :mod:`repro.core.distance` and
:mod:`repro.core.lower_bounds`):

* DTW at ``p == 2``, envelopes, and PAA are **bit-for-bit** equal to the
  scalar oracles in :mod:`repro.core.reference`;
* DTW at ``p != 2`` agrees to within 1e-9 relative (NumPy's vectorized
  ``pow`` may differ from libm by an ULP per cell);
* every ``*_batch`` lower bound is bit-for-bit equal to its scalar
  production counterpart for every ``p``, and within 1e-9 of the
  reference oracle (whose sequential summation order differs);
* all kernels accumulate in float64 regardless of the input dtype.

Inputs are generated from hypothesis-drawn seeds (the shrinker works on
the seed, the arrays stay cheap), the style the rest of the property
suite uses.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    dtw_pow,
    dtw_pow_batch,
    dtw_pow_wavefront,
    lp_distance,
)
from repro.core.envelope import envelope_batch, query_envelope
from repro.core.lower_bounds import (
    batch_lower_bounds,
    lb_keogh_pow,
    lb_keogh_pow_batch,
    lb_paa_pow,
    lb_paa_pow_batch,
    maxdist_pow,
    maxdist_pow_batch,
    mdmwp_pow,
    mdmwp_pow_batch,
    mindist_pow,
    mindist_pow_batch,
)
from repro.core.paa import paa, paa_batch
from repro.core.reference import (
    reference_dtw_pow,
    reference_envelope,
    reference_lb_keogh_pow,
    reference_lb_paa_pow,
    reference_maxdist_pow,
    reference_mindist_pow,
    reference_paa,
)
from repro.exceptions import QueryError

seeds = st.integers(0, 100_000)


def rel_close(a, b, tol=1e-9):
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


class TestDTWConformance:
    @settings(max_examples=60, deadline=None)
    @given(seeds, st.integers(0, 8))
    def test_batch_matches_oracle_bitwise_p2(self, seed, rho):
        rng = np.random.default_rng(seed)
        lanes = int(rng.integers(1, 7))
        n = int(rng.integers(1, 41))
        query = rng.standard_normal(n)
        batch = rng.standard_normal((lanes, n))
        expected = np.array(
            [reference_dtw_pow(batch[i], query, rho) for i in range(lanes)]
        )
        got = dtw_pow_batch(batch, query, rho)
        assert np.array_equal(expected, got)

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(1, 6))
    def test_batch_unequal_lengths_within_band(self, seed, rho):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 24))
        m = n + int(rng.integers(-rho, rho + 1))
        if m < 1:
            m = 1
        query = rng.standard_normal(n)
        batch = rng.standard_normal((3, m))
        expected = np.array(
            [reference_dtw_pow(batch[i], query, rho) for i in range(3)]
        )
        assert np.array_equal(expected, dtw_pow_batch(batch, query, rho))

    def test_batch_band_infeasible_is_inf(self):
        rng = np.random.default_rng(0)
        query = rng.standard_normal(10)
        batch = rng.standard_normal((4, 14))
        got = dtw_pow_batch(batch, query, rho=3)
        assert np.isinf(got).all()

    @settings(max_examples=30, deadline=None)
    @given(seeds, st.sampled_from([1.0, 1.5, 3.0]), st.integers(0, 6))
    def test_batch_matches_oracle_p_not_2(self, seed, p, rho):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 32))
        query = rng.standard_normal(n)
        batch = rng.standard_normal((4, n))
        got = dtw_pow_batch(batch, query, rho, p=p)
        for i in range(4):
            assert rel_close(
                reference_dtw_pow(batch[i], query, rho, p=p), float(got[i])
            )

    @settings(max_examples=60, deadline=None)
    @given(seeds, st.integers(0, 8))
    def test_scalar_and_wavefront_paths_bitwise_identical(self, seed, rho):
        # dtw_pow dispatches on the band width; both kernels must agree
        # bit for bit so the dispatch is purely a speed decision.
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 48))
        s = rng.standard_normal(n)
        q = rng.standard_normal(n)
        assert dtw_pow(s, q, rho) == dtw_pow_wavefront(s, q, rho)

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_early_abandoned_lanes_truly_exceed_threshold(self, seed):
        rng = np.random.default_rng(seed)
        n = 24
        rho = 3
        query = rng.standard_normal(n).cumsum()
        batch = rng.standard_normal((8, n)).cumsum(axis=1)
        full = np.array(
            [reference_dtw_pow(batch[i], query, rho) for i in range(8)]
        )
        threshold_pow = float(np.median(full))
        got = dtw_pow_batch(batch, query, rho, threshold_pow=threshold_pow)
        for i in range(8):
            if math.isinf(got[i]):
                assert full[i] > threshold_pow
            else:
                assert got[i] == full[i]

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_scalar_early_abandon_consistent(self, seed):
        rng = np.random.default_rng(seed)
        n = 20
        rho = 2
        s = rng.standard_normal(n).cumsum()
        q = rng.standard_normal(n).cumsum()
        full = reference_dtw_pow(s, q, rho)
        got = dtw_pow(s, q, rho, threshold_pow=full / 2.0)
        if math.isinf(got):
            assert full > full / 2.0
        else:
            assert got == full


class TestDTWEdgeCases:
    def test_length_one_sequences(self):
        got = dtw_pow_batch([[3.0], [5.0], [7.0]], [4.0], rho=0)
        assert got.tolist() == [1.0, 1.0, 9.0]
        assert dtw_pow([3.0], [4.0], rho=0) == 1.0

    def test_rho_zero_equals_lp_squared(self):
        rng = np.random.default_rng(7)
        q = rng.standard_normal(17)
        batch = rng.standard_normal((5, 17))
        got = dtw_pow_batch(batch, q, rho=0)
        for i in range(5):
            assert rel_close(float(got[i]), lp_distance(batch[i], q) ** 2)

    def test_rho_wider_than_query_is_unconstrained(self):
        rng = np.random.default_rng(9)
        q = rng.standard_normal(12)
        batch = rng.standard_normal((3, 12))
        wide = dtw_pow_batch(batch, q, rho=len(q) + 5)
        expected = np.array(
            [reference_dtw_pow(batch[i], q, len(q) + 5) for i in range(3)]
        )
        assert np.array_equal(wide, expected)

    def test_constant_sequences(self):
        q = np.full(16, 2.5)
        batch = np.stack([np.full(16, 2.5), np.full(16, 3.5)])
        got = dtw_pow_batch(batch, q, rho=2)
        assert got[0] == 0.0
        assert got[1] == reference_dtw_pow(batch[1], q, 2)

    def test_empty_batch(self):
        got = dtw_pow_batch(np.empty((0, 10)), np.zeros(10), rho=1)
        assert got.shape == (0,)

    def test_zero_length_rows(self):
        assert (
            dtw_pow_batch(np.empty((3, 0)), np.empty(0), rho=0) == 0.0
        ).all()
        assert np.isinf(
            dtw_pow_batch(np.empty((3, 0)), np.zeros(4), rho=1)
        ).all()

    def test_nan_rejected_everywhere(self):
        clean = np.zeros(8)
        dirty = clean.copy()
        dirty[3] = np.nan
        with pytest.raises(QueryError):
            dtw_pow_batch(np.stack([clean, dirty]), clean, rho=1)
        with pytest.raises(QueryError):
            dtw_pow_batch(np.stack([clean, clean]), dirty, rho=1)
        # Both dispatch paths of the single-pair API.
        with pytest.raises(QueryError):
            dtw_pow(dirty, clean, rho=1)
        with pytest.raises(QueryError):
            dtw_pow(clean, dirty, rho=1)
        with pytest.raises(QueryError):
            dtw_pow_wavefront(dirty, clean, rho=1)

    def test_negative_rho_rejected(self):
        with pytest.raises(QueryError):
            dtw_pow_batch(np.zeros((1, 4)), np.zeros(4), rho=-1)
        with pytest.raises(QueryError):
            dtw_pow(np.zeros(4), np.zeros(4), rho=-1)

    def test_shape_validation(self):
        with pytest.raises(QueryError):
            dtw_pow_batch(np.zeros(4), np.zeros(4), rho=1)  # 1-D batch
        with pytest.raises(QueryError):
            dtw_pow_batch(np.zeros((2, 4)), np.zeros((2, 4)), rho=1)


class TestEnvelopePAAConformance:
    @settings(max_examples=60, deadline=None)
    @given(seeds, st.integers(0, 10))
    def test_envelope_batch_bitwise(self, seed, rho):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6))
        n = int(rng.integers(1, 40))
        batch = rng.standard_normal((rows, n))
        lower, upper = envelope_batch(batch, rho)
        for i in range(rows):
            ref_lower, ref_upper = reference_envelope(batch[i], rho)
            env = query_envelope(batch[i], rho)
            assert np.array_equal(lower[i], ref_lower)
            assert np.array_equal(upper[i], ref_upper)
            assert np.array_equal(lower[i], env.lower)
            assert np.array_equal(upper[i], env.upper)

    def test_envelope_batch_rho_wider_than_rows(self):
        batch = np.array([[1.0, -2.0, 3.0]])
        lower, upper = envelope_batch(batch, rho=50)
        assert lower.tolist() == [[-2.0, -2.0, -2.0]]
        assert upper.tolist() == [[3.0, 3.0, 3.0]]

    def test_envelope_batch_validation(self):
        with pytest.raises(QueryError):
            envelope_batch(np.zeros((2, 4)), rho=-1)
        with pytest.raises(QueryError):
            envelope_batch(np.zeros(4), rho=1)
        with pytest.raises(QueryError):
            envelope_batch(np.empty((2, 0)), rho=1)

    @settings(max_examples=60, deadline=None)
    @given(seeds, st.integers(1, 4), st.integers(1, 6))
    def test_paa_batch_bitwise(self, seed, features, seg):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6))
        batch = rng.standard_normal((rows, features * seg))
        got = paa_batch(batch, features)
        for i in range(rows):
            assert np.array_equal(got[i], paa(batch[i], features))
            assert np.array_equal(got[i], reference_paa(batch[i], features))

    def test_paa_batch_validation(self):
        with pytest.raises(QueryError):
            paa_batch(np.zeros(8), 2)


def _lb_inputs(seed, features=6):
    rng = np.random.default_rng(seed)
    halves = np.sort(rng.standard_normal((2, features)), axis=0)
    points = rng.standard_normal((8, features))
    rects = np.sort(rng.standard_normal((2, 8, features)), axis=0)
    return halves[0], halves[1], points, rects[0], rects[1]


class TestLowerBoundConformance:
    @settings(max_examples=60, deadline=None)
    @given(seeds, st.sampled_from([2.0, 3.0]))
    def test_lb_keogh_batch_bitwise_vs_scalar(self, seed, p):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        rho = int(rng.integers(0, 6))
        env = query_envelope(rng.standard_normal(n), rho)
        rows = rng.standard_normal((6, n))
        got = lb_keogh_pow_batch(env, rows, p)
        for i in range(6):
            assert lb_keogh_pow(env, rows[i], p) == got[i]
            assert rel_close(
                reference_lb_keogh_pow(env.lower, env.upper, rows[i], p),
                float(got[i]),
            )

    @settings(max_examples=60, deadline=None)
    @given(seeds, st.sampled_from([2.0, 3.0]), st.integers(1, 8))
    def test_lb_paa_batch_bitwise_vs_scalar(self, seed, p, seg_len):
        lower, upper, points, _, _ = _lb_inputs(seed)
        got = lb_paa_pow_batch(lower, upper, points, seg_len, p)
        for i in range(points.shape[0]):
            assert lb_paa_pow(lower, upper, points[i], seg_len, p) == got[i]
            assert rel_close(
                reference_lb_paa_pow(lower, upper, points[i], seg_len, p),
                float(got[i]),
            )

    @settings(max_examples=60, deadline=None)
    @given(seeds, st.sampled_from([2.0, 3.0]), st.integers(1, 8))
    def test_mindist_maxdist_batch_bitwise_vs_scalar(self, seed, p, seg_len):
        lower, upper, _, lows, highs = _lb_inputs(seed)
        near = mindist_pow_batch(lower, upper, lows, highs, seg_len, p)
        far = maxdist_pow_batch(lower, upper, lows, highs, seg_len, p)
        for i in range(lows.shape[0]):
            assert (
                mindist_pow(lower, upper, lows[i], highs[i], seg_len, p)
                == near[i]
            )
            assert (
                maxdist_pow(lower, upper, lows[i], highs[i], seg_len, p)
                == far[i]
            )
            assert rel_close(
                reference_mindist_pow(
                    lower, upper, lows[i], highs[i], seg_len, p
                ),
                float(near[i]),
            )
            assert rel_close(
                reference_maxdist_pow(
                    lower, upper, lows[i], highs[i], seg_len, p
                ),
                float(far[i]),
            )

    @settings(max_examples=60, deadline=None)
    @given(seeds, st.integers(1, 8))
    def test_degenerate_rect_identity(self, seed, seg_len):
        # A leaf entry's PAA point as a low == high rectangle: MINDIST,
        # LB_PAA, and MAXDIST must coincide bit for bit — this is what
        # lets batch_lower_bounds score mixed leaf/node entry blocks.
        lower, upper, points, _, _ = _lb_inputs(seed)
        point_vals = lb_paa_pow_batch(lower, upper, points, seg_len)
        near = mindist_pow_batch(lower, upper, points, points, seg_len)
        far = maxdist_pow_batch(lower, upper, points, points, seg_len)
        assert np.array_equal(point_vals, near)
        assert np.array_equal(point_vals, far)

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(1, 8))
    def test_batch_lower_bounds_entry_point(self, seed, seg_len):
        lower, upper, _, lows, highs = _lb_inputs(seed)
        near, far = batch_lower_bounds(
            lower, upper, lows, highs, seg_len, include_far=True
        )
        assert np.array_equal(
            near, mindist_pow_batch(lower, upper, lows, highs, seg_len)
        )
        assert far is not None
        assert np.array_equal(
            far, maxdist_pow_batch(lower, upper, lows, highs, seg_len)
        )
        near_only, no_far = batch_lower_bounds(
            lower, upper, lows, highs, seg_len
        )
        assert np.array_equal(near, near_only)
        assert no_far is None

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(1, 10))
    def test_mdmwp_batch_matches_scalar(self, seed, r):
        rng = np.random.default_rng(seed)
        pows = rng.random(6)
        got = mdmwp_pow_batch(pows, r)
        for i in range(6):
            assert got[i] == mdmwp_pow(float(pows[i]), r)
        with pytest.raises(QueryError):
            mdmwp_pow_batch(pows, 0)

    def test_batch_validation_errors(self):
        env = query_envelope(np.zeros(8), 1)
        with pytest.raises(QueryError):
            lb_keogh_pow_batch(env, np.zeros(8))  # 1-D
        with pytest.raises(QueryError):
            lb_keogh_pow_batch(env, np.zeros((2, 5)))  # wrong length
        with pytest.raises(QueryError):
            lb_paa_pow_batch(np.zeros(4), np.zeros(4), np.zeros((2, 4)), 0)
        with pytest.raises(QueryError):
            mindist_pow_batch(
                np.zeros(4), np.zeros(4), np.zeros((2, 4)), np.zeros((3, 4)), 1
            )
        with pytest.raises(QueryError):
            maxdist_pow_batch(
                np.zeros(4), np.zeros(4), np.zeros((2, 4)), np.zeros((2, 3)), 1
            )


class TestFloat64Accumulation:
    """float32 (or integer) inputs must accumulate in float64."""

    def test_dtw_batch_float32(self):
        rng = np.random.default_rng(13)
        batch32 = rng.standard_normal((4, 20)).astype(np.float32)
        q32 = rng.standard_normal(20).astype(np.float32)
        got = dtw_pow_batch(batch32, q32, rho=3)
        assert got.dtype == np.float64
        expected = dtw_pow_batch(
            batch32.astype(np.float64), q32.astype(np.float64), 3
        )
        assert np.array_equal(got, expected)

    def test_dtw_scalar_paths_float32(self):
        rng = np.random.default_rng(14)
        s32 = rng.standard_normal(20).astype(np.float32)
        q32 = rng.standard_normal(20).astype(np.float32)
        want = dtw_pow(s32.astype(np.float64), q32.astype(np.float64), 3)
        assert dtw_pow(s32, q32, 3) == want
        assert dtw_pow_wavefront(s32, q32, 3) == want

    def test_lb_keogh_batch_float32(self):
        rng = np.random.default_rng(15)
        env = query_envelope(rng.standard_normal(16), 2)
        rows32 = rng.standard_normal((5, 16)).astype(np.float32)
        got = lb_keogh_pow_batch(env, rows32)
        assert got.dtype == np.float64
        assert np.array_equal(
            got, lb_keogh_pow_batch(env, rows32.astype(np.float64))
        )

    def test_envelope_and_paa_batch_float32(self):
        rng = np.random.default_rng(16)
        batch32 = rng.standard_normal((3, 12)).astype(np.float32)
        batch64 = batch32.astype(np.float64)
        lower32, upper32 = envelope_batch(batch32, 2)
        lower64, upper64 = envelope_batch(batch64, 2)
        assert lower32.dtype == upper32.dtype == np.float64
        assert np.array_equal(lower32, lower64)
        assert np.array_equal(upper32, upper64)
        got = paa_batch(batch32, 4)
        assert got.dtype == np.float64
        assert np.array_equal(got, paa_batch(batch64, 4))

    def test_integer_inputs_upcast(self):
        batch = np.array([[1, 2, 3, 4]], dtype=np.int64)
        q = np.array([2, 2, 2, 2], dtype=np.int64)
        assert dtw_pow_batch(batch, q, rho=1)[0] == dtw_pow(
            batch[0].astype(np.float64), q.astype(np.float64), 1
        )
