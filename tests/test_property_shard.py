"""Hypothesis properties for sharded execution.

Three families, per the sharding subsystem's contract:

* **Accounting** — merged ``QueryStats`` counters are exactly the sum
  of the per-shard counters (NUM_IO is never lost or double-counted at
  the merge), and the tracer's ``shard.<i>.*`` metric counters agree
  with the per-shard breakdown.
* **Order** — the merged stream emits in nondecreasing
  ``(distance, sid, start)`` order and is byte-identical to the
  unsharded oracle's stream.
* **Soundness** — when budgets or deadlines interrupt a random subset
  of shards mid-query, the merged ``PartialResult``'s certificate is
  honest: brute force finds no missing match below it.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SubsequenceDatabase
from repro.control import Deadline, QueryBudget
from repro.core.clock import FakeClock
from repro.core.reference import brute_force_topk
from repro.engines.base import PartialResult
from repro.obs import Tracer
from repro.shard import ShardedDatabase

_EPS = 1e-6

SHARD_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_pair(rng, num_shards, policy, tracer=None):
    """An unsharded oracle and a sharded twin over identical data."""
    oracle = SubsequenceDatabase(omega=8, features=4, buffer_fraction=0.2)
    sdb = ShardedDatabase(
        num_shards=num_shards,
        policy=policy,
        executor="serial",
        omega=8,
        features=4,
        buffer_fraction=0.2,
        tracer=tracer,
    )
    for sid, n in enumerate((300, 200, 260)):
        values = rng.standard_normal(n).cumsum()
        oracle.insert(sid, values)
        sdb.insert(sid, values)
    oracle.build()
    sdb.build()
    return oracle, sdb


def make_query(rng):
    length = int(rng.integers(16, 40))
    return rng.standard_normal(length).cumsum()


@SHARD_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    num_shards=st.integers(1, 5),
    policy=st.sampled_from(["hash", "range"]),
    k=st.integers(1, 8),
    method=st.sampled_from(["seqscan", "hlmj", "ru", "ru-cost"]),
)
def test_num_io_sums_and_exactness(seed, num_shards, policy, k, method):
    rng = np.random.default_rng(seed)
    tracer = Tracer(enabled=True)
    oracle, sdb = build_pair(rng, num_shards, policy, tracer=tracer)
    try:
        query = make_query(rng)
        result = sdb.search(query, k=k, rho=1, method=method)
        gold = oracle.search(query, k=k, rho=1, method=method)
        assert result.matches == gold.matches

        # Every integer counter — not just page_accesses — must be the
        # exact sum over the per-shard breakdown.
        merged = result.stats.as_dict()
        for key, value in merged.items():
            if key == "wall_time_s":
                continue
            assert value == sum(
                stats.as_dict()[key]
                for stats in result.shard_stats.values()
            ), key

        # The tracer's per-shard counters mirror the breakdown and sum
        # to the merged NUM_IO counter.
        counter_total = sum(
            tracer.metrics.counter(f"shard.{shard}.page_accesses").value
            for shard in result.shard_stats
        )
        assert counter_total == result.stats.page_accesses
    finally:
        sdb.close()


@SHARD_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    num_shards=st.integers(2, 5),
    policy=st.sampled_from(["hash", "range"]),
    k=st.integers(1, 10),
)
def test_stream_nondecreasing_and_identical(seed, num_shards, policy, k):
    rng = np.random.default_rng(seed)
    oracle, sdb = build_pair(rng, num_shards, policy)
    try:
        query = make_query(rng)
        stream = sdb.iter_matches(query, k=k, rho=1)
        got = list(stream)
        gold_stream = oracle.iter_matches(query, k=k, rho=1)
        want = list(gold_stream)
        gold_stream.close()
        assert got == want
        keys = [(m.distance, m.sid, m.start) for m in got]
        assert keys == sorted(keys)
        assert stream.stats is not None
        assert stream.stats.page_accesses == sum(
            stats.page_accesses for stats in stream.shard_stats.values()
        )
    finally:
        sdb.close()


def _assert_certificate_sound(partial, gold, k):
    """No brute-force match below the certified bar may be missing.

    The bar is the certificate, tightened to the k-th reported distance
    when the partial already carries k matches (deeper matches were
    legitimately outcompeted, not lost to the interruption).
    """
    bar = partial.certificate
    if len(partial.matches) >= k:
        bar = min(bar, partial.matches[-1].distance)
    reported = {(m.sid, m.start) for m in partial.matches}
    for match in gold:
        if match.distance >= bar - _EPS:
            break
        assert (match.sid, match.start) in reported, (
            f"match {(match.sid, match.start)} at distance "
            f"{match.distance} missing below certificate bar {bar}"
        )


@SHARD_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    num_shards=st.integers(2, 5),
    policy=st.sampled_from(["hash", "range"]),
    k=st.integers(1, 8),
    max_pages=st.integers(0, 40),
    method=st.sampled_from(["hlmj", "ru", "ru-cost"]),
)
def test_certificate_sound_under_budget(
    seed, num_shards, policy, k, max_pages, method
):
    """A per-shard page budget interrupts a data-dependent (hence
    effectively random) subset of shards; the merged certificate must
    stay sound regardless of which shards stopped."""
    rng = np.random.default_rng(seed)
    oracle, sdb = build_pair(rng, num_shards, policy)
    try:
        query = make_query(rng)
        gold = brute_force_topk(
            oracle.store, query, k=10**6, rho=1, p=oracle.p
        )
        result = sdb.search(
            query,
            k=k,
            rho=1,
            method=method,
            budget=QueryBudget(max_page_accesses=max_pages),
        )
        if isinstance(result, PartialResult):
            assert result.reason
            assert result.stats.interrupted >= 1
            # At least one shard certificate is finite — the merged
            # value is the min over per-shard frontiers.
            assert result.certificate >= 0.0
            _assert_certificate_sound(result, gold, k)
        else:
            # Budget was loose enough everywhere: answer must be exact.
            assert [
                round(m.distance, 6) for m in result.matches
            ] == [round(m.distance, 6) for m in gold[:k]]
    finally:
        sdb.close()


@SHARD_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    num_shards=st.integers(2, 4),
    policy=st.sampled_from(["hash", "range"]),
    budget_s=st.floats(0.0, 0.05),
)
def test_certificate_sound_under_deadline(seed, num_shards, policy, budget_s):
    """A fake-clock deadline shared by every shard expires mid-merge."""
    rng = np.random.default_rng(seed)
    oracle, sdb = build_pair(rng, num_shards, policy)
    try:
        query = make_query(rng)
        gold = brute_force_topk(
            oracle.store, query, k=10**6, rho=1, p=oracle.p
        )
        clock = FakeClock(auto_advance=0.001)
        result = sdb.search(
            query,
            k=5,
            rho=1,
            method="ru",
            deadline=Deadline.after(budget_s, clock=clock),
        )
        if isinstance(result, PartialResult):
            assert "deadline" in result.reason
            _assert_certificate_sound(result, gold, 5)
        else:
            assert math.isinf(
                getattr(result, "certificate", math.inf)
            )
    finally:
        sdb.close()
