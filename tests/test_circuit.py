"""Tests for the circuit breaker guarding physical page reads.

State-machine coverage on a :class:`~repro.core.clock.FakeClock` (no
real sleeps anywhere) plus integration with the buffer pool, the fault
injector, and the degrade path of the public API.
"""

import pytest

from repro import SubsequenceDatabase
from repro.core.clock import FakeClock
from repro.exceptions import CircuitOpenError, ConfigurationError, StorageError
from repro.storage.buffer import BufferPool, RetryPolicy
from repro.storage.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.storage.faults import TRANSIENT, FaultInjector, FaultSpec, FaultyPager
from repro.storage.page import PageKind
from tests.conftest import make_walk


def make_breaker(clock=None, **overrides):
    settings = dict(
        failure_threshold=0.5,
        window=10,
        min_samples=4,
        reset_timeout_s=30.0,
        half_open_probes=1,
        clock=clock if clock is not None else FakeClock(),
    )
    settings.update(overrides)
    return CircuitBreaker(**settings)


def trip(breaker, failures=4):
    for _ in range(failures):
        breaker.before_attempt()
        breaker.record_failure()


class TestStateMachine:
    def test_starts_closed(self):
        breaker = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0

    def test_opens_at_failure_threshold(self):
        breaker = make_breaker()
        trip(breaker)
        assert breaker.state == OPEN
        assert breaker.stats.opens == 1

    def test_min_samples_gate_holds_early_failures(self):
        breaker = make_breaker(min_samples=4)
        trip(breaker, failures=3)
        assert breaker.state == CLOSED  # 100% failures, too few samples

    def test_open_rejects_without_touching_device(self):
        breaker = make_breaker()
        trip(breaker)
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()
        assert breaker.stats.rejections == 1

    def test_half_open_after_reset_timeout(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(30.0)
        assert breaker.state == HALF_OPEN
        assert breaker.stats.probes == 1

    def test_successful_probe_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(30.0)
        breaker.before_attempt()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats.closes == 1
        assert breaker.failure_rate() == 0.0  # window cleared on recovery

    def test_failed_probe_reopens_and_restarts_timer(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        trip(breaker)
        clock.advance(30.0)
        breaker.before_attempt()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats.opens == 2
        clock.advance(15.0)  # only half the timeout since the re-open
        assert breaker.state == OPEN
        clock.advance(15.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_probes_in_flight(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock, half_open_probes=1)
        trip(breaker)
        clock.advance(30.0)
        breaker.before_attempt()  # the one admitted probe
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()

    def test_multiple_probes_required_to_close(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock, half_open_probes=2)
        trip(breaker)
        clock.advance(30.0)
        breaker.before_attempt()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.before_attempt()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_reset_forces_closed(self):
        breaker = make_breaker()
        trip(breaker)
        breaker.reset()
        assert breaker.state == CLOSED
        breaker.before_attempt()  # does not raise

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(window=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(min_samples=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(min_samples=30, window=20)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout_s=-1.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)


class TestBufferPoolIntegration:
    def make_pool(self, breaker, fail_times):
        injector = FaultInjector(
            specs=[
                FaultSpec(
                    fault=TRANSIENT,
                    page_ids=frozenset({0}),
                    max_per_page=fail_times,
                )
            ]
        )
        pager = FaultyPager(page_size=512, injector=injector)
        page = pager.allocate(PageKind.DATA)
        pager.write(page, __import__("numpy").arange(4.0))
        return BufferPool(
            pager,
            capacity_pages=2,
            retry_policy=RetryPolicy(max_attempts=2),
            circuit_breaker=breaker,
        )

    def test_recovered_reads_record_success(self):
        breaker = make_breaker()
        pool = self.make_pool(breaker, fail_times=1)
        pool.get(0)
        assert breaker.stats.failures == 1
        assert breaker.stats.successes == 1
        assert breaker.state == CLOSED

    def test_persistent_failures_open_the_breaker(self):
        breaker = make_breaker(min_samples=4, window=10)
        pool = self.make_pool(breaker, fail_times=1000)
        for _ in range(2):  # 2 fetches x 2 attempts = 4 failures
            with pytest.raises(StorageError):
                pool.get(0)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            pool.get(0)
        assert breaker.stats.rejections == 1

    def test_breaker_recovery_allows_reads_again(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock, min_samples=4)
        pool = self.make_pool(breaker, fail_times=4)
        for _ in range(2):
            with pytest.raises(StorageError):
                pool.get(0)
        assert breaker.state == OPEN
        clock.advance(30.0)  # half-open; the fault budget is exhausted
        assert pool.get(0) is not None
        assert breaker.state == CLOSED


class TestDatabaseIntegration:
    def make_db(self, breaker):
        injector = FaultInjector(
            seed=5,
            specs=[
                FaultSpec(
                    fault=TRANSIENT,
                    page_kinds=frozenset({PageKind.DATA}),
                    probability=0.9,
                )
            ],
        )
        injector.enabled = False  # keep the build phase clean
        db = SubsequenceDatabase(
            omega=16,
            features=4,
            buffer_fraction=0.1,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2),
            circuit_breaker=breaker,
        )
        db.insert(0, make_walk(1200, seed=51))
        db.build()
        injector.enabled = True
        return db

    def test_degraded_query_survives_open_breaker(self):
        breaker = make_breaker(min_samples=4, window=8)
        db = self.make_db(breaker)
        query = make_walk(48, seed=52)
        result = db.search(query, k=3, method="ru", on_fault="degrade")
        assert result.degraded
        assert breaker.stats.opens >= 1
        assert breaker.stats.rejections >= 1
        assert db.circuit_breaker is breaker

    def test_open_breaker_propagates_under_raise_policy(self):
        breaker = make_breaker(min_samples=4, window=8)
        db = self.make_db(breaker)
        query = make_walk(48, seed=53)
        with pytest.raises(StorageError):
            db.search(query, k=3, method="ru", on_fault="raise")
