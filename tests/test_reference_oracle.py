"""Self-checks on the brute-force oracles the suite trusts."""

import numpy as np
import pytest

from repro.core.distance import dtw_pow
from repro.core.reference import brute_force_topk
from repro.engines.range_search import brute_force_range
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore
from tests.conftest import make_walk


@pytest.fixture()
def store():
    pager = Pager(page_size=512)
    buffer = BufferPool(pager, 8)
    store = SequenceStore(pager, buffer)
    store.add_sequence(0, make_walk(200, seed=1))
    store.add_sequence(1, make_walk(150, seed=2))
    return store


class TestBruteForceTopK:
    def test_considers_every_offset(self, store):
        query = make_walk(40, seed=3)
        huge_k = 10_000
        matches = brute_force_topk(store, query, huge_k, rho=2)
        expected = (200 - 40 + 1) + (150 - 40 + 1)
        assert len(matches) == expected

    def test_distances_sorted_and_consistent(self, store):
        query = make_walk(40, seed=3)
        matches = brute_force_topk(store, query, 10, rho=2)
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)
        for match in matches[:3]:
            values = store.peek_subsequence(match.sid, match.start, 40)
            assert match.distance**2 == pytest.approx(
                dtw_pow(values, query, rho=2), rel=1e-9
            )

    def test_performs_no_counted_io(self, store):
        store.pager.stats.reset()
        brute_force_topk(store, make_walk(40, seed=3), 5, rho=2)
        assert store.pager.stats.physical_reads == 0


class TestBruteForceRange:
    def test_range_is_topk_prefix(self, store):
        query = make_walk(40, seed=3)
        topk = brute_force_topk(store, query, 10_000, rho=2)
        # Nudge past the k-th distance: rooting then re-squaring the
        # boundary value can lose an ulp and exclude the tie.
        epsilon = topk[7].distance * (1 + 1e-12)
        in_range = brute_force_range(store, query, epsilon, rho=2)
        # Everything at distance <= epsilon, i.e. at least 8 matches and
        # exactly those from the sorted top-k prefix (ties included).
        expected = [m.key() for m in topk if m.distance <= epsilon]
        assert sorted(m.key() for m in in_range) == sorted(expected)

    def test_empty_for_negative_like_epsilon(self, store):
        far_query = make_walk(40, seed=9) + 1e6
        assert brute_force_range(store, far_query, 0.5, rho=2) == []
