"""Unit tests for the observability plane (tracer, metrics, profiles).

The end-to-end conformance contract lives in
``tests/test_trace_conformance.py``; this module pins the local
behaviour of each building block: span lifecycle and nesting, the
disabled tracer's null objects, metric typing rules, and the profile /
Chrome-trace export formats.
"""

import json

import pytest

from repro.core.clock import FakeClock
from repro.core.metrics import QueryStats
from repro.exceptions import ConfigurationError, UsageError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    QueryProfile,
    Tracer,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    validate_span_tree,
)


def make_tracer(**kwargs) -> Tracer:
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("clock", FakeClock(auto_advance=0.001))
    return Tracer(**kwargs)


class TestDisabledTracer:
    def test_span_returns_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("engine.search") is NULL_SPAN
        assert tracer.start_span("buffer.fetch") is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        NULL_SPAN.close()
        assert NULL_SPAN.count("anything") == 0

    def test_nothing_is_recorded(self):
        tracer = Tracer(enabled=False)
        with tracer.span("engine.search"):
            tracer.event("control.checkpoint")
        assert tracer.roots == []
        assert tracer.span_total == 0
        assert tracer.depth == 0

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestSpanLifecycle:
    def test_nesting_builds_a_tree(self):
        tracer = make_tracer()
        with tracer.span("engine.search") as root:
            with tracer.span("index.probe"):
                with tracer.span("buffer.fetch"):
                    pass
            with tracer.span("buffer.fetch"):
                pass
        assert isinstance(root, Span)
        assert [c.name for c in root.children] == [
            "index.probe",
            "buffer.fetch",
        ]
        assert root.count("buffer.fetch") == 2
        assert tracer.roots == [root]
        assert tracer.depth == 0

    def test_clock_times_are_strictly_monotonic(self):
        tracer = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        times = []
        for span in tracer.iter_spans():
            times.append(span.start)
            times.append(span.end)
        assert all(t is not None for t in times)
        ordered = sorted(times)
        assert len(set(times)) == len(times)
        assert validate_span_tree(tracer.roots[0]) == []
        assert ordered[0] == tracer.roots[0].start

    def test_out_of_order_close_raises(self):
        tracer = make_tracer()
        outer = tracer.start_span("outer")  # repro: ignore[RS008]
        tracer.start_span("inner")  # repro: ignore[RS008]
        with pytest.raises(UsageError, match="out-of-order"):
            outer.close()

    def test_exception_closes_span_and_records_error(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("engine.search") as root:
                raise ValueError("boom")
        assert isinstance(root, Span)
        assert root.closed
        assert root.attrs["error"] == "ValueError"
        assert tracer.depth == 0

    def test_attrs_and_duration(self):
        tracer = make_tracer()
        with tracer.span("candidate.verify", sid=1, start=42) as span:
            pass
        assert isinstance(span, Span)
        assert span.attrs == {"sid": 1, "start": 42}
        assert span.duration > 0.0
        assert span.self_time() == pytest.approx(span.duration)

    def test_open_span_validation_reports_problem(self):
        tracer = make_tracer()
        root = tracer.start_span("root")  # repro: ignore[RS008]
        assert isinstance(root, Span)
        problems = validate_span_tree(root)
        assert problems == ["span 'root' never closed"]
        root.close()
        assert validate_span_tree(root) == []


class TestSpanCapsAndEvents:
    def test_span_cap_drops_and_counts(self):
        tracer = make_tracer(max_spans=2)
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.span("c") is NULL_SPAN
        assert tracer.span_total == 2
        assert tracer.dropped_spans == 1

    def test_events_attach_to_innermost_span(self):
        tracer = make_tracer()
        with tracer.span("engine.search"):
            with tracer.span("engine.run") as run:
                tracer.event("control.checkpoint", elapsed_s=0.5)
        assert isinstance(run, Span)
        assert [e.name for e in run.events] == ["control.checkpoint"]
        assert run.events[0].attrs == {"elapsed_s": 0.5}

    def test_event_outside_any_span_is_dropped(self):
        tracer = make_tracer()
        tracer.event("control.checkpoint")
        assert tracer.dropped_events == 1

    def test_event_cap(self):
        tracer = make_tracer(max_events=1)
        with tracer.span("a") as span:
            tracer.event("one")
            tracer.event("two")
        assert isinstance(span, Span)
        assert len(span.events) == 1
        assert tracer.dropped_events == 1

    def test_reset_clears_everything(self):
        tracer = make_tracer(max_spans=4)
        with tracer.span("a"):
            tracer.event("e")
        tracer.reset()
        assert tracer.roots == []
        assert tracer.span_total == 0
        assert tracer.dropped_spans == 0
        assert tracer.depth == 0

    def test_bad_caps_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)
        with pytest.raises(ConfigurationError):
            Tracer(max_events=-1)


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("buffer.hit")
        counter.inc()
        counter.inc(2.0)
        assert registry.counter("buffer.hit") is counter
        assert counter.value == 3.0

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(UsageError, match="cannot decrease"):
            registry.counter("x").inc(-1.0)

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(UsageError, match="already a counter"):
            registry.gauge("x")
        with pytest.raises(UsageError, match="already a counter"):
            registry.histogram("x")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(UsageError, match="already registered"):
            registry.histogram("h", buckets=(1.0, 4.0))

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(UsageError):
            registry.histogram("empty", buckets=())
        with pytest.raises(UsageError):
            registry.histogram("descending", buckets=(2.0, 1.0))
        with pytest.raises(UsageError):
            registry.histogram("nan", buckets=(float("nan"),))

    def test_histogram_rejects_nan_observation(self):
        registry = MetricsRegistry()
        with pytest.raises(UsageError, match="NaN"):
            registry.histogram("h").observe(float("nan"))

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 4.0))
        hist.observe(1.0)   # first bucket (inclusive upper bound)
        hist.observe(3.0)   # second bucket
        hist.observe(100.0)  # overflow bucket
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.total == pytest.approx(104.0)

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(2.0)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(7.0)
        registry.gauge("g").set(9.0)
        delta = registry.snapshot().delta(before)
        assert delta.counters["c"] == 3.0
        assert delta.histograms["h"].count == 1
        assert delta.histograms["h"].total == pytest.approx(7.0)
        assert delta.gauges["g"] == 9.0

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def build_profile() -> QueryProfile:
    tracer = make_tracer()
    registry = tracer.metrics
    before = registry.snapshot()
    with tracer.span("engine.search", engine="RU") as root:
        with tracer.span("index.probe"):
            with tracer.span("buffer.fetch", page=7):
                registry.counter("buffer.miss").inc()
        with tracer.span("buffer.fetch", page=9):
            registry.counter("buffer.miss").inc()
        tracer.event("control.checkpoint", elapsed_s=0.1)
    assert isinstance(root, Span)
    stats = QueryStats(page_accesses=2, candidates=1)
    return QueryProfile(
        span=root,
        metrics=registry.snapshot().delta(before),
        stats=stats,
    )


class TestQueryProfile:
    def test_span_count_and_totals(self):
        profile = build_profile()
        assert profile.span_count("buffer.fetch") == 2
        totals = profile.span_totals()
        assert totals["buffer.fetch"][0] == 2
        assert totals["engine.search"][0] == 1
        assert totals["buffer.fetch"][1] > 0.0

    def test_top_spans_ranked_by_self_time(self):
        profile = build_profile()
        rows = profile.top_spans(10)
        assert {row[0] for row in rows} == {
            "engine.search",
            "index.probe",
            "buffer.fetch",
        }
        self_times = [row[3] for row in rows]
        assert self_times == sorted(self_times, reverse=True)
        assert len(profile.top_spans(1)) == 1
        assert profile.top_spans(0) == []

    def test_as_dict_and_json_roundtrip(self):
        profile = build_profile()
        data = json.loads(profile.to_json())
        assert data["stats"]["page_accesses"] == 2
        assert data["metrics"]["counters"]["buffer.miss"] == 2.0
        assert data["span"]["name"] == "engine.search"
        assert data["span"]["attrs"] == {"engine": "RU"}
        names = {c["name"] for c in data["span"]["children"]}
        assert names == {"index.probe", "buffer.fetch"}

    def test_chrome_trace_format(self):
        profile = build_profile()
        doc = profile.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 4  # search, probe, 2x fetch
        assert len(instants) == 1
        assert instants[0]["name"] == "control.checkpoint"
        for event in complete:
            assert event["dur"] >= 0.0
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        # The whole document must be JSON-serialisable as-is.
        json.dumps(doc)

    def test_chrome_trace_stringifies_non_json_attrs(self):
        tracer = make_tracer()
        with tracer.span("a", payload=object()) as span:
            pass
        assert isinstance(span, Span)
        doc = tracer.to_chrome_trace()
        args = doc["traceEvents"][0]["args"]
        assert isinstance(args["payload"], str)
        json.dumps(doc)
