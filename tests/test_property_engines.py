"""Hypothesis property tests for engine exactness and tree invariants.

Each example builds a small database from generated data and checks
that every engine agrees with brute force — the strongest guard against
subtle pruning bugs in the bounds or the scheduling.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.rstar import LeafRecord, RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager

from tests.conftest import build_property_db, engine_distances, gold_topk

ENGINE_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@ENGINE_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 8),
    rho=st.integers(0, 3),
    deferred=st.booleans(),
    method=st.sampled_from(["hlmj", "ru", "ru-cost"]),
)
def test_index_engines_equal_brute_force(seed, k, rho, deferred, method):
    rng = np.random.default_rng(seed)
    db = build_property_db(rng)
    length = int(rng.integers(15, 40))
    query = rng.standard_normal(length).cumsum()
    gold = gold_topk(db, query, k, rho)
    result = db.search(query, k=k, rho=rho, method=method, deferred=deferred)
    assert engine_distances(result) == pytest.approx(gold, abs=1e-6)


@ENGINE_SETTINGS
@given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
def test_psm_equals_brute_force(seed, k):
    rng = np.random.default_rng(seed)
    db = build_property_db(rng, lengths=(250,), psm=True)
    query = db.store.peek_subsequence(
        0, int(rng.integers(0, 200)), 17
    ).copy()
    gold = gold_topk(db, query, k, rho=1)
    result = db.search(query, k=k, rho=1, method="psm")
    assert engine_distances(result) == pytest.approx(gold, abs=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(5, 120),
    max_entries=st.integers(4, 12),
    dimensions=st.integers(1, 5),
)
def test_rstar_invariants_under_random_inserts(
    seed, count, max_entries, dimensions
):
    rng = np.random.default_rng(seed)
    pager = Pager(page_size=4096)
    tree = RStarTree(
        pager,
        BufferPool(pager, 8),
        dimensions=dimensions,
        max_entries=max_entries,
    )
    for index in range(count):
        tree.insert(
            rng.standard_normal(dimensions),
            LeafRecord(sid=0, window_index=index),
        )
    tree.check_invariants()
    records = {e.record.window_index for e in tree.iter_leaf_entries()}
    assert records == set(range(count))
