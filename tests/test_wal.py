"""Tests for the write-ahead log (repro.storage.wal).

The WAL's one contract is the committed-prefix guarantee: after any
crash (torn frame, lost tail, interrupted truncate) reopening the log
yields exactly the records covered by the last intact commit marker —
never a partial session, never a spliced one.  These tests exercise the
framing, the open-time tail discard, rollback, truncation, and the
fault/crash plumbing directly; end-to-end recovery is covered by
``test_ingest.py`` and the chaos suite.
"""

import os
import struct

import pytest

from repro.core.clock import FakeClock
from repro.exceptions import TransientIOError, WalCorruptError, WalError
from repro.storage.buffer import RetryPolicy
from repro.storage.circuit import CircuitBreaker
from repro.storage.wal import (
    WAL_MAGIC,
    SimulatedCrash,
    WriteAheadLog,
    _scan_bytes,
)


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "wal.log"


def committed_ops(wal):
    return [
        record.op
        for batch in wal.replay()
        for record in batch.records
    ]


class TestFraming:
    def test_fresh_log_has_magic_and_header(self, wal_path):
        with WriteAheadLog(wal_path, sync=False) as wal:
            assert wal.base_lsn == 0
            assert wal.last_lsn == 0
            assert wal.record_count == 0
        raw = wal_path.read_bytes()
        assert raw.startswith(WAL_MAGIC)
        assert _scan_bytes(raw).records == []

    def test_lsns_are_monotonic_from_base(self, wal_path):
        with WriteAheadLog(wal_path, sync=False) as wal:
            assert wal.append("append", {"sid": 1, "values": [1.0]}) == 1
            assert wal.append("extend", {"sid": 1, "values": [2.0]}) == 2
            assert wal.commit() == 3
            assert wal.last_lsn == 3
            assert wal.record_count == 3

    def test_unknown_op_is_rejected(self, wal_path):
        with WriteAheadLog(wal_path, sync=False) as wal:
            with pytest.raises(WalError, match="unknown WAL op"):
                wal.append("compact", {})

    def test_closed_log_refuses_appends(self, wal_path):
        wal = WriteAheadLog(wal_path, sync=False)
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WalError, match="closed"):
            wal.append("append", {"sid": 1, "values": [1.0]})

    def test_float_values_round_trip_exactly(self, wal_path):
        values = [0.1, -1e-17, 2.0**53 + 0.0, 1.7976931348623157e308]
        with WriteAheadLog(wal_path, sync=False) as wal:
            wal.append("append", {"sid": 7, "values": values})
            wal.commit()
            (batch,) = list(wal.replay())
        assert batch.records[0].fields["values"] == values


class TestTailDiscard:
    def make_log(self, path):
        wal = WriteAheadLog(path, sync=False)
        wal.append("append", {"sid": 1, "values": [1.0, 2.0]})
        wal.append("extend", {"sid": 1, "values": [3.0]})
        wal.commit()
        return wal

    def test_garbage_tail_is_discarded_on_open(self, wal_path):
        self.make_log(wal_path).close()
        with open(wal_path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 3)
        wal = WriteAheadLog(wal_path, sync=False)
        assert wal.torn_bytes_discarded == 12
        assert committed_ops(wal) == ["append", "extend"]
        wal.close()

    def test_torn_frame_is_discarded_on_open(self, wal_path):
        wal = self.make_log(wal_path)
        wal.append("delete", {"sid": 1})
        wal.commit()
        wal.close()
        raw = wal_path.read_bytes()
        wal_path.write_bytes(raw[:-5])  # tear the final commit frame
        reopened = WriteAheadLog(wal_path, sync=False)
        # The torn commit takes its delete record with it.
        assert committed_ops(reopened) == ["append", "extend"]
        reopened.close()

    def test_intact_uncommitted_records_are_dropped_too(self, wal_path):
        wal = self.make_log(wal_path)
        wal.append("delete", {"sid": 1})  # never committed
        wal.close()
        reopened = WriteAheadLog(wal_path, sync=False)
        assert reopened.last_lsn == 3
        assert committed_ops(reopened) == ["append", "extend"]
        # The next session must not inherit the dropped record's LSN gap.
        assert reopened.append("append", {"sid": 2, "values": [1.0]}) == 4
        reopened.close()

    def test_corrupt_record_crc_ends_the_valid_prefix(self, wal_path):
        wal = self.make_log(wal_path)
        wal.close()
        raw = bytearray(wal_path.read_bytes())
        raw[-3] ^= 0xFF  # flip a payload byte inside the commit frame
        wal_path.write_bytes(bytes(raw))
        reopened = WriteAheadLog(wal_path, sync=False)
        assert reopened.torn_bytes_discarded > 0
        assert committed_ops(reopened) == []
        reopened.close()

    def test_corrupt_magic_raises(self, wal_path):
        wal_path.write_bytes(b"NOTAWAL!!\n" + b"\x00" * 32)
        with pytest.raises(WalCorruptError, match="magic"):
            WriteAheadLog(wal_path, sync=False)

    def test_corrupt_header_raises(self, wal_path):
        wal_path.write_bytes(WAL_MAGIC + struct.pack("<II", 4, 0) + b"junk")
        with pytest.raises(WalCorruptError, match="header"):
            WriteAheadLog(wal_path, sync=False)

    def test_non_monotonic_lsn_ends_the_prefix(self, wal_path):
        wal = self.make_log(wal_path)
        wal.close()
        first = WriteAheadLog(wal_path, sync=False)
        raw_before = wal_path.read_bytes()
        first.close()
        # Duplicate the whole committed segment: the second copy's LSNs
        # restart at 1, which is non-monotonic after LSN 3.
        header_end = raw_before.index(b'{"lsn"')
        wal_path.write_bytes(raw_before + raw_before[header_end - 8 :])
        reopened = WriteAheadLog(wal_path, sync=False)
        assert committed_ops(reopened) == ["append", "extend"]
        reopened.close()


class TestRollbackAndTruncate:
    def test_rollback_drops_only_the_uncommitted_tail(self, wal_path):
        wal = WriteAheadLog(wal_path, sync=False)
        wal.append("append", {"sid": 1, "values": [1.0]})
        wal.commit()
        wal.append("delete", {"sid": 1})
        wal.append("append", {"sid": 2, "values": [2.0]})
        assert wal.rollback() == 2
        assert wal.last_lsn == 2
        assert committed_ops(wal) == ["append"]
        assert wal.rollback() == 0  # nothing left to drop
        wal.close()

    def test_truncate_advances_base_lsn(self, wal_path):
        wal = WriteAheadLog(wal_path, sync=False)
        wal.append("append", {"sid": 1, "values": [1.0]})
        watermark = wal.commit()
        wal.truncate(watermark)
        assert wal.base_lsn == watermark
        assert wal.record_count == 0
        assert list(wal.replay()) == []
        # LSNs continue above the new base.
        assert wal.append("append", {"sid": 2, "values": [1.0]}) == watermark + 1
        wal.close()

    def test_truncate_survives_reopen(self, wal_path):
        wal = WriteAheadLog(wal_path, sync=False)
        wal.append("append", {"sid": 1, "values": [1.0]})
        wal.truncate(wal.commit())
        wal.close()
        reopened = WriteAheadLog(wal_path, sync=False)
        assert reopened.base_lsn == 2
        assert reopened.last_lsn == 2
        reopened.close()

    def test_truncate_ahead_of_tail_is_rejected(self, wal_path):
        with WriteAheadLog(wal_path, sync=False) as wal:
            with pytest.raises(WalError, match="ahead of the log tail"):
                wal.truncate(5)


class TestFaultPlumbing:
    def test_transient_failures_are_retried(self, wal_path):
        attempts = {"n": 0}

        def hook(point):
            if point == "wal.append":
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise TransientIOError("flaky disk")

        wal = WriteAheadLog(
            wal_path,
            sync=False,
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.01),
            clock=FakeClock(),
        )
        wal.crash_hook = hook
        wal.append("append", {"sid": 1, "values": [1.0]})
        assert attempts["n"] == 3
        wal.close()

    def test_exhausted_retries_raise(self, wal_path):
        def hook(point):
            if point == "wal.append":
                raise TransientIOError("dead disk")

        wal = WriteAheadLog(
            wal_path,
            sync=False,
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        wal.crash_hook = hook
        with pytest.raises(TransientIOError):
            wal.append("append", {"sid": 1, "values": [1.0]})
        wal.close()

    def test_open_breaker_fails_fast(self, wal_path):
        breaker = CircuitBreaker(
            failure_threshold=1.0,
            window=4,
            min_samples=1,
            reset_timeout_s=60.0,
            clock=FakeClock(),
        )
        wal = WriteAheadLog(
            wal_path,
            sync=False,
            retry_policy=RetryPolicy(max_attempts=1),
            circuit_breaker=breaker,
        )
        boom = {"on": True}

        def hook(point):
            if boom["on"] and point == "wal.append":
                raise TransientIOError("flaky disk")

        wal.crash_hook = hook
        with pytest.raises(TransientIOError):
            wal.append("append", {"sid": 1, "values": [1.0]})
        boom["on"] = False
        from repro.exceptions import CircuitOpenError

        with pytest.raises(CircuitOpenError):
            wal.append("append", {"sid": 1, "values": [1.0]})
        wal.close()

    def test_torn_crash_writes_a_partial_frame(self, wal_path):
        wal = WriteAheadLog(wal_path, sync=False)
        wal.append("append", {"sid": 1, "values": [1.0]})
        wal.commit()
        clean_size = os.path.getsize(wal_path)

        def hook(point):
            if point == "wal.append.write":
                raise SimulatedCrash(point, torn_fraction=0.5)

        wal.crash_hook = hook
        with pytest.raises(SimulatedCrash):
            wal.append("append", {"sid": 2, "values": [2.0, 3.0]})
        wal.close()
        torn_size = os.path.getsize(wal_path)
        assert torn_size > clean_size  # some bytes of the frame landed
        reopened = WriteAheadLog(wal_path, sync=False)
        assert reopened.torn_bytes_discarded == torn_size - clean_size
        assert committed_ops(reopened) == ["append"]
        assert os.path.getsize(wal_path) == clean_size
        reopened.close()

    def test_crash_during_truncate_leaves_old_or_new_log(self, wal_path):
        wal = WriteAheadLog(wal_path, sync=False)
        wal.append("append", {"sid": 1, "values": [1.0]})
        watermark = wal.commit()

        def hook(point):
            if point == "wal.truncate":
                raise SimulatedCrash(point)

        wal.crash_hook = hook
        with pytest.raises(SimulatedCrash):
            wal.truncate(watermark)
        wal.close()
        assert not wal_path.with_name("wal.log.tmp").exists()
        # The replace never happened: the old log is intact.
        reopened = WriteAheadLog(wal_path, sync=False)
        assert reopened.base_lsn == 0
        assert committed_ops(reopened) == ["append"]
        reopened.close()
