"""Tests for the results consolidator (repro.bench.summary)."""

import pathlib

from repro.bench.summary import build_report, extract_speedups, load_results


def write_results(tmp_path, figures):
    directory = tmp_path / "results"
    directory.mkdir()
    for name, text in figures.items():
        (directory / f"{name}.txt").write_text(text)
    return directory


class TestLoadAndExtract:
    def test_load_results(self, tmp_path):
        directory = write_results(
            tmp_path, {"fig11_effect_of_k": "table\n", "extra": "x"}
        )
        results = load_results(directory)
        assert results["fig11_effect_of_k"] == "table"
        assert "extra" in results

    def test_missing_directory(self, tmp_path):
        assert load_results(tmp_path / "nope") == {}

    def test_extract_speedups_in_order(self, tmp_path):
        directory = write_results(
            tmp_path,
            {
                "fig12_dense_queries": "[candidates] A vs B: up to 30.0x",
                "fig11_effect_of_k": "t\n[modeled_time_s] A vs B: up to 3x",
            },
        )
        lines = extract_speedups(load_results(directory))
        assert lines[0].startswith("fig11_effect_of_k:")
        assert lines[1].startswith("fig12_dense_queries:")


class TestBuildReport:
    def test_contains_sections_and_headlines(self, tmp_path):
        directory = write_results(
            tmp_path,
            {
                "fig11_effect_of_k": "data\n[modeled_time_s] X: up to 5x",
                "custom_figure": "other",
            },
        )
        report = build_report(directory, title="T")
        assert report.startswith("# T")
        assert "## Headline ratios" in report
        assert "## fig11_effect_of_k" in report
        assert "## custom_figure" in report  # unknown figures still shown
        assert "data" in report

    def test_empty_report_hint(self, tmp_path):
        report = build_report(tmp_path / "nothing")
        assert "no results recorded yet" in report

    def test_cli_writes_file(self, tmp_path):
        from repro.bench.summary import main

        directory = write_results(tmp_path, {"fig11_effect_of_k": "d"})
        output = tmp_path / "RESULTS.md"
        assert main([str(directory), str(output)]) == 0
        assert "fig11_effect_of_k" in output.read_text()
