"""Hypothesis properties for the metrics algebra.

``MetricsSnapshot.merge`` must be associative and commutative (it is
pointwise addition over flows), ``delta`` must invert the increments
applied between two snapshots, and counters must be monotone.  These
laws are what let per-query metric deltas recombine into fleet totals
in any order — the property the docs and profiles rely on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UsageError
from repro.obs import MetricsRegistry
from repro.obs.metrics import EMPTY_SNAPSHOT, HistogramSnapshot

METRIC_SETTINGS = settings(max_examples=100, deadline=None)

#: Small, finite magnitudes: the laws under test are exact integer /
#: float identities, not numerical-stability claims.
amounts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
bucket_bounds = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=8
).map(lambda xs: tuple(float(b) for b in sorted(set(xs))))


@st.composite
def histogram_snapshots(draw, buckets=None):
    bounds = buckets if buckets is not None else draw(bucket_bounds)
    observations = draw(st.lists(values, max_size=30))
    # Build through the real instrument so snapshots are reachable
    # states, not arbitrary tuples.
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=bounds)
    for value in observations:
        hist.observe(value)
    return registry.snapshot().histograms["h"]


FIXED_BUCKETS = (1.0, 8.0, 64.0)


@METRIC_SETTINGS
@given(
    a=histogram_snapshots(buckets=FIXED_BUCKETS),
    b=histogram_snapshots(buckets=FIXED_BUCKETS),
    c=histogram_snapshots(buckets=FIXED_BUCKETS),
)
def test_histogram_merge_is_associative_and_commutative(a, b, c):
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.counts == right.counts
    assert left.count == right.count
    assert left.total == pytest.approx(right.total)
    ab, ba = a.merge(b), b.merge(a)
    assert ab.counts == ba.counts
    assert ab.count == ba.count
    assert ab.total == pytest.approx(ba.total)


@METRIC_SETTINGS
@given(h=histogram_snapshots())
def test_histogram_identity_and_inverse(h):
    zero = HistogramSnapshot(h.buckets, (0,) * len(h.counts), 0.0, 0)
    assert h.merge(zero) == h
    assert h.delta(zero) == h
    roundtrip = h.merge(h).delta(h)
    assert roundtrip.counts == h.counts
    assert roundtrip.count == h.count
    assert roundtrip.total == pytest.approx(h.total)


@METRIC_SETTINGS
@given(
    a=histogram_snapshots(buckets=(1.0, 2.0)),
    b=histogram_snapshots(buckets=(1.0, 4.0)),
)
def test_histogram_bucket_mismatch_rejected(a, b):
    with pytest.raises(UsageError, match="different buckets"):
        a.merge(b)
    with pytest.raises(UsageError, match="different buckets"):
        a.delta(b)


@METRIC_SETTINGS
@given(increments=st.lists(amounts, max_size=40))
def test_snapshot_delta_equals_sum_of_increments(increments):
    registry = MetricsRegistry()
    registry.counter("c").inc(7.0)  # pre-existing history
    before = registry.snapshot()
    for amount in increments:
        registry.counter("c").inc(amount)
    delta = registry.snapshot().delta(before)
    assert delta.counters["c"] == pytest.approx(sum(increments))


@METRIC_SETTINGS
@given(observations=st.lists(values, max_size=40))
def test_histogram_delta_counts_only_new_observations(observations):
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=FIXED_BUCKETS)
    hist.observe(3.0)  # pre-existing history
    before = registry.snapshot()
    for value in observations:
        hist.observe(value)
    delta = registry.snapshot().histograms["h"].delta(
        before.histograms["h"]
    )
    assert delta.count == len(observations)
    assert sum(delta.counts) == len(observations)
    assert delta.total == pytest.approx(sum(observations))


@METRIC_SETTINGS
@given(amounts=st.lists(amounts, min_size=1, max_size=40))
def test_counter_is_monotone(amounts):
    registry = MetricsRegistry()
    counter = registry.counter("c")
    previous = counter.value
    for amount in amounts:
        counter.inc(amount)
        assert counter.value >= previous
        previous = counter.value


@METRIC_SETTINGS
@given(amount=st.floats(max_value=-1e-9, allow_nan=False))
def test_negative_increment_rejected(amount):
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc(1.0)
    with pytest.raises(UsageError, match="cannot decrease"):
        counter.inc(amount)
    assert counter.value == 1.0


@METRIC_SETTINGS
@given(
    a_inc=st.lists(amounts, max_size=10),
    b_inc=st.lists(amounts, max_size=10),
)
def test_registry_snapshot_merge_matches_combined_run(a_inc, b_inc):
    """Two queries' deltas merged == one query doing both workloads."""

    def run(increments):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=FIXED_BUCKETS)
        for amount in increments:
            counter.inc(amount)
            hist.observe(amount)
        return registry.snapshot()

    merged = run(a_inc).merge(run(b_inc))
    combined = run(list(a_inc) + list(b_inc))
    assert merged.counters["c"] == pytest.approx(combined.counters["c"])
    assert merged.histograms["h"].counts == combined.histograms["h"].counts


def test_empty_snapshot_is_merge_identity():
    registry = MetricsRegistry()
    registry.counter("c").inc(4.0)
    registry.gauge("g").set(2.0)
    registry.histogram("h", buckets=FIXED_BUCKETS).observe(5.0)
    snap = registry.snapshot()
    assert EMPTY_SNAPSHOT.merge(snap) == snap
    assert snap.merge(EMPTY_SNAPSHOT) == snap
