"""Tests for the budget/deadline/cancellation control plane.

Unit coverage for :mod:`repro.control` plus engine integration: partial
results, exactness certificates, zero-overhead parity for unlimited
controls, and the admission controller in front of the API.
"""

import math

import pytest

from repro import SubsequenceDatabase
from repro.control import (
    REASON_CANCELLED,
    REASON_CANDIDATE_BUDGET,
    REASON_DEADLINE,
    REASON_PAGE_BUDGET,
    AdmissionController,
    CancellationToken,
    Deadline,
    ExecutionControl,
    QueryBudget,
    certificate_from_pow,
)
from repro.core.clock import FakeClock
from repro.core.metrics import QueryStats
from repro.engines.base import PartialResult
from repro.exceptions import (
    AdmissionRejectedError,
    ConfigurationError,
    ExecutionInterrupted,
)
from tests.conftest import engine_distances, gold_topk, make_walk

ENGINES = ("seqscan", "hlmj", "ru", "ru-cost")


class TestQueryBudget:
    def test_defaults_are_unlimited(self):
        assert QueryBudget().unlimited

    def test_any_cap_makes_it_limited(self):
        assert not QueryBudget(max_page_accesses=10).unlimited
        assert not QueryBudget(max_candidates=10).unlimited

    def test_negative_caps_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryBudget(max_page_accesses=-1)
        with pytest.raises(ConfigurationError):
            QueryBudget(max_candidates=-1)


class TestDeadline:
    def test_expires_on_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(5.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline.after(-1.0, clock=FakeClock())

    def test_auto_advance_expires_after_fixed_polls(self):
        clock = FakeClock(auto_advance=1.0)
        deadline = Deadline.after(2.5, clock=clock)
        polls = 0
        while not deadline.expired:
            polls += 1
        # after() consumed one tick; expiry is deterministic in polls.
        assert polls == 2


class TestCancellationToken:
    def test_manual_cancel(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        assert token.is_cancelled()

    def test_cancelled_property_has_no_side_effects(self):
        token = CancellationToken(cancel_after_checks=1)
        for _ in range(10):
            assert not token.cancelled
        assert not token.is_cancelled()  # first counted poll
        assert token.is_cancelled()  # countdown exhausted

    def test_negative_countdown_rejected(self):
        with pytest.raises(ConfigurationError):
            CancellationToken(cancel_after_checks=-1)


class TestExecutionControl:
    def test_default_control_never_raises(self):
        control = ExecutionControl()
        assert not control.limited
        for _ in range(100):
            control.checkpoint(1.0)
        assert control.checkpoints == 100
        assert control.frontier_pow == 1.0

    def test_none_frontier_keeps_previous_value(self):
        control = ExecutionControl()
        control.checkpoint(4.0)
        control.checkpoint()
        assert control.frontier_pow == 4.0

    def test_cancellation_raises_with_reason(self):
        control = ExecutionControl(token=CancellationToken(cancel_after_checks=0))
        with pytest.raises(ExecutionInterrupted) as excinfo:
            control.checkpoint()
        assert excinfo.value.reason == REASON_CANCELLED

    def test_deadline_raises_with_reason(self):
        clock = FakeClock()
        control = ExecutionControl(deadline=Deadline.after(1.0, clock=clock))
        control.checkpoint()
        clock.advance(2.0)
        with pytest.raises(ExecutionInterrupted) as excinfo:
            control.checkpoint()
        assert excinfo.value.reason == REASON_DEADLINE

    def test_page_budget_enforced_against_bound_counter(self):
        control = ExecutionControl(budget=QueryBudget(max_page_accesses=3))
        pages = [0]
        control.bind(QueryStats(), lambda: pages[0])
        control.checkpoint()
        pages[0] = 4
        with pytest.raises(ExecutionInterrupted) as excinfo:
            control.checkpoint()
        assert excinfo.value.reason == REASON_PAGE_BUDGET

    def test_candidate_budget_enforced_against_stats(self):
        stats = QueryStats()
        control = ExecutionControl(budget=QueryBudget(max_candidates=2))
        control.bind(stats, lambda: 0)
        stats.candidates = 3
        with pytest.raises(ExecutionInterrupted) as excinfo:
            control.checkpoint()
        assert excinfo.value.reason == REASON_CANDIDATE_BUDGET

    def test_unlimited_budget_is_not_limited(self):
        assert not ExecutionControl(budget=QueryBudget()).limited
        assert ExecutionControl(budget=QueryBudget(max_candidates=1)).limited


class TestCertificateFromPow:
    def test_inf_stays_inf(self):
        assert math.isinf(certificate_from_pow(math.inf, 2.0))

    def test_negative_noise_clamps_to_zero(self):
        assert certificate_from_pow(-1e-12, 2.0) == 0.0

    def test_rooting(self):
        assert certificate_from_pow(9.0, 2.0) == pytest.approx(3.0)


class TestEngineIntegration:
    QUERY = make_walk(64, seed=71)

    def test_unlimited_control_is_invisible(self, walk_db):
        """Zero-budget parity: identical top-k and identical NUM_IO."""
        for method in ENGINES:
            walk_db.reset_cache()
            plain = walk_db.search(self.QUERY, k=5, rho=3, method=method)
            walk_db.reset_cache()
            controlled = walk_db.search(
                self.QUERY, k=5, rho=3, method=method, budget=QueryBudget()
            )
            assert engine_distances(controlled) == engine_distances(plain)
            assert (
                controlled.stats.page_accesses == plain.stats.page_accesses
            )
            assert not isinstance(controlled, PartialResult)

    @pytest.mark.parametrize("method", ENGINES)
    def test_page_budget_returns_partial(self, walk_db, method):
        walk_db.reset_cache()
        result = walk_db.search(
            self.QUERY,
            k=5,
            rho=3,
            method=method,
            budget=QueryBudget(max_page_accesses=0),
        )
        assert isinstance(result, PartialResult)
        assert result.reason == REASON_PAGE_BUDGET
        assert result.stats.interrupted == 1
        assert result.stats.checkpoints > 0

    @pytest.mark.parametrize("method", ENGINES)
    def test_cancellation_returns_partial(self, walk_db, method):
        walk_db.reset_cache()
        result = walk_db.search(
            self.QUERY,
            k=5,
            rho=3,
            method=method,
            token=CancellationToken(cancel_after_checks=0),
        )
        assert isinstance(result, PartialResult)
        assert result.reason == REASON_CANCELLED

    def test_candidate_budget_returns_partial(self, walk_db):
        walk_db.reset_cache()
        result = walk_db.search(
            self.QUERY,
            k=5,
            rho=3,
            method="ru",
            budget=QueryBudget(max_candidates=1),
        )
        assert isinstance(result, PartialResult)
        assert result.reason == REASON_CANDIDATE_BUDGET

    def test_deadline_returns_partial(self, walk_db):
        clock = FakeClock(auto_advance=0.01)
        walk_db.reset_cache()
        result = walk_db.search(
            self.QUERY,
            k=5,
            rho=3,
            method="ru",
            deadline=Deadline.after(0.05, clock=clock),
        )
        assert isinstance(result, PartialResult)
        assert result.reason == REASON_DEADLINE

    @pytest.mark.parametrize("method", ENGINES)
    def test_partial_certificate_is_sound(self, walk_db, method):
        """No gold match strictly below the certified bar may be missing."""
        k = 5
        gold = gold_topk(walk_db, self.QUERY, 10**6, rho=3)
        for cap in (5, 20, 60):
            walk_db.reset_cache()
            result = walk_db.search(
                self.QUERY,
                k=k,
                rho=3,
                method=method,
                budget=QueryBudget(max_page_accesses=cap),
            )
            if not isinstance(result, PartialResult):
                assert engine_distances(result) == gold[:k]
                continue
            assert not result.exact or math.isinf(result.certificate)
            bar = result.certificate
            if len(result.matches) >= k:
                bar = min(bar, result.matches[-1].distance)
            reported = engine_distances(result)
            for distance in gold[:k]:
                if distance < round(bar, 6) - 1e-6:
                    assert distance in reported

    def test_partial_matches_are_true_distances(self, walk_db):
        gold = set(gold_topk(walk_db, self.QUERY, 10**6, rho=3))
        walk_db.reset_cache()
        result = walk_db.search(
            self.QUERY,
            k=5,
            rho=3,
            method="ru",
            budget=QueryBudget(max_page_accesses=30),
        )
        for distance in engine_distances(result):
            assert distance in gold

    def test_range_search_budget_surface(self, walk_db):
        walk_db.reset_cache()
        result = walk_db.range_search(
            self.QUERY,
            epsilon=20.0,
            rho=3,
            budget=QueryBudget(max_page_accesses=0),
        )
        assert isinstance(result, PartialResult)
        assert result.reason == REASON_PAGE_BUDGET
        assert result.certificate == 0.0

    def test_iter_matches_interrupt_surface(self, walk_db):
        walk_db.reset_cache()
        stream = walk_db.iter_matches(
            self.QUERY,
            k=5,
            rho=3,
            budget=QueryBudget(max_page_accesses=0),
        )
        matches = list(stream)
        assert stream.interrupted
        assert stream.reason == REASON_PAGE_BUDGET
        assert stream.stats is not None
        assert stream.stats.interrupted == 1
        assert len(matches) < 5

    def test_iter_matches_stats_surface_without_limits(self, walk_db):
        walk_db.reset_cache()
        stream = walk_db.iter_matches(self.QUERY, k=3, rho=3)
        matches = list(stream)
        assert len(matches) == 3
        assert not stream.interrupted
        assert stream.stats is not None
        assert stream.stats.page_accesses > 0
        assert math.isinf(stream.certificate)


class TestAdmissionController:
    def test_rejects_beyond_concurrency(self):
        controller = AdmissionController(max_concurrent=1)
        ticket = controller.admit()
        with pytest.raises(AdmissionRejectedError):
            controller.admit()
        ticket.release()
        with controller.admit():
            pass
        assert controller.stats.admitted == 2
        assert controller.stats.rejected == 1

    def test_release_is_idempotent(self):
        controller = AdmissionController(max_concurrent=1)
        ticket = controller.admit()
        ticket.release()
        ticket.release()
        assert controller.active == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_concurrent=1, max_queued=-1)

    def test_database_search_respects_admission(self):
        db = SubsequenceDatabase(
            omega=16,
            features=4,
            buffer_fraction=0.1,
            admission=AdmissionController(max_concurrent=1),
        )
        db.insert(0, make_walk(600, seed=81))
        db.build()
        query = make_walk(40, seed=82)
        result = db.search(query, k=3, method="ru")
        assert len(result.matches) == 3
        # The slot is released even though the search raised nothing,
        # so a saturated controller is the only way to get rejected.
        assert db.admission is not None
        assert db.admission.active == 0
        blocker = db.admission.admit()
        with pytest.raises(AdmissionRejectedError):
            db.search(query, k=3, method="ru")
        blocker.release()
        assert len(db.search(query, k=3, method="ru").matches) == 3
