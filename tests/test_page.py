"""Unit tests for page geometry (repro.storage.page)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.storage.page import (
    PAGE_SIZE_DEFAULT,
    PageKind,
    index_entries_per_page,
    values_per_page,
)


class TestValuesPerPage:
    def test_default_page_size_holds_508_values(self):
        assert values_per_page(PAGE_SIZE_DEFAULT) == 508

    def test_small_page(self):
        # 512 bytes minus 32-byte header leaves room for 60 float64s.
        assert values_per_page(512) == 60

    def test_scales_linearly_with_page_size(self):
        assert values_per_page(8192) > 2 * values_per_page(4096) - 8

    def test_rejects_tiny_pages(self):
        with pytest.raises(ConfigurationError):
            values_per_page(64)


class TestIndexEntriesPerPage:
    def test_default_geometry_4d(self):
        # 2 * 4 dims * 8 bytes + 12 overhead = 76 bytes per entry.
        assert index_entries_per_page(4, 4096) == (4096 - 32) // 76

    def test_higher_dimensions_reduce_fanout(self):
        assert index_entries_per_page(8, 4096) < index_entries_per_page(
            4, 4096
        )

    def test_fanout_at_least_two(self):
        with pytest.raises(ConfigurationError):
            index_entries_per_page(64, 256)

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ConfigurationError):
            index_entries_per_page(0, 4096)

    def test_rejects_tiny_page(self):
        with pytest.raises(ConfigurationError):
            index_entries_per_page(4, 100)


def test_page_kind_members():
    assert {kind.value for kind in PageKind} == {
        "data",
        "index_leaf",
        "index_internal",
        "free",
    }
