"""Tests for the fault-injection harness, checksums, retries, and
degradation-aware query execution."""

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.exceptions import (
    ConfigurationError,
    CorruptPageError,
    TransientIOError,
)
from repro.storage.buffer import BufferPool, RetryPolicy
from repro.storage.faults import (
    CORRUPT,
    LATENCY,
    TORN_WRITE,
    TRANSIENT,
    FaultInjector,
    FaultSpec,
    FaultyPager,
)
from repro.storage.page import PageKind
from repro.storage.pager import Pager
from tests.conftest import make_walk


def make_faulty_db(injector=None, retry_policy=None, *, psm=False):
    db = SubsequenceDatabase(
        omega=16,
        features=4,
        buffer_fraction=0.1,
        fault_injector=injector,
        retry_policy=retry_policy,
    )
    db.insert(0, make_walk(1500, seed=41))
    db.insert(1, make_walk(1100, seed=42))
    db.build(psm=psm)
    return db


def data_pages_of(db, sid):
    meta = db.store.meta(sid)
    return list(range(meta.first_page, meta.first_page + meta.num_pages))


class TestFaultSpec:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(fault="meteor-strike")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(fault=TRANSIENT, probability=1.5)

    def test_latency_requires_duration(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(fault=LATENCY)

    def test_iterables_normalised_to_frozensets(self):
        spec = FaultSpec(
            fault=TRANSIENT, page_ids=[1, 2, 2], page_kinds=[PageKind.DATA]
        )
        assert spec.page_ids == frozenset({1, 2})
        assert spec.page_kinds == frozenset({PageKind.DATA})

    def test_destructive_faults_default_to_once_per_page(self):
        assert FaultSpec(fault=CORRUPT).per_page_budget == 1
        assert FaultSpec(fault=TORN_WRITE).per_page_budget == 1
        assert FaultSpec(fault=TRANSIENT).per_page_budget is None
        assert FaultSpec(fault=TRANSIENT, max_per_page=2).per_page_budget == 2


class TestFaultInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        def run(seed):
            injector = FaultInjector(
                seed=seed,
                specs=[FaultSpec(fault=TRANSIENT, probability=0.3)],
            )
            return [
                bool(injector.read_faults(page_id, PageKind.DATA))
                for page_id in range(200)
            ]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_global_budget_caps_firing(self):
        injector = FaultInjector(
            specs=[FaultSpec(fault=TRANSIENT, max_triggers=3)]
        )
        fired = sum(
            bool(injector.read_faults(page_id, PageKind.DATA))
            for page_id in range(10)
        )
        assert fired == 3

    def test_per_page_budget(self):
        injector = FaultInjector.transient_reads([5], times=2)
        assert injector.read_faults(5, PageKind.DATA)
        assert injector.read_faults(5, PageKind.DATA)
        assert not injector.read_faults(5, PageKind.DATA)
        assert not injector.read_faults(6, PageKind.DATA)

    def test_kind_filter(self):
        injector = FaultInjector(
            specs=[
                FaultSpec(
                    fault=TRANSIENT, page_kinds=frozenset({PageKind.DATA})
                )
            ]
        )
        assert injector.read_faults(0, PageKind.DATA)
        assert not injector.read_faults(1, PageKind.INDEX_LEAF)

    def test_disabled_injector_fires_nothing(self):
        injector = FaultInjector(specs=[FaultSpec(fault=TRANSIENT)])
        injector.enabled = False
        assert not injector.read_faults(0, PageKind.DATA)


class TestFaultyPager:
    def _pager_with_page(self, injector=None, seal=True):
        pager = FaultyPager(injector=injector)
        values = np.arange(64, dtype=np.float64)
        page_id = pager.allocate(PageKind.DATA, values)
        if seal:
            pager.seal()
        return pager, page_id

    def test_no_specs_behaves_like_plain_pager(self):
        plain = Pager()
        faulty = FaultyPager()
        for pager in (plain, faulty):
            pid = pager.allocate(PageKind.DATA, np.arange(8, dtype=float))
            pager.seal()
            for _ in range(3):
                pager.read(pid)
        assert faulty.stats.physical_reads == plain.stats.physical_reads
        assert faulty.stats.physical_writes == plain.stats.physical_writes

    def test_transient_counts_the_failed_attempt(self):
        injector = FaultInjector.transient_reads([0], times=1)
        pager, page_id = self._pager_with_page(injector)
        with pytest.raises(TransientIOError):
            pager.read(page_id)
        assert pager.stats.physical_reads == 1
        payload = pager.read(page_id)  # second attempt succeeds
        assert pager.stats.physical_reads == 2
        assert payload[3] == 3.0
        assert injector.stats.transient_faults == 1

    def test_corrupt_detected_on_sealed_pager(self):
        injector = FaultInjector.corrupt_pages([0], seed=5)
        pager, page_id = self._pager_with_page(injector)
        with pytest.raises(CorruptPageError):
            pager.read(page_id)
        # Permanent: every later read keeps failing.
        with pytest.raises(CorruptPageError):
            pager.read(page_id)
        assert injector.stats.corruptions == 1
        assert injector.stats.corrupted_pages == [page_id]

    def test_corrupt_silent_on_unsealed_pager(self):
        injector = FaultInjector.corrupt_pages([0], seed=5)
        pager, page_id = self._pager_with_page(injector, seal=False)
        payload = pager.read(page_id)  # no checksum — flows through
        reference = np.arange(64, dtype=np.float64)
        assert not np.array_equal(payload, reference)
        assert np.sum(payload != reference) == 1  # exactly one value hit

    def test_torn_write_detected_on_next_read(self):
        injector = FaultInjector(specs=[FaultSpec(fault=TORN_WRITE)])
        pager, page_id = self._pager_with_page(injector)
        pager.write(page_id, np.ones(64))
        assert injector.stats.torn_writes == 1
        with pytest.raises(CorruptPageError):
            pager.read(page_id)
        stored = pager.peek(page_id)
        assert stored.shape[0] == 32  # only the prefix "reached disk"

    def test_latency_injection_counts_and_succeeds(self):
        injector = FaultInjector(
            specs=[FaultSpec(fault=LATENCY, latency_s=0.001)]
        )
        pager, page_id = self._pager_with_page(injector)
        payload = pager.read(page_id)
        assert payload[0] == 0.0
        assert injector.stats.latency_injections == 1
        assert injector.stats.latency_total_s == pytest.approx(0.001)


class TestPagerChecksums:
    def test_verify_all_clean_after_seal(self):
        pager = Pager()
        pager.allocate(PageKind.DATA, np.arange(10, dtype=float))
        pager.allocate(PageKind.DATA, np.arange(5, dtype=float))
        pager.seal()
        assert pager.sealed
        assert pager.verify_all() == []

    def test_verify_all_reports_tampered_page(self):
        pager = Pager()
        good = pager.allocate(PageKind.DATA, np.arange(10, dtype=float))
        bad = pager.allocate(PageKind.DATA, np.arange(5, dtype=float))
        pager.seal()
        pager._payloads[bad] = np.arange(5, dtype=float) + 1  # noqa: SLF001
        assert pager.verify_all() == [bad]
        assert pager.verify_page(good)
        assert not pager.verify_page(bad)

    def test_write_after_seal_keeps_checksum_current(self):
        pager = Pager()
        page_id = pager.allocate(PageKind.DATA, np.arange(10, dtype=float))
        pager.seal()
        pager.write(page_id, np.ones(10))
        assert pager.verify_page(page_id)
        np.testing.assert_array_equal(pager.read(page_id), np.ones(10))

    def test_verification_does_not_count_io(self):
        pager = Pager()
        page_id = pager.allocate(PageKind.DATA, np.arange(10, dtype=float))
        pager.seal()
        before = pager.stats.physical_reads
        pager.verify_all()
        assert pager.stats.physical_reads == before
        pager.read(page_id)
        assert pager.stats.physical_reads == before + 1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)

    def test_transient_fault_recovered_within_budget(self):
        injector = FaultInjector.transient_reads([0], times=2)
        pager = FaultyPager(injector=injector)
        page_id = pager.allocate(PageKind.DATA, np.arange(4, dtype=float))
        pager.seal()
        pool = BufferPool(
            pager, capacity_pages=2, retry_policy=RetryPolicy(max_attempts=3)
        )
        payload = pool.get(page_id)
        assert payload[2] == 2.0
        assert pool.stats.retries == 2
        # Two failed attempts + one success, all counted as physical I/O.
        assert pager.stats.physical_reads == 3

    def test_budget_exhaustion_propagates(self):
        injector = FaultInjector.transient_reads([0], times=5)
        pager = FaultyPager(injector=injector)
        page_id = pager.allocate(PageKind.DATA, np.arange(4, dtype=float))
        pager.seal()
        pool = BufferPool(
            pager, capacity_pages=2, retry_policy=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(TransientIOError):
            pool.get(page_id)
        assert pool.stats.retries == 1  # one retry, then the final failure

    def test_corruption_never_retried(self):
        injector = FaultInjector.corrupt_pages([0])
        pager = FaultyPager(injector=injector)
        page_id = pager.allocate(PageKind.DATA, np.arange(4, dtype=float))
        pager.seal()
        pool = BufferPool(
            pager, capacity_pages=2, retry_policy=RetryPolicy(max_attempts=5)
        )
        with pytest.raises(CorruptPageError):
            pool.get(page_id)
        assert pool.stats.retries == 0
        assert pager.stats.physical_reads == 1


class TestFaultsDisabledParity:
    """With no faults configured, the harness must be invisible."""

    def test_identical_topk_and_page_accesses(self):
        baseline = make_faulty_db(injector=None)
        harnessed = make_faulty_db(injector=FaultInjector(seed=0))
        assert isinstance(harnessed.pager, FaultyPager)
        query = baseline.store.peek_subsequence(0, 400, 64).copy()
        for method in ("seqscan", "hlmj", "ru", "ru-cost"):
            baseline.reset_cache()
            harnessed.reset_cache()
            expected = baseline.search(query, k=5, rho=2, method=method)
            actual = harnessed.search(query, k=5, rho=2, method=method)
            assert [m.key() for m in actual.matches] == [
                m.key() for m in expected.matches
            ]
            assert [m.distance for m in actual.matches] == [
                m.distance for m in expected.matches
            ]
            assert (
                actual.stats.page_accesses == expected.stats.page_accesses
            )
            assert not actual.degraded
            assert actual.fault_report is None


class TestTransientRetryExactness:
    def test_results_exact_under_transient_faults(self):
        baseline = make_faulty_db()
        injector = FaultInjector(
            seed=9,
            specs=[
                FaultSpec(
                    fault=TRANSIENT, probability=0.05, max_triggers=50
                )
            ],
        )
        db = make_faulty_db(
            injector=injector, retry_policy=RetryPolicy(max_attempts=3)
        )
        query = baseline.store.peek_subsequence(0, 400, 64).copy()
        baseline.reset_cache()
        db.reset_cache()
        injector.enabled = False  # keep the build/reset phases clean
        injector.enabled = True
        expected = baseline.search(query, k=5, rho=2, method="ru")
        actual = db.search(query, k=5, rho=2, method="ru")
        assert injector.stats.transient_faults > 0
        assert actual.stats.retries == injector.stats.transient_faults
        assert [m.key() for m in actual.matches] == [
            m.key() for m in expected.matches
        ]
        assert [m.distance for m in actual.matches] == [
            m.distance for m in expected.matches
        ]
        assert not actual.degraded
        # Each failed attempt is an extra physical read.
        assert actual.stats.page_accesses == (
            expected.stats.page_accesses + injector.stats.transient_faults
        )


class TestDegradedQueries:
    @pytest.mark.parametrize("method", ["seqscan", "hlmj", "ru", "ru-cost"])
    def test_raise_is_the_default(self, method):
        injector = FaultInjector(seed=1)
        db = make_faulty_db(injector=injector)
        injector.add(
            FaultSpec(fault=CORRUPT, page_ids=data_pages_of(db, 0))
        )
        query = db.store.peek_subsequence(0, 400, 64).copy()
        db.reset_cache()
        with pytest.raises(CorruptPageError):
            db.search(query, k=5, rho=2, method=method)

    @pytest.mark.parametrize("method", ["seqscan", "hlmj", "ru", "ru-cost"])
    def test_degrade_skips_unreadable_candidates(self, method):
        injector = FaultInjector(seed=1)
        db = make_faulty_db(injector=injector)
        injector.add(
            FaultSpec(fault=CORRUPT, page_ids=data_pages_of(db, 0))
        )
        query = db.store.peek_subsequence(0, 400, 64).copy()
        db.reset_cache()
        result = db.search(
            query, k=5, rho=2, method=method, on_fault="degrade"
        )
        assert result.degraded
        assert result.fault_report is not None
        assert result.fault_report.total > 0
        assert result.stats.faults_skipped == result.fault_report.total
        # Well-formed top-k: sorted, k results, all from the intact
        # sequence (sid 0's data pages are all corrupt).
        assert len(result.matches) == 5
        distances = [m.distance for m in result.matches]
        assert distances == sorted(distances)
        assert all(m.sid == 1 for m in result.matches)

    def test_degrade_survives_corrupt_index_leaves(self):
        injector = FaultInjector(seed=2)
        db = make_faulty_db(injector=injector)
        leaves = [
            page_id
            for page_id in range(db.pager.num_pages)
            if db.pager.kind_of(page_id) == PageKind.INDEX_LEAF
        ]
        injector.add(FaultSpec(fault=CORRUPT, page_ids=leaves))
        query = db.store.peek_subsequence(0, 400, 64).copy()
        db.reset_cache()
        result = db.search(
            query, k=5, rho=2, method="ru", on_fault="degrade"
        )
        # Every leaf expansion failed: the search degrades to whatever
        # candidates it can still reach (possibly none) instead of
        # aborting, and reports the pages it lost.
        assert result.degraded
        assert set(result.fault_report.failed_pages) <= set(leaves)
        assert result.fault_report.total > 0
        distances = [m.distance for m in result.matches]
        assert distances == sorted(distances)
        assert len(result.matches) <= 5

    def test_degrade_psm(self):
        injector = FaultInjector(seed=3)
        db = SubsequenceDatabase(
            omega=8,
            features=4,
            buffer_fraction=0.1,
            fault_injector=injector,
        )
        db.insert(0, make_walk(900, seed=21))
        db.insert(1, make_walk(700, seed=22))
        db.build(psm=True)
        injector.add(
            FaultSpec(fault=CORRUPT, page_ids=data_pages_of(db, 0))
        )
        query = db.store.peek_subsequence(0, 100, 24).copy()
        db.reset_cache()
        result = db.search(
            query, k=3, rho=1, method="psm", on_fault="degrade"
        )
        assert result.degraded
        assert all(m.sid == 1 for m in result.matches)

    def test_invalid_on_fault_rejected(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 100, 48).copy()
        with pytest.raises(ConfigurationError):
            walk_db.search(query, k=3, method="ru", on_fault="shrug")

    def test_fault_report_caps_events(self):
        from repro.engines.base import _MAX_FAULT_EVENTS, FaultReport

        report = FaultReport()
        for index in range(_MAX_FAULT_EVENTS + 10):
            report.record(CorruptPageError("x"), page_id=index)
        assert len(report.events) == _MAX_FAULT_EVENTS
        assert report.suppressed == 10
        assert report.total == _MAX_FAULT_EVENTS + 10


class TestVerifyIntegrity:
    def test_clean_database_verifies(self):
        db = make_faulty_db()
        report = db.verify_integrity()
        assert report["ok"]
        assert report["sealed"]
        assert report["corrupt_pages"] == []
        assert report["tree_errors"] == []
        assert report["counter_errors"] == []
        assert report["pages"] == db.pager.num_pages

    def test_detects_injected_corruption(self):
        injector = FaultInjector(seed=4)
        db = make_faulty_db(injector=injector)
        victim = data_pages_of(db, 0)[0]
        injector.add(FaultSpec(fault=CORRUPT, page_ids=[victim]))
        db.reset_cache()
        query = db.store.peek_subsequence(0, 10, 64).copy()
        with pytest.raises(CorruptPageError):
            db.search(query, k=3, rho=2, method="seqscan")
        report = db.verify_integrity()
        assert not report["ok"]
        assert victim in report["corrupt_pages"]

class TestInjectableClock:
    """Retry backoff and latency faults spend simulated, not real, time."""

    def make_faulty_pool(self, times, policy, clock):
        injector = FaultInjector.transient_reads([0], times=times)
        pager = FaultyPager(page_size=512, injector=injector, clock=clock)
        page = pager.allocate(PageKind.DATA)
        pager.write(page, np.arange(4.0))
        return BufferPool(
            pager, capacity_pages=2, retry_policy=policy, clock=clock
        )

    def test_backoff_sleeps_on_injected_clock(self):
        from repro.core.clock import FakeClock

        clock = FakeClock()
        pool = self.make_faulty_pool(
            times=3,
            policy=RetryPolicy(max_attempts=4, backoff_s=0.01, multiplier=2.0),
            clock=clock,
        )
        assert pool.get(0) is not None
        assert pool.stats.retries == 3
        # Geometric backoff entirely on the fake clock: 10 + 20 + 40 ms.
        assert clock.slept_s == pytest.approx(0.07)

    def test_zero_backoff_never_touches_the_clock(self):
        from repro.core.clock import FakeClock

        clock = FakeClock()
        pool = self.make_faulty_pool(
            times=1, policy=RetryPolicy(max_attempts=2), clock=clock
        )
        assert pool.get(0) is not None
        assert clock.slept_s == 0.0

    def test_latency_faults_sleep_on_injected_clock(self):
        from repro.core.clock import FakeClock

        clock = FakeClock()
        injector = FaultInjector(
            specs=[FaultSpec(fault=LATENCY, latency_s=0.5, max_triggers=2)]
        )
        pager = FaultyPager(page_size=512, injector=injector, clock=clock)
        page = pager.allocate(PageKind.DATA)
        pager.write(page, np.arange(4.0))
        pager.read(page)
        pager.read(page)
        assert clock.slept_s == pytest.approx(1.0)
        assert injector.stats.latency_total_s == pytest.approx(1.0)
