"""Unit tests for Match and TopKCollector (repro.core.results)."""

import math

import pytest

from repro.core.results import Match, TopKCollector
from repro.exceptions import QueryError


class TestMatch:
    def test_end_and_key(self):
        match = Match(distance=1.5, sid=3, start=10, length=4)
        assert match.end == 14
        assert match.key() == (3, 10)

    def test_ordering_is_distance_first(self):
        near = Match(distance=1.0, sid=9, start=9, length=4)
        far = Match(distance=2.0, sid=0, start=0, length=4)
        assert near < far


class TestTopKCollector:
    def test_threshold_infinite_until_full(self):
        collector = TopKCollector(k=2)
        assert collector.threshold_pow == math.inf
        collector.offer_pow(4.0, 0, 0)
        assert collector.threshold_pow == math.inf
        collector.offer_pow(9.0, 0, 1)
        assert collector.threshold_pow == 9.0
        assert collector.threshold == 3.0

    def test_replacement_keeps_best_k(self):
        collector = TopKCollector(k=2)
        collector.offer_pow(9.0, 0, 0)
        collector.offer_pow(4.0, 0, 1)
        assert collector.offer_pow(1.0, 0, 2)
        matches = collector.matches(length=4)
        assert [m.start for m in matches] == [2, 1]

    def test_worse_offer_rejected(self):
        collector = TopKCollector(k=1)
        collector.offer_pow(1.0, 0, 0)
        assert not collector.offer_pow(2.0, 0, 1)

    def test_tie_keeps_incumbent(self):
        collector = TopKCollector(k=1)
        collector.offer_pow(1.0, 0, 0)
        assert not collector.offer_pow(1.0, 0, 1)
        assert collector.matches(4)[0].start == 0

    def test_infinite_distance_rejected(self):
        collector = TopKCollector(k=1)
        assert not collector.offer_pow(math.inf, 0, 0)
        assert len(collector) == 0

    def test_matches_are_rooted_and_sorted(self):
        collector = TopKCollector(k=3, p=2.0)
        collector.offer_pow(16.0, 1, 5)
        collector.offer_pow(4.0, 0, 3)
        collector.offer_pow(9.0, 2, 1)
        matches = collector.matches(length=8)
        assert [m.distance for m in matches] == [2.0, 3.0, 4.0]
        assert all(m.length == 8 for m in matches)

    def test_partial_fill(self):
        collector = TopKCollector(k=5)
        collector.offer_pow(1.0, 0, 0)
        assert not collector.is_full
        assert len(collector.matches(4)) == 1

    def test_other_norms(self):
        collector = TopKCollector(k=1, p=3.0)
        collector.offer_pow(8.0, 0, 0)
        assert collector.matches(4)[0].distance == pytest.approx(2.0)
        assert collector.threshold == pytest.approx(2.0)

    def test_invalid_k(self):
        with pytest.raises(QueryError):
            TopKCollector(k=0)


class TestTopKCollectorTotalOrder:
    """The frontier pins the total order (distance, sid, start).

    Regression for a latent tie-breaking nondeterminism: with
    distance-only comparisons the retained set among equal-distance
    candidates depended on arrival order, which broke byte-identical
    sharded-vs-unsharded differential testing (shards enumerate
    candidates in different orders).
    """

    CANDIDATES = [
        (4.0, 1, 7),
        (4.0, 0, 9),
        (4.0, 2, 1),
        (4.0, 0, 3),
        (1.0, 5, 5),
        (4.0, 1, 2),
    ]

    @staticmethod
    def _collect(order):
        collector = TopKCollector(k=3)
        for pow_, sid, start in order:
            collector.offer_pow(pow_, sid, start)
        return [(m.distance, m.sid, m.start) for m in collector.matches(4)]

    def test_arrival_order_invariance(self):
        import itertools

        expected = sorted(
            (math.sqrt(p), sid, start)
            for p, sid, start in self.CANDIDATES
        )[:3]
        for order in itertools.permutations(self.CANDIDATES):
            assert self._collect(order) == expected

    def test_equal_distance_ties_prefer_low_sid_then_start(self):
        collector = TopKCollector(k=2)
        collector.offer_pow(1.0, 9, 9)
        collector.offer_pow(1.0, 2, 5)
        collector.offer_pow(1.0, 2, 4)
        collector.offer_pow(1.0, 3, 0)
        assert [(m.sid, m.start) for m in collector.matches(4)] == [
            (2, 4),
            (2, 5),
        ]
