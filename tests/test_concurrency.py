"""Runtime side of the concurrency contracts.

Two halves:

* Introspection — the contract decorators are no-wrappers that attach
  ``__repro_shared__`` / ``__repro_guards__`` /
  ``__repro_requires_lock__``, and the annotated production classes
  actually carry the contracts the linter enforces statically.
* Hammer tests — eight threads drive the locked
  :class:`~repro.obs.metrics.MetricsRegistry` and
  :class:`~repro.obs.tracer.Tracer` through a barrier-synchronised
  burst; counts must come out exact (no lost updates) and every
  recorded span tree must be well-formed (the per-thread stacks never
  interleave).

These tests are what the static rules *promise*: remove a lock the
annotations declare and, beyond the RS010 finding, this file is the
suite that actually goes red under load.
"""

from __future__ import annotations

import threading
from typing import Callable, List

import pytest

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
    single_query,
)
from repro.control import AdmissionController, ExecutionControl
from repro.core.metrics import QueryStats, StatsRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer, validate_span_tree
from repro.serve import (
    AgingPriorityQueue,
    QueryService,
    TenantRegistry,
    TenantState,
    TokenBucket,
)
from repro.storage.buffer import BufferPool
from repro.storage.circuit import CircuitBreaker
from repro.storage.wal import WriteAheadLog

THREADS = 8


def _run_threads(worker: Callable[[int], None], count: int = THREADS) -> None:
    """Run ``worker(thread_index)`` on ``count`` threads, rethrowing the
    first worker exception in the caller."""
    barrier = threading.Barrier(count)
    failures: List[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestContractDecorators:
    def test_shared_and_single_markers(self) -> None:
        @shared_across_queries
        class Shared:
            pass

        @single_query
        class Owned:
            pass

        assert Shared.__repro_shared__ is True
        assert Owned.__repro_shared__ is False

    def test_decorators_do_not_wrap(self) -> None:
        class Plain:
            pass

        def helper() -> None:
            pass

        assert shared_across_queries(Plain) is Plain
        assert guarded_by("_lock", "_x")(Plain) is Plain
        assert requires_lock("_lock")(helper) is helper

    def test_guarded_by_merges_across_decorators(self) -> None:
        @guarded_by("_lock", "_a", "_b")
        @guarded_by("_other", "_c")
        class Guarded:
            pass

        assert Guarded.__repro_guards__ == {
            "_a": "_lock",
            "_b": "_lock",
            "_c": "_other",
        }

    def test_requires_lock_attribute(self) -> None:
        @requires_lock("_lock")
        def helper() -> None:
            pass

        assert helper.__repro_requires_lock__ == "_lock"

    def test_production_classes_declare_contracts(self) -> None:
        # The concrete contract map docs/concurrency-contracts.md
        # documents, introspectable at runtime.
        for cls in (
            AgingPriorityQueue,
            BufferPool,
            CircuitBreaker,
            MetricsRegistry,
            QueryService,
            TenantRegistry,
            TenantState,
            TokenBucket,
            Tracer,
            WriteAheadLog,
        ):
            assert cls.__repro_shared__ is True, cls.__name__
            guards = cls.__repro_guards__
            assert guards, cls.__name__
            # Every guard in a class maps to a real lock attribute name.
            assert all(lock.startswith("_") for lock in guards.values())
        assert AdmissionController.__repro_shared__ is True
        assert (
            AdmissionController.__repro_guards__["_active"] == "_condition"
        )
        assert QueryStats.__repro_shared__ is False
        assert StatsRecorder.__repro_shared__ is False
        assert ExecutionControl.__repro_shared__ is False

    def test_shard_classes_declare_contracts(self) -> None:
        from repro.shard import (
            ProcessShardExecutor,
            SerialShardExecutor,
            ShardedDatabase,
            ShardedMatchStream,
            ShardPlanner,
            ThreadShardExecutor,
        )

        # Pool-holding executors guard the pool handle with the lock.
        for cls in (ThreadShardExecutor, ProcessShardExecutor):
            assert cls.__repro_shared__ is True, cls.__name__
            assert cls.__repro_guards__ == {"_pool": "_lock"}, cls.__name__
        # Shared but lock-free by construction (immutable after build).
        assert ShardedDatabase.__repro_shared__ is True
        assert SerialShardExecutor.__repro_shared__ is True
        assert ShardPlanner.__repro_shared__ is True
        # One stream belongs to one query.
        assert ShardedMatchStream.__repro_shared__ is False

    def test_requires_lock_on_production_helpers(self) -> None:
        assert BufferPool._evict_one.__repro_requires_lock__ == "_lock"
        assert (
            AgingPriorityQueue._worst_index_locked.__repro_requires_lock__
            == "_lock"
        )
        assert TokenBucket._refill_locked.__repro_requires_lock__ == "_lock"
        assert (
            MetricsRegistry._check_free.__repro_requires_lock__ == "_lock"
        )
        assert (
            AdmissionController._admit_locked.__repro_requires_lock__
            == "_condition"
        )


class TestMetricsRegistryUnderThreads:
    ITERS = 2000

    def test_shared_counter_loses_no_updates(self) -> None:
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            # Fetch through the registry each time: exercises the
            # create-or-get race as well as Counter.inc itself.
            for _ in range(self.ITERS):
                registry.counter("queries").inc()

        _run_threads(worker)
        assert registry.counter("queries").value == THREADS * self.ITERS

    def test_histogram_tallies_are_exact(self) -> None:
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=[1.0, 10.0])

        def worker(index: int) -> None:
            for i in range(self.ITERS):
                histogram.observe(float(i % 20))

        _run_threads(worker)
        assert histogram.count == THREADS * self.ITERS
        assert sum(histogram.counts) == THREADS * self.ITERS

    def test_snapshots_are_untorn_while_writers_run(self) -> None:
        # Writers bump two counters back-to-back under separate inc()
        # calls; a snapshot taken under the shared registry lock must
        # never observe "a" ahead of... it can, but never see totals
        # that violate per-counter monotonicity or tear a float.
        registry = MetricsRegistry()
        stop = threading.Event()
        snapshots: List[float] = []

        def reader() -> None:
            while not stop.is_set():
                snap = registry.snapshot()
                counters = dict(snap.counters)
                snapshots.append(counters.get("ticks", 0.0))

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:

            def worker(index: int) -> None:
                for _ in range(self.ITERS):
                    registry.counter("ticks").inc()

            _run_threads(worker)
        finally:
            stop.set()
            reader_thread.join()

        # Every observed value is a whole number of incs (no torn
        # reads) and the sequence is monotone non-decreasing.
        assert all(value == int(value) for value in snapshots)
        assert snapshots == sorted(snapshots)
        assert registry.counter("ticks").value == THREADS * self.ITERS


class TestTracerUnderThreads:
    SPANS_PER_THREAD = 50

    def test_per_thread_trees_stay_well_formed(self) -> None:
        tracer = Tracer(enabled=True, max_spans=10_000, max_events=10_000)

        def worker(index: int) -> None:
            for i in range(self.SPANS_PER_THREAD):
                with tracer.span(f"outer-{index}"):
                    tracer.event("tick", i=i)
                    with tracer.span(f"inner-{index}"):
                        tracer.event("tock")
                # The stack is thread-local: after the with-blocks this
                # thread is back at depth zero regardless of the others.
                assert tracer.depth == 0

        _run_threads(worker)

        expected_roots = THREADS * self.SPANS_PER_THREAD
        assert len(tracer.roots) == expected_roots
        assert tracer.span_total == 2 * expected_roots
        assert tracer.dropped_spans == 0
        for root in tracer.roots:
            assert validate_span_tree(root) == []
            assert len(root.children) == 1

    def test_span_cap_is_enforced_exactly(self) -> None:
        cap = 100
        tracer = Tracer(enabled=True, max_spans=cap)

        def worker(index: int) -> None:
            for _ in range(self.SPANS_PER_THREAD):
                with tracer.span("burst"):
                    pass

        _run_threads(worker)
        attempts = THREADS * self.SPANS_PER_THREAD
        assert tracer.span_total == cap
        assert tracer.dropped_spans == attempts - cap

    def test_disabled_tracer_is_inert_under_threads(self) -> None:
        tracer = Tracer(enabled=False)

        def worker(index: int) -> None:
            for _ in range(self.SPANS_PER_THREAD):
                with tracer.span("noop"):
                    tracer.event("nope")

        _run_threads(worker)
        assert tracer.roots == []
        assert tracer.span_total == 0
        assert tracer.dropped_spans == 0

    def test_reset_drops_every_threads_stack(self) -> None:
        tracer = Tracer(enabled=True)
        opened = threading.Event()
        release = threading.Event()

        def worker() -> None:
            tracer.start_span("orphan")
            opened.set()
            release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        assert opened.wait(timeout=5)
        tracer.reset()
        release.set()
        thread.join()
        assert tracer.roots == []
        assert tracer.span_total == 0
        # The resetting thread's own stack is fresh too.
        assert tracer.depth == 0


class TestCircuitBreakerUnderThreads:
    def test_concurrent_outcomes_are_all_recorded(self) -> None:
        # A threshold of 1.0 with alternating outcomes keeps the
        # breaker closed (failure rate stays at 0.5) so every record
        # lands in the window.
        breaker = CircuitBreaker(window=100_000, failure_threshold=1.0)
        iters = 500

        def worker(index: int) -> None:
            for i in range(iters):
                if (index + i) % 2:
                    breaker.record_success()
                else:
                    breaker.record_failure()

        _run_threads(worker)
        assert len(breaker._outcomes) == THREADS * iters
        assert breaker.state == "closed"


class TestShardedDatabaseUnderThreads:
    """8 threads hammer one shared ShardedDatabase concurrently.

    The facade is @shared_across_queries: the plan, the shard
    databases, and the thread-pool executor are shared between every
    in-flight query, so racing queries must not corrupt each other's
    merged results.  Every thread checks its answers against
    single-threaded golden answers captured up front.
    """

    QUERIES_PER_THREAD = 4

    def test_parallel_queries_stay_exact(self) -> None:
        import numpy as np

        from repro.shard import ShardedDatabase

        rng = np.random.default_rng(77)
        db = ShardedDatabase(
            num_shards=3,
            policy="hash",
            executor="thread",
            omega=8,
            features=4,
            buffer_fraction=0.2,
        )
        for sid, n in enumerate((400, 300, 350)):
            db.insert(sid, rng.standard_normal(n).cumsum())
        db.build()
        try:
            methods = ("seqscan", "hlmj", "ru", "ru-cost")
            queries = [
                rng.standard_normal(24).cumsum()
                for _ in range(self.QUERIES_PER_THREAD)
            ]
            golden = {
                (qi, method): db.search(
                    queries[qi], k=5, rho=1, method=method
                ).matches
                for qi in range(len(queries))
                for method in methods
            }

            def worker(index: int) -> None:
                for qi in range(len(queries)):
                    method = methods[(index + qi) % len(methods)]
                    result = db.search(
                        queries[qi], k=5, rho=1, method=method
                    )
                    assert result.matches == golden[(qi, method)]
                    assert result.stats.page_accesses == sum(
                        s.page_accesses
                        for s in result.shard_stats.values()
                    )

            _run_threads(worker)
        finally:
            db.close()

    def test_parallel_streams_stay_exact(self) -> None:
        import numpy as np

        from repro.shard import ShardedDatabase

        rng = np.random.default_rng(78)
        db = ShardedDatabase(
            num_shards=2,
            policy="range",
            executor="thread",
            omega=8,
            features=4,
            buffer_fraction=0.2,
        )
        for sid, n in enumerate((350, 300)):
            db.insert(sid, rng.standard_normal(n).cumsum())
        db.build()
        try:
            query = rng.standard_normal(24).cumsum()
            golden_stream = db.iter_matches(query, k=6, rho=1)
            golden = list(golden_stream)
            golden_stream.close()

            def worker(index: int) -> None:
                stream = db.iter_matches(query, k=6, rho=1)
                try:
                    assert list(stream) == golden
                finally:
                    stream.close()

            _run_threads(worker)
        finally:
            db.close()
