"""Unit tests for the per-window priority queues (repro.engines.queues)."""

import math

import pytest

from repro.core.metrics import QueryStats
from repro.core.windows import QueryWindowSet
from repro.engines.queues import LEAF, NODE, WindowQueue
from tests.conftest import make_walk


@pytest.fixture()
def queue(walk_db):
    query = walk_db.store.peek_subsequence(0, 250, 48).copy()
    window_set = QueryWindowSet.from_query(
        query, omega=16, features=4, rho=2
    )
    return WindowQueue(
        window=window_set.windows[0],
        tree=walk_db.index.tree,
        seg_len=walk_db.index.seg_len,
        p=2.0,
        stats=QueryStats(),
    )


class TestInitialState:
    def test_starts_with_root_pair_at_zero(self, queue):
        assert len(queue) == 1
        assert queue.top_pow() == 0.0
        assert not queue.is_empty
        assert queue.last_popped_leaf_pow == 0.0

    def test_empty_queue_top_is_infinite(self, queue):
        queue.pop()
        assert queue.is_empty
        assert queue.top_pow() == math.inf


class TestPopAndExpand:
    def test_pop_orders_by_distance(self, queue):
        # Drain fully; distances must come out non-decreasing.
        seen = []
        while not queue.is_empty:
            dist_pow, _seq, kind, payload, _far = queue.pop()
            seen.append(dist_pow)
            if kind == NODE:
                queue.expand_node(payload)
        assert seen == sorted(seen)
        assert len(seen) > 50  # visited nodes and leaf pairs

    def test_pop_tracks_last_leaf(self, queue):
        while not queue.is_empty:
            dist_pow, _seq, kind, payload, _far = queue.pop()
            if kind == LEAF:
                assert queue.last_popped_leaf_pow == dist_pow
                break
            queue.expand_node(payload)

    def test_expansion_cap_prunes_children(self, queue):
        dist_pow, _seq, kind, payload, _far = queue.pop()
        assert kind == NODE
        queue.expand_node(payload, cap_pow=-1.0)  # prune everything
        assert queue.is_empty

    def test_version_bumps_on_mutation(self, queue):
        version = queue.version
        _dist, _seq, _kind, payload, _far = queue.pop()
        assert queue.version > version
        version = queue.version
        queue.expand_node(payload)
        assert queue.version > version

    def test_expand_first_node_resolves_in_place(self, queue):
        before = len(queue)
        assert queue.expand_first_node()
        assert len(queue) > before  # root replaced by its children
        # Eventually no nodes remain.
        while queue.expand_first_node():
            pass
        assert all(entry[2] == LEAF for entry in queue.iter_entries())
        assert not queue.expand_first_node()


class TestScans:
    def test_sorted_prefix_matches_full_sort(self, queue):
        queue.expand_first_node()
        queue.expand_first_node()
        prefix = queue.sorted_prefix(5)
        full = sorted(queue.iter_entries())
        assert prefix == full[:5]

    def test_iter_leaf_records_only_leaves(self, queue):
        while queue.expand_first_node():
            pass
        leaves = list(queue.iter_leaf_records())
        assert len(leaves) == len(queue)
        assert all(
            hasattr(record, "window_index") for _dist, record in leaves
        )

    def test_maxdist_at_least_mindist(self, queue):
        queue.expand_first_node()
        for dist_pow, _seq, kind, _payload, far_pow in queue.iter_entries():
            assert far_pow >= dist_pow - 1e-12
            if kind == LEAF:
                assert far_pow == dist_pow
