"""Unit tests for the perf-regression subsystem (``repro bench``).

The gate logic (:func:`repro.bench.perf.compare`), the report schema
round-trip, and the CLI exit-code contract are tested on synthetic
reports so the suite stays fast; one real kernel benchmark runs end to
end as a smoke check.
"""

import copy

import numpy as np
import pytest

from repro.__main__ import main
from repro.bench import perf


def make_report(**suites):
    return {
        "schema": perf.SCHEMA_VERSION,
        "kind": "repro-bench",
        "created": "2026-01-01T00:00:00Z",
        "seed": 0,
        "quick": False,
        "environment": {"python": "x", "numpy": "y", "machine": "z"},
        "suites": suites,
    }


def kernel_block(speedup=10.0, exact=True):
    return {
        "dtw_wavefront_len256": {
            "exact": exact,
            "scalar_ms": 1.0,
            "batch_ms_per_candidate": 0.1,
            "speedup": speedup,
        }
    }


def engine_block(candidates=100, distance="1.5"):
    return {
        "ru": {
            "counters": {
                "candidates": candidates,
                "page_accesses": 7,
                "dtw_computations": 3,
                "heap_pops": 11,
            },
            "distances": [distance],
            "matches": [[0, 640]],
            "wall_time_s": 0.01,
        }
    }


def serve_block(qps=60.0, exact=True, errors=0):
    return {
        "load_mixed_knn": {
            "clients": 8,
            "workers": 4,
            "requests": 96,
            "completed": 96,
            "errors": errors,
            "exact": exact,
            "throughput_qps": qps,
            "p50_ms": 100.0,
            "p99_ms": 200.0,
            "mean_queue_wait_ms": 50.0,
        }
    }


def shard_block(speedup=1.3, exact=True):
    return {
        "ru_cost_shards4": {
            "shards": 4,
            "executor": "thread",
            "unsharded_ms": 100.0,
            "sharded_ms": 100.0 / speedup,
            "speedup": speedup,
            "exact": exact,
        }
    }


class TestCompareGate:
    def test_identical_reports_pass(self):
        report = make_report(
            kernels=kernel_block(), engines=engine_block()
        )
        assert perf.compare(report, copy.deepcopy(report)) == []

    def test_wall_time_is_never_gated(self):
        base = make_report(engines=engine_block())
        cur = copy.deepcopy(base)
        cur["suites"]["engines"]["ru"]["wall_time_s"] = 99.0
        assert perf.compare(cur, base) == []

    def test_speedup_within_tolerance_passes(self):
        base = make_report(kernels=kernel_block(speedup=10.0))
        cur = make_report(kernels=kernel_block(speedup=8.01))
        assert perf.compare(cur, base) == []

    def test_environment_drift_above_floor_passes(self):
        # More than 20% below the baseline ratio, but still above the
        # 6.0x absolute floor for dtw_wavefront_len256: the dual
        # criterion reads this as environment drift, not a regression.
        base = make_report(kernels=kernel_block(speedup=10.0))
        cur = make_report(kernels=kernel_block(speedup=7.9))
        assert perf.compare(cur, base) == []

    def test_speedup_regression_fails(self):
        # Below the relative floor AND below the absolute floor: a
        # real regression (e.g. a de-vectorized kernel).
        base = make_report(kernels=kernel_block(speedup=10.0))
        cur = make_report(kernels=kernel_block(speedup=4.0))
        regressions = perf.compare(cur, base)
        assert len(regressions) == 1
        assert regressions[0].suite == "kernels"
        assert "fell below" in str(regressions[0])
        assert "absolute floor" in str(regressions[0])

    def test_unregistered_kernel_keeps_relative_gate(self):
        # A kernel with no SPEEDUP_FLOORS entry falls back to the pure
        # relative criterion (safe default for newly added benches).
        base = make_report(
            kernels={"new_kernel": dict(kernel_block()["dtw_wavefront_len256"])}
        )
        cur = copy.deepcopy(base)
        cur["suites"]["kernels"]["new_kernel"]["speedup"] = 7.9
        regressions = perf.compare(cur, base)
        assert len(regressions) == 1
        assert "absolute floor" not in str(regressions[0])

    def test_exactness_failure_fails(self):
        base = make_report(kernels=kernel_block())
        cur = make_report(kernels=kernel_block(exact=False))
        regressions = perf.compare(cur, base)
        assert any("oracle" in r.message for r in regressions)

    def test_missing_benchmark_fails(self):
        base = make_report(kernels=kernel_block())
        cur = make_report(kernels={})
        regressions = perf.compare(cur, base)
        assert any("disappeared" in r.message for r in regressions)

    def test_counter_drift_fails(self):
        base = make_report(engines=engine_block(candidates=100))
        cur = make_report(engines=engine_block(candidates=101))
        regressions = perf.compare(cur, base)
        assert len(regressions) == 1
        assert "candidates" in regressions[0].message

    def test_distance_digest_drift_fails(self):
        base = make_report(engines=engine_block(distance="1.5"))
        cur = make_report(engines=engine_block(distance="1.5000001"))
        regressions = perf.compare(cur, base)
        assert any("distances" in r.message for r in regressions)

    def test_only_shared_suites_compared(self):
        # A kernels-only CI run against an all-suites baseline must not
        # complain about the missing engine data.
        base = make_report(
            kernels=kernel_block(), engines=engine_block()
        )
        cur = make_report(kernels=kernel_block())
        assert perf.compare(cur, base) == []

    def test_regression_renders_as_suite_slash_name(self):
        regression = perf.Regression("kernels", "dtw", "broke")
        assert str(regression) == "kernels/dtw: broke"


class TestServeGate:
    def test_identical_reports_pass(self):
        report = make_report(serve=serve_block())
        assert perf.compare(report, copy.deepcopy(report)) == []

    def test_inexact_responses_fail(self):
        base = make_report(serve=serve_block())
        cur = make_report(serve=serve_block(exact=False))
        regressions = perf.compare(cur, base)
        assert any("oracle" in r.message for r in regressions)

    def test_errors_fail(self):
        base = make_report(serve=serve_block())
        cur = make_report(serve=serve_block(errors=2))
        regressions = perf.compare(cur, base)
        assert any("errored" in r.message for r in regressions)

    def test_missing_run_fails(self):
        base = make_report(serve=serve_block())
        cur = make_report(serve={})
        regressions = perf.compare(cur, base)
        assert any("disappeared" in r.message for r in regressions)

    def test_throughput_dual_criterion(self):
        base = make_report(serve=serve_block(qps=60.0))
        # Below the relative floor (60 * 0.5 = 30) but above the 5 qps
        # absolute floor: environment drift, not a regression.
        slow_host = make_report(serve=serve_block(qps=10.0))
        assert perf.compare(slow_host, base) == []
        # Below both criteria: a real throughput regression.
        broken = make_report(serve=serve_block(qps=2.0))
        regressions = perf.compare(broken, base)
        assert len(regressions) == 1
        assert "absolute floor" in regressions[0].message

    def test_format_report_renders_serve(self):
        text = perf.format_report(make_report(serve=serve_block()))
        assert "load_mixed_knn" in text
        assert "qps" in text

    def test_quick_suite_smoke(self):
        block = perf.run_serve_suite(seed=0, quick=True)
        record = block["load_mixed_knn"]
        assert record["exact"] is True
        assert record["errors"] == 0
        assert record["completed"] == record["requests"]
        assert record["throughput_qps"] > 0
        assert record["p99_ms"] >= record["p50_ms"]


class TestShardGate:
    def test_identical_reports_pass(self):
        report = make_report(shard=shard_block())
        assert perf.compare(report, copy.deepcopy(report)) == []

    def test_exactness_always_gated(self):
        base = make_report(shard=shard_block())
        cur = make_report(shard=shard_block(exact=False))
        regressions = perf.compare(cur, base)
        assert any("byte-identical" in r.message for r in regressions)

    def test_missing_run_fails(self):
        base = make_report(shard=shard_block())
        cur = make_report(shard={})
        regressions = perf.compare(cur, base)
        assert any("disappeared" in r.message for r in regressions)

    def test_speedup_dual_criterion(self):
        base = make_report(shard=shard_block(speedup=1.3))
        # Below the 1.0x floor but within the relative tolerance of the
        # committed baseline (1.3 * 0.5 = 0.65): a single-core host, not
        # a regression.
        single_core = make_report(shard=shard_block(speedup=0.7))
        assert perf.compare(single_core, base) == []
        # Below the floor AND collapsed versus the baseline: a genuine
        # parallel-path regression.
        broken = make_report(shard=shard_block(speedup=0.2))
        regressions = perf.compare(broken, base)
        assert len(regressions) == 1
        assert "floor" in regressions[0].message

    def test_speedup_above_floor_never_fails(self):
        # A host that still clears the absolute floor passes no matter
        # how fast the baseline host was.
        base = make_report(shard=shard_block(speedup=3.5))
        cur = make_report(shard=shard_block(speedup=1.05))
        assert perf.compare(cur, base) == []

    def test_format_report_renders_shard(self):
        text = perf.format_report(make_report(shard=shard_block()))
        assert "ru_cost_shards4" in text
        assert "speedup" in text

    def test_quick_suite_smoke(self):
        block = perf.run_shard_suite(seed=0, quick=True)
        for record in block.values():
            assert record["exact"] is True
            assert record["speedup"] > 0
            assert record["sharded_ms"] > 0


def storage_block(exact=True, page_accesses=248):
    return {
        "ru_cost_raw": {
            "normalize": False,
            "file_ms": 20.0,
            "mmap_ms": 16.0,
            "speedup": 1.25,
            "page_accesses": page_accesses,
            "exact": exact,
        }
    }


class TestStorageGate:
    def test_identical_reports_pass(self):
        report = make_report(storage=storage_block())
        assert perf.compare(report, copy.deepcopy(report)) == []

    def test_exactness_always_gated(self):
        base = make_report(storage=storage_block())
        cur = make_report(storage=storage_block(exact=False))
        regressions = perf.compare(cur, base)
        assert any("byte-identical" in r.message for r in regressions)

    def test_num_io_drift_fails(self):
        base = make_report(storage=storage_block())
        cur = make_report(storage=storage_block(page_accesses=249))
        regressions = perf.compare(cur, base)
        assert any("NUM_IO drifted" in r.message for r in regressions)

    def test_missing_run_fails(self):
        base = make_report(storage=storage_block())
        cur = make_report(storage={})
        regressions = perf.compare(cur, base)
        assert any("disappeared" in r.message for r in regressions)

    def test_timing_is_never_gated(self):
        # The mmap-vs-file ratio depends on the host's page cache and
        # allocator; only exactness and NUM_IO are gated.
        base = make_report(storage=storage_block())
        cur = make_report(storage=storage_block())
        cur["suites"]["storage"]["ru_cost_raw"]["speedup"] = 0.01
        cur["suites"]["storage"]["ru_cost_raw"]["mmap_ms"] = 2000.0
        assert perf.compare(cur, base) == []

    def test_format_report_renders_storage(self):
        text = perf.format_report(make_report(storage=storage_block()))
        assert "ru_cost_raw" in text
        assert "mmap" in text

    def test_quick_suite_smoke(self):
        block = perf.run_storage_suite(seed=0, quick=True)
        assert set(block) == {"ru_cost_raw", "ru_cost_znorm"}
        for record in block.values():
            assert record["exact"] is True
            assert record["mmap_ms"] > 0
            assert record["file_ms"] > 0
        assert block["ru_cost_raw"]["page_accesses"] == 248


class TestReportIO:
    def test_round_trip(self, tmp_path):
        report = make_report(kernels=kernel_block())
        path = str(tmp_path / "report.json")
        perf.write_report(report, path)
        assert perf.load_report(path) == report

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = str(tmp_path / "bad.json")
        perf.write_report({"kind": "something-else", "schema": 1}, path)
        with pytest.raises(ValueError, match="not a repro-bench report"):
            perf.load_report(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = str(tmp_path / "bad.json")
        report = make_report()
        report["schema"] = perf.SCHEMA_VERSION + 1
        perf.write_report(report, path)
        with pytest.raises(ValueError, match="schema"):
            perf.load_report(path)

    def test_default_json_name(self):
        from datetime import datetime, timezone

        now = datetime(2026, 8, 6, tzinfo=timezone.utc)
        assert perf.default_json_name(now) == "BENCH_2026-08-06.json"

    def test_run_suites_metadata(self):
        report = perf.run_suites((), seed=3, quick=True)
        assert report["kind"] == "repro-bench"
        assert report["schema"] == perf.SCHEMA_VERSION
        assert report["seed"] == 3
        assert report["quick"] is True
        assert report["suites"] == {}
        assert "numpy" in report["environment"]


class TestCLIExitCodes:
    """The documented contract: 0 gate pass, 1 regression, 2 usage."""

    @pytest.fixture()
    def fake_suite(self, monkeypatch):
        report = make_report(kernels=kernel_block(speedup=10.0))

        def fake_run_suites(suites, seed=0, quick=False):
            return copy.deepcopy(report)

        monkeypatch.setattr(perf, "run_suites", fake_run_suites)
        return report

    def test_missing_baseline_is_usage_error(self, fake_suite, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "--baseline", missing]) == 2

    def test_update_baseline_then_gate_passes(self, fake_suite, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench", "--baseline", baseline, "--update-baseline"]) == 0
        assert main(["bench", "--baseline", baseline]) == 0

    def test_regression_exits_one(self, fake_suite, tmp_path, monkeypatch):
        baseline = str(tmp_path / "baseline.json")
        better = copy.deepcopy(fake_suite)
        better["suites"]["kernels"]["dtw_wavefront_len256"]["speedup"] = 100.0
        perf.write_report(better, baseline)
        # The measured 10.0x is above the kernel's 6.0x absolute floor,
        # so push the current run below both criteria.
        worse = copy.deepcopy(fake_suite)
        worse["suites"]["kernels"]["dtw_wavefront_len256"]["speedup"] = 4.0

        def fake_run_suites(suites, seed=0, quick=False):
            return copy.deepcopy(worse)

        monkeypatch.setattr(perf, "run_suites", fake_run_suites)
        assert main(["bench", "--baseline", baseline]) == 1

    def test_json_report_written(self, fake_suite, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        out = str(tmp_path / "out.json")
        main(["bench", "--baseline", baseline, "--update-baseline",
              "--json", out])
        assert perf.load_report(out)["suites"]["kernels"]

    def test_corrupt_baseline_is_usage_error(self, fake_suite, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"kind": "other"}')
        assert main(["bench", "--baseline", str(baseline)]) == 2


class TestKernelBenchSmoke:
    def test_paa_bench_runs_and_is_exact(self):
        rng = np.random.default_rng(0)
        record = perf._bench_paa(rng, quick=True)
        assert record["exact"] is True
        assert record["speedup"] > 0
        assert record["windows"] == 2048  # quick mode keeps sizes fixed

    def test_quick_mode_keeps_dtw_config(self):
        # The committed baseline was recorded in full mode; quick CI
        # runs stay comparable only if the measured problem is
        # identical.  Guard the config knobs the gate depends on.
        rng = np.random.default_rng(0)
        record = perf._bench_lb_paa(rng, quick=True)
        assert record["entries"] == 1000

    def test_format_report_renders_both_suites(self):
        report = make_report(
            kernels=kernel_block(), engines=engine_block()
        )
        text = perf.format_report(report)
        assert "dtw_wavefront_len256" in text
        assert "ru" in text
        assert "10.00x" in text
