"""Unit tests for PAA (repro.core.paa)."""

import numpy as np
import pytest

from repro.core.envelope import query_envelope
from repro.core.paa import paa, paa_envelope, segment_length
from repro.exceptions import ConfigurationError, QueryError


class TestSegmentLength:
    def test_exact_division(self):
        assert segment_length(64, 4) == 16

    def test_non_divisible_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_length(10, 3)

    def test_features_larger_than_window_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_length(4, 8)

    def test_zero_features_rejected(self):
        with pytest.raises(ConfigurationError):
            segment_length(8, 0)


class TestPaa:
    def test_segment_means(self):
        assert paa([1.0, 3.0, 5.0, 7.0], 2).tolist() == [2.0, 6.0]

    def test_identity_when_f_equals_n(self):
        values = [1.0, 2.0, 3.0]
        assert paa(values, 3).tolist() == values

    def test_single_feature_is_global_mean(self):
        assert paa([2.0, 4.0, 6.0, 8.0], 1).tolist() == [5.0]

    def test_mean_preserved(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(32)
        assert paa(values, 4).mean() == pytest.approx(values.mean())

    def test_two_dimensional_rejected(self):
        with pytest.raises(QueryError):
            paa(np.zeros((2, 4)), 2)


class TestPaaEnvelope:
    def test_halves_transformed_independently(self):
        env = query_envelope([1.0, 5.0, 2.0, 8.0], rho=1)
        lower, upper = paa_envelope(env, 2)
        np.testing.assert_allclose(lower, paa(env.lower, 2))
        np.testing.assert_allclose(upper, paa(env.upper, 2))

    def test_lower_below_upper(self):
        rng = np.random.default_rng(1)
        env = query_envelope(rng.standard_normal(64), rho=5)
        lower, upper = paa_envelope(env, 8)
        assert np.all(lower <= upper)
