"""Cross-engine metamorphic exactness tests.

The defining relation of the reproduction: every engine — SeqScan,
HLMJ (both prune variants), PSM, RU, RU-COST, with and without deferred
retrieval — answers the *same* ranked query with the *same* top-k
distance multiset, which in turn equals brute force.  Parameterized over
engines and seeded queries so any divergence names the exact engine and
query that broke the chain.
"""

import pytest

from tests.conftest import engine_distances, gold_topk, make_walk

WALK_ENGINES = ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost")
QUERIES = {
    "stored-prefix": lambda db: db.store.peek_subsequence(0, 128, 64).copy(),
    "stored-tail": lambda db: db.store.peek_subsequence(1, 900, 48).copy(),
    "synthetic": lambda db: make_walk(64, seed=101),
}


@pytest.mark.parametrize("method", WALK_ENGINES)
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_engine_matches_brute_force(walk_db, method, query_name):
    query = QUERIES[query_name](walk_db)
    rho = max(1, len(query) // 20)
    gold = gold_topk(walk_db, query, 7, rho=rho)
    walk_db.reset_cache()
    result = walk_db.search(query, k=7, rho=rho, method=method)
    assert engine_distances(result) == gold


@pytest.mark.parametrize("method", ("hlmj", "ru", "ru-cost"))
def test_deferred_variant_agrees_with_immediate(walk_db, method):
    query = make_walk(72, seed=103)
    rho = 3
    walk_db.reset_cache()
    immediate = walk_db.search(query, k=6, rho=rho, method=method)
    walk_db.reset_cache()
    deferred = walk_db.search(
        query, k=6, rho=rho, method=method, deferred=True
    )
    assert engine_distances(deferred) == engine_distances(immediate)


def test_all_engines_agree_pairwise(walk_db):
    query = make_walk(80, seed=104)
    rho = 4
    answers = {}
    for method in WALK_ENGINES:
        walk_db.reset_cache()
        answers[method] = engine_distances(
            walk_db.search(query, k=5, rho=rho, method=method)
        )
    baseline = answers["seqscan"]
    for method, distances in answers.items():
        assert distances == baseline, f"{method} diverged from seqscan"


@pytest.mark.parametrize("method", ("seqscan", "hlmj", "ru", "ru-cost", "psm"))
def test_psm_database_engines_agree(psm_db, method):
    """PSM joins disjoint windows, so include it on its own database."""
    query = psm_db.store.peek_subsequence(0, 40, 32).copy()
    rho = 2
    gold = gold_topk(psm_db, query, 5, rho=rho)
    psm_db.reset_cache()
    result = psm_db.search(query, k=5, rho=rho, method=method)
    assert engine_distances(result) == gold
