"""Unit tests for datasets and query workloads (repro.data)."""

import numpy as np
import pytest

from repro.data import (
    DATASET_NAMES,
    load_dataset,
    music_like,
    pipe_like,
    stock_like,
    ucr_like,
    walk_like,
)
from repro.data.datasets import PAPER_SIZES, scaled_size
from repro.data.queries import (
    dense_queries,
    pattern_queries,
    regular_queries,
    window_densities,
)
from repro.exceptions import ConfigurationError


class TestGenerators:
    @pytest.mark.parametrize(
        "generator", [ucr_like, walk_like, stock_like, music_like]
    )
    def test_deterministic_in_seed(self, generator):
        first = generator(2000, seed=5)
        second = generator(2000, seed=5)
        np.testing.assert_array_equal(first, second)
        other = generator(2000, seed=6)
        assert not np.array_equal(first, other)

    @pytest.mark.parametrize(
        "generator", [ucr_like, walk_like, stock_like, music_like]
    )
    def test_exact_size(self, generator):
        assert generator(3001, seed=0).size == 3001

    def test_pipe_returns_markers(self):
        values, markers = pipe_like(20000, seed=0)
        assert values.size == 20000
        assert set(markers) == {"BEND", "VALVE", "TEE"}
        assert all(offsets for offsets in markers.values())
        # Markers point inside the sequence.
        for offsets in markers.values():
            assert all(0 <= off < 20000 for off in offsets)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            walk_like(10)

    def test_ucr_has_dense_and_sparse_windows(self):
        values = ucr_like(30000, seed=0)
        densities = window_densities(values, 32, 4)
        assert densities.max() > 20 * max(1.0, densities.min())

    def test_stock_is_positive(self):
        assert stock_like(5000, seed=1).min() > 0


class TestRegistry:
    def test_all_names_load(self):
        for name in DATASET_NAMES:
            dataset = load_dataset(name, size=9000, seed=1)
            assert dataset.size == 9000
            assert dataset.name == name

    def test_scaled_size_preserves_ordering(self):
        sizes = [scaled_size(name, 1 / 64) for name in DATASET_NAMES]
        paper = [PAPER_SIZES[name] for name in DATASET_NAMES]
        assert sorted(range(5), key=lambda i: sizes[i]) == sorted(
            range(5), key=lambda i: paper[i]
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            load_dataset("EEG")
        with pytest.raises(ConfigurationError):
            scaled_size("EEG")

    def test_describe(self):
        info = load_dataset("PIPE", size=16000).describe()
        assert info["name"] == "PIPE"
        assert info["size"] == 16000
        assert info["markers"]["BEND"] >= 1


class TestQueryWorkloads:
    @pytest.fixture(scope="class")
    def ucr(self):
        return load_dataset("UCR", size=30000, seed=3)

    def test_regular_shapes_and_determinism(self, ucr):
        queries = regular_queries(ucr.values, 96, 5, seed=1)
        assert len(queries) == 5
        assert all(q.size == 96 for q in queries)
        again = regular_queries(ucr.values, 96, 5, seed=1)
        for a, b in zip(queries, again):
            np.testing.assert_array_equal(a, b)

    def test_regular_queries_are_subsequences(self, ucr):
        for query in regular_queries(ucr.values, 64, 3, seed=2):
            # Must appear verbatim somewhere in the data.
            matches = np.where(np.isclose(ucr.values, query[0]))[0]
            assert any(
                np.allclose(ucr.values[m : m + 64], query)
                for m in matches
                if m + 64 <= ucr.values.size
            )

    def test_density_screening_avoids_dense_windows(self, ucr):
        densities = window_densities(ucr.values, 32, 4)
        cutoff = np.quantile(densities, 0.25)
        queries = regular_queries(
            ucr.values, 96, 4, seed=4, omega=32, features=4
        )
        # Recovered starts must cover only low-density windows.
        for query in queries:
            starts = [
                m
                for m in np.where(np.isclose(ucr.values, query[0]))[0]
                if m + 96 <= ucr.values.size
                and np.allclose(ucr.values[m : m + 96], query)
            ]
            assert any(
                densities[s // 32 : (s + 95) // 32 + 1].max() <= cutoff
                for s in starts
            )

    def test_dense_queries_mix_densities(self, ucr):
        densities = window_densities(ucr.values, 32, 4)
        queries = dense_queries(
            ucr.values, 128, 3, omega=32, features=4, seed=5
        )
        assert all(q.size == 128 for q in queries)

    def test_dense_queries_need_two_windows(self, ucr):
        with pytest.raises(ConfigurationError):
            dense_queries(ucr.values, 40, 2, omega=32, features=4)

    def test_pattern_queries(self):
        pipe = load_dataset("PIPE", size=30000, seed=2)
        queries = pattern_queries(pipe, "VALVE", 256, 3, seed=1)
        assert all(q.size == 256 for q in queries)

    def test_pattern_queries_unknown_family(self):
        pipe = load_dataset("PIPE", size=30000, seed=2)
        with pytest.raises(ConfigurationError):
            pattern_queries(pipe, "ELBOW", 256, 1)

    def test_pattern_queries_need_markers(self):
        walk = load_dataset("WALK", size=9000, seed=2)
        with pytest.raises(ConfigurationError):
            pattern_queries(walk, "BEND", 128, 1)

    def test_invalid_lengths(self, ucr):
        with pytest.raises(ConfigurationError):
            regular_queries(ucr.values, 1, 1)
        with pytest.raises(ConfigurationError):
            regular_queries(ucr.values, ucr.values.size + 1, 1)
        with pytest.raises(ConfigurationError):
            regular_queries(ucr.values, 64, 0)

    def test_window_densities_requires_windows(self):
        with pytest.raises(ConfigurationError):
            window_densities(np.zeros(40), 32, 4)
