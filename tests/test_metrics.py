"""Unit tests for QueryStats and StatsRecorder (repro.core.metrics)."""

import pytest

from repro.core.metrics import QueryStats, StatsRecorder
from repro.exceptions import ConfigurationError, UsageError
from repro.storage.buffer import BufferPool
from repro.storage.page import PageKind
from repro.storage.pager import Pager


class TestQueryStats:
    def test_merge_accumulates(self):
        a = QueryStats(candidates=3, heap_pops=10, wall_time_s=1.0)
        b = QueryStats(candidates=2, heap_pops=5, wall_time_s=0.5)
        a.merge(b)
        assert a.candidates == 5
        assert a.heap_pops == 15
        assert a.wall_time_s == 1.5

    def test_scaled_divides(self):
        stats = QueryStats(candidates=10, page_accesses=4)
        averaged = stats.scaled(2)
        assert averaged.candidates == 5
        assert averaged.page_accesses == 2

    def test_scaled_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            QueryStats().scaled(0)

    def test_as_dict_round_trips_all_counters(self):
        stats = QueryStats(candidates=1, bloom_calls=7)
        payload = stats.as_dict()
        assert payload["candidates"] == 1
        assert payload["bloom_calls"] == 7
        assert set(payload) >= {
            "candidates",
            "page_accesses",
            "sequential_page_accesses",
            "random_page_accesses",
            "wall_time_s",
            "heap_pops",
        }


class TestStatsRecorder:
    def test_deltas_not_totals(self):
        pager = Pager(page_size=512)
        pages = [pager.allocate(PageKind.DATA, i) for i in range(6)]
        buffer = BufferPool(pager, capacity_pages=2)
        buffer.get(pages[0])  # pre-existing traffic

        recorder = StatsRecorder(pager, buffer).start()
        buffer.get(pages[1])
        buffer.get(pages[1])  # hit
        buffer.get(pages[5])
        stats = recorder.finish()
        assert stats.page_accesses == 2  # two misses inside the window
        assert stats.logical_reads == 3
        assert stats.wall_time_s > 0

    def test_sequential_random_split(self):
        pager = Pager(page_size=512)
        pages = [pager.allocate(PageKind.DATA, i) for i in range(80)]
        buffer = BufferPool(pager, capacity_pages=2)
        recorder = StatsRecorder(pager, buffer).start()
        buffer.get(pages[0])
        buffer.get(pages[1])  # sequential
        buffer.get(pages[70])  # random (beyond readahead window)
        stats = recorder.finish()
        assert stats.sequential_page_accesses == 1
        assert stats.random_page_accesses == 2

    def test_finish_requires_start(self):
        pager = Pager(page_size=512)
        buffer = BufferPool(pager, capacity_pages=2)
        with pytest.raises(UsageError):
            StatsRecorder(pager, buffer).finish()

    def test_restartable(self):
        pager = Pager(page_size=512)
        page = pager.allocate(PageKind.DATA, 0)
        buffer = BufferPool(pager, capacity_pages=2)
        recorder = StatsRecorder(pager, buffer)
        recorder.start()
        buffer.get(page)
        first = recorder.finish()
        recorder.start()
        second = recorder.finish()
        assert first.page_accesses == 1
        assert second.page_accesses == 0
