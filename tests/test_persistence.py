"""Tests for database save/load (repro.storage.persistence)."""

import json

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.exceptions import ConfigurationError
from tests.conftest import make_walk


@pytest.fixture()
def built_db():
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
    db.insert(0, make_walk(1500, seed=31))
    db.insert(5, make_walk(900, seed=32))
    db.build()
    return db


class TestRoundTrip:
    def test_identical_results_and_io(self, built_db, tmp_path):
        query = built_db.store.peek_subsequence(0, 321, 48).copy()
        built_db.reset_cache()
        original = built_db.search(query, k=5, rho=2, method="ru-cost")

        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        loaded.reset_cache()
        reloaded = loaded.search(query, k=5, rho=2, method="ru-cost")

        assert [m.key() for m in reloaded.matches] == [
            m.key() for m in original.matches
        ]
        assert [m.distance for m in reloaded.matches] == pytest.approx(
            [m.distance for m in original.matches]
        )
        # Page-for-page reconstruction: identical I/O accounting.
        assert reloaded.stats.page_accesses == original.stats.page_accesses
        assert reloaded.stats.heap_pops == original.stats.heap_pops

    def test_tree_invariants_after_load(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        loaded.index.tree.check_invariants()
        assert len(loaded.index.tree) == len(built_db.index.tree)

    def test_values_round_trip(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        for sid in (0, 5):
            np.testing.assert_array_equal(
                loaded.store.peek_full_sequence(sid),
                built_db.store.peek_full_sequence(sid),
            )

    def test_configuration_round_trip(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        assert loaded.omega == built_db.omega
        assert loaded.features == built_db.features
        assert loaded.p == built_db.p
        assert loaded.describe() == built_db.describe()

    def test_load_with_psm_rebuilds_sliding_index(self, tmp_path):
        db = SubsequenceDatabase(omega=8, features=4)
        db.insert(0, make_walk(400, seed=33))
        db.build()
        db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db", psm=True)
        query = loaded.store.peek_subsequence(0, 50, 17).copy()
        reference = loaded.search(query, k=3, rho=1, method="ru")
        psm = loaded.search(query, k=3, rho=1, method="psm")
        assert [m.distance for m in psm.matches] == pytest.approx(
            [m.distance for m in reference.matches]
        )


class TestErrors:
    def test_save_before_build_rejected(self, tmp_path):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(200, seed=1))
        with pytest.raises(ConfigurationError):
            db.save(tmp_path / "db")

    def test_unknown_format_version_rejected(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        meta_path = tmp_path / "db" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ConfigurationError):
            SubsequenceDatabase.load(tmp_path / "db")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SubsequenceDatabase.load(tmp_path / "nonexistent")
