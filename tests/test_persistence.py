"""Tests for database save/load (repro.storage.persistence)."""

import json
import zipfile

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.exceptions import (
    ConfigurationError,
    IntegrityError,
    PartialSaveError,
    SequenceNotFoundError,
)
from repro.storage.integrity import bytes_checksum, file_checksum
from repro.storage.persistence import MANIFEST_NAME
from tests.conftest import make_walk


@pytest.fixture()
def built_db():
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
    db.insert(0, make_walk(1500, seed=31))
    db.insert(5, make_walk(900, seed=32))
    db.build()
    return db


class TestRoundTrip:
    def test_identical_results_and_io(self, built_db, tmp_path):
        query = built_db.store.peek_subsequence(0, 321, 48).copy()
        built_db.reset_cache()
        original = built_db.search(query, k=5, rho=2, method="ru-cost")

        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        loaded.reset_cache()
        reloaded = loaded.search(query, k=5, rho=2, method="ru-cost")

        assert [m.key() for m in reloaded.matches] == [
            m.key() for m in original.matches
        ]
        assert [m.distance for m in reloaded.matches] == pytest.approx(
            [m.distance for m in original.matches]
        )
        # Page-for-page reconstruction: identical I/O accounting.
        assert reloaded.stats.page_accesses == original.stats.page_accesses
        assert reloaded.stats.heap_pops == original.stats.heap_pops

    def test_tree_invariants_after_load(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        loaded.index.tree.check_invariants()
        assert len(loaded.index.tree) == len(built_db.index.tree)

    def test_values_round_trip(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        for sid in (0, 5):
            np.testing.assert_array_equal(
                loaded.store.peek_full_sequence(sid),
                built_db.store.peek_full_sequence(sid),
            )

    def test_configuration_round_trip(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        assert loaded.omega == built_db.omega
        assert loaded.features == built_db.features
        assert loaded.p == built_db.p
        assert loaded.describe() == built_db.describe()

    def test_load_with_psm_rebuilds_sliding_index(self, tmp_path):
        db = SubsequenceDatabase(omega=8, features=4)
        db.insert(0, make_walk(400, seed=33))
        db.build()
        db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db", psm=True)
        query = loaded.store.peek_subsequence(0, 50, 17).copy()
        reference = loaded.search(query, k=3, rho=1, method="ru")
        psm = loaded.search(query, k=3, rho=1, method="psm")
        assert [m.distance for m in psm.matches] == pytest.approx(
            [m.distance for m in reference.matches]
        )


class TestErrors:
    def test_save_before_build_rejected(self, tmp_path):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(200, seed=1))
        with pytest.raises(ConfigurationError):
            db.save(tmp_path / "db")

    def test_unknown_format_version_rejected(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        meta_path = tmp_path / "db" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ConfigurationError):
            SubsequenceDatabase.load(tmp_path / "db")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SubsequenceDatabase.load(tmp_path / "nonexistent")

    def test_directory_without_manifest_or_meta(self, tmp_path):
        (tmp_path / "db").mkdir()
        (tmp_path / "db" / "readme.txt").write_text("not a database")
        with pytest.raises(FileNotFoundError):
            SubsequenceDatabase.load(tmp_path / "db")


def _rewrite_meta(directory, meta):
    """Rewrite meta.json and keep the MANIFEST checksum consistent,
    simulating damage that a naive length/CRC check would miss."""
    meta_bytes = json.dumps(meta).encode()
    (directory / "meta.json").write_bytes(meta_bytes)
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    manifest["meta_crc32"] = bytes_checksum(meta_bytes)
    manifest["meta_bytes"] = len(meta_bytes)
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest))


class TestCorruptionDetection:
    """Round-trip tests against deliberately damaged save directories."""

    @pytest.fixture()
    def saved(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        return tmp_path / "db"

    def test_truncated_values_file(self, saved):
        values = saved / "values.npz"
        data = values.read_bytes()
        values.write_bytes(data[: len(data) // 2])
        with pytest.raises(PartialSaveError, match="truncated"):
            SubsequenceDatabase.load(saved)

    def test_bit_flip_in_index_file(self, saved):
        index = saved / "index.npz"
        data = bytearray(index.read_bytes())
        data[len(data) // 2] ^= 0x10
        index.write_bytes(bytes(data))
        with pytest.raises(IntegrityError, match="checksum"):
            SubsequenceDatabase.load(saved)

    def test_missing_values_file(self, saved):
        (saved / "values.npz").unlink()
        with pytest.raises(PartialSaveError, match="missing"):
            SubsequenceDatabase.load(saved)

    def test_missing_manifest_is_partial_save(self, saved):
        (saved / MANIFEST_NAME).unlink()
        with pytest.raises(PartialSaveError, match="MANIFEST"):
            SubsequenceDatabase.load(saved)

    def test_edited_meta_fails_manifest_checksum(self, saved):
        meta_path = saved / "meta.json"
        meta = json.loads(meta_path.read_text())
        del meta["files"]
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IntegrityError, match="meta.json"):
            SubsequenceDatabase.load(saved)

    def test_meta_without_file_checksums(self, saved):
        meta = json.loads((saved / "meta.json").read_text())
        del meta["files"]
        _rewrite_meta(saved, meta)
        with pytest.raises(IntegrityError, match="no checksum"):
            SubsequenceDatabase.load(saved)

    def test_missing_sequence_array(self, saved):
        # Drop one sequence's array from values.npz, keeping every
        # checksum consistent: a structural hole, not file damage.
        with np.load(saved / "values.npz") as data:
            arrays = {name: data[name] for name in data.files}
        del arrays["sid_5"]
        np.savez_compressed(saved / "values.npz", **arrays)
        meta = json.loads((saved / "meta.json").read_text())
        del meta["array_shapes"]["values.npz"]["sid_5"]
        meta["files"]["values.npz"] = {
            "crc32": file_checksum(saved / "values.npz"),
            "bytes": (saved / "values.npz").stat().st_size,
        }
        _rewrite_meta(saved, meta)
        with pytest.raises(SequenceNotFoundError, match="sid_5"):
            SubsequenceDatabase.load(saved)

    def test_array_missing_from_shape_manifest(self, saved):
        # Same hole, but the shape manifest still records the array:
        # caught earlier, as a manifest violation.
        with np.load(saved / "values.npz") as data:
            arrays = {name: data[name] for name in data.files}
        del arrays["sid_5"]
        np.savez_compressed(saved / "values.npz", **arrays)
        meta = json.loads((saved / "meta.json").read_text())
        meta["files"]["values.npz"] = {
            "crc32": file_checksum(saved / "values.npz"),
            "bytes": (saved / "values.npz").stat().st_size,
        }
        _rewrite_meta(saved, meta)
        with pytest.raises(IntegrityError, match="sid_5"):
            SubsequenceDatabase.load(saved)

    def test_wrong_array_shape_detected(self, saved):
        with np.load(saved / "values.npz") as data:
            arrays = {name: data[name] for name in data.files}
        arrays["sid_5"] = arrays["sid_5"][:-7]
        np.savez_compressed(saved / "values.npz", **arrays)
        meta = json.loads((saved / "meta.json").read_text())
        meta["files"]["values.npz"] = {
            "crc32": file_checksum(saved / "values.npz"),
            "bytes": (saved / "values.npz").stat().st_size,
        }
        _rewrite_meta(saved, meta)
        with pytest.raises(IntegrityError, match="shape"):
            SubsequenceDatabase.load(saved)

    def test_unreadable_zip_member(self, saved):
        # Valid length and headers are not trusted: the whole-file CRC
        # runs before zipfile ever opens the archive.
        with zipfile.ZipFile(saved / "values.npz") as archive:
            names = archive.namelist()
        assert names  # sanity
        data = bytearray((saved / "values.npz").read_bytes())
        data[-10] ^= 0xFF
        (saved / "values.npz").write_bytes(bytes(data))
        with pytest.raises(IntegrityError):
            SubsequenceDatabase.load(saved)


class TestAtomicSave:
    def test_refuses_to_clobber_foreign_directory(self, built_db, tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "thesis.tex").write_text("years of work")
        with pytest.raises(ConfigurationError, match="refusing"):
            built_db.save(target)
        assert (target / "thesis.tex").read_text() == "years of work"

    def test_refuses_file_target(self, built_db, tmp_path):
        target = tmp_path / "db"
        target.write_text("a file, not a directory")
        with pytest.raises(ConfigurationError):
            built_db.save(target)

    def test_overwrites_existing_database(self, built_db, tmp_path):
        target = tmp_path / "db"
        built_db.save(target)
        built_db.save(target)  # second save replaces the first
        loaded = SubsequenceDatabase.load(target)
        assert loaded.store.sequence_ids() == built_db.store.sequence_ids()

    def test_save_into_empty_directory(self, built_db, tmp_path):
        target = tmp_path / "db"
        target.mkdir()
        built_db.save(target)
        SubsequenceDatabase.load(target)

    def test_failed_save_cleans_temp_and_keeps_old(
        self, built_db, tmp_path, monkeypatch
    ):
        target = tmp_path / "db"
        built_db.save(target)
        before = sorted(p.name for p in tmp_path.iterdir())

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError):
            built_db.save(target)
        # No temp litter, and the original database still loads.
        assert sorted(p.name for p in tmp_path.iterdir()) == before
        SubsequenceDatabase.load(target)

    def test_loaded_database_is_sealed(self, built_db, tmp_path):
        built_db.save(tmp_path / "db")
        loaded = SubsequenceDatabase.load(tmp_path / "db")
        assert loaded.pager.sealed
        assert loaded.pager.verify_all() == []
