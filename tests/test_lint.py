"""Tests for the repo-specific static analyzer (``repro.analysis``).

Each rule gets a positive fixture (a snippet that must trigger it) and
a negative fixture (a near-identical snippet that must not), plus
suppression-comment behavior and a self-check asserting the shipped
source tree is clean at head.
"""

import json
import pathlib
import textwrap

import pytest

import repro
from repro.__main__ import main as cli_main
from repro.analysis import all_rules, lint_paths, lint_source
from repro.analysis.contracts import LOWER_BOUND_CONTRACTS
from repro.analysis.framework import LintReport, parse_suppressions
from repro.exceptions import ConfigurationError

SRC_PACKAGE = pathlib.Path(repro.__file__).parent


def codes(findings):
    return sorted({finding.code for finding in findings})


def lint_snippet(snippet, path):
    return lint_source(textwrap.dedent(snippet), path)


class TestRS001BufferBypass:
    def test_direct_pager_read_is_flagged(self):
        findings = lint_snippet(
            """
            def fetch(pager, page_id):
                return pager.read(page_id)
            """,
            "repro/engines/fancy.py",
        )
        assert codes(findings) == ["RS001"]
        assert "BufferPool" in findings[0].message

    def test_private_pager_attribute_is_flagged(self):
        findings = lint_snippet(
            """
            class Store:
                def peek_fast(self, page_id):
                    return self._pager.read(page_id)
            """,
            "repro/storage/sequences.py",
        )
        assert codes(findings) == ["RS001"]

    def test_buffer_layer_is_whitelisted(self):
        findings = lint_snippet(
            """
            def fetch(self, page_id):
                return self._pager.read(page_id)
            """,
            "repro/storage/buffer.py",
        )
        assert findings == []

    def test_buffered_get_is_clean(self):
        findings = lint_snippet(
            """
            def fetch(buffer, page_id):
                return buffer.get(page_id)
            """,
            "repro/engines/fancy.py",
        )
        assert findings == []


class TestRS002ExceptionTaxonomy:
    def test_builtin_raise_in_storage_is_flagged(self):
        findings = lint_snippet(
            """
            def check(value):
                if value < 0:
                    raise ValueError("negative")
            """,
            "repro/storage/pager.py",
        )
        assert codes(findings) == ["RS002"]
        assert "ReproError" in findings[0].message

    def test_bare_exception_class_reference_is_flagged(self):
        findings = lint_snippet(
            """
            def check():
                raise Exception
            """,
            "repro/engines/base.py",
        )
        assert codes(findings) == ["RS002"]

    def test_typed_raise_is_clean(self):
        findings = lint_snippet(
            """
            from repro.exceptions import PageError

            def check(value):
                if value < 0:
                    raise PageError("negative")
            """,
            "repro/storage/pager.py",
        )
        assert findings == []

    def test_out_of_scope_layer_is_clean(self):
        findings = lint_snippet(
            """
            def check():
                raise ValueError("benchmark-local")
            """,
            "repro/bench/harness.py",
        )
        assert findings == []

    def test_reraise_is_clean(self):
        findings = lint_snippet(
            """
            def check(error):
                try:
                    pass
                except KeyError:
                    raise
            """,
            "repro/storage/pager.py",
        )
        assert findings == []


class TestRS003FloatEquality:
    def test_float_literal_equality_is_flagged(self):
        findings = lint_snippet(
            """
            def fast_path(p):
                return p == 2.0
            """,
            "repro/core/distance.py",
        )
        assert codes(findings) == ["RS003"]

    def test_inf_sentinel_equality_is_flagged(self):
        findings = lint_snippet(
            """
            import math

            def is_unbounded(value):
                return value == math.inf
            """,
            "repro/core/results.py",
        )
        assert codes(findings) == ["RS003"]

    def test_ordering_comparison_is_clean(self):
        findings = lint_snippet(
            """
            def prune(bound, threshold):
                return bound > threshold or bound < 0.0
            """,
            "repro/core/distance.py",
        )
        assert findings == []

    def test_outside_core_is_clean(self):
        findings = lint_snippet(
            """
            def fast_path(p):
                return p == 2.0
            """,
            "repro/engines/seqscan.py",
        )
        assert findings == []


class TestRS004MutableDefault:
    def test_list_default_is_flagged(self):
        findings = lint_snippet(
            """
            def collect(matches=[]):
                return matches
            """,
            "repro/core/results.py",
        )
        assert codes(findings) == ["RS004"]

    def test_dict_call_default_is_flagged(self):
        findings = lint_snippet(
            """
            def collect(*, counters=dict()):
                return counters
            """,
            "repro/bench/harness.py",
        )
        assert codes(findings) == ["RS004"]

    def test_none_default_is_clean(self):
        findings = lint_snippet(
            """
            def collect(matches=None):
                return matches if matches is not None else []
            """,
            "repro/core/results.py",
        )
        assert findings == []


class TestRS005LowerBoundContract:
    def test_undeclared_bound_function_is_flagged(self):
        source = SRC_PACKAGE.joinpath("core", "lower_bounds.py").read_text()
        source += (
            "\n\ndef lb_novel_pow(x: float) -> float:\n    return 0.0\n"
        )
        findings = lint_source(source, "repro/core/lower_bounds.py")
        assert codes(findings) == ["RS005"]
        assert "lb_novel_pow" in findings[0].message

    def test_stale_table_entry_is_flagged(self):
        findings = lint_snippet(
            """
            def lb_keogh_pow(envelope, values, p=2.0):
                return 0.0
            """,
            "repro/core/lower_bounds.py",
        )
        assert codes(findings) == ["RS005"]
        missing = {name for name in LOWER_BOUND_CONTRACTS}
        mentioned = {
            name
            for name in missing
            for finding in findings
            if f"{name!r}" in finding.message
        }
        assert "lb_paa_pow" in mentioned
        assert "lb_keogh_pow" not in mentioned

    def test_shipped_module_matches_table(self):
        source = SRC_PACKAGE.joinpath("core", "lower_bounds.py").read_text()
        findings = [
            finding
            for finding in lint_source(source, "repro/core/lower_bounds.py")
            if finding.code == "RS005"
        ]
        assert findings == []

    def test_other_modules_are_exempt(self):
        findings = lint_snippet(
            """
            def lb_novel_pow(x):
                return 0.0
            """,
            "repro/core/distance.py",
        )
        assert findings == []


class TestRS006StatsDiscipline:
    def test_fetch_without_stats_is_flagged(self):
        findings = lint_snippet(
            """
            def descend(tree, page_id):
                node = tree.read_node(page_id)
                return node.entries
            """,
            "repro/engines/novel.py",
        )
        assert codes(findings) == ["RS006"]
        assert "QueryStats" in findings[0].message

    def test_stats_parameter_is_clean(self):
        findings = lint_snippet(
            """
            def descend(tree, page_id, stats):
                node = tree.read_node(page_id)
                stats.node_expansions += 1
                return node.entries
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_stats_attribute_is_clean(self):
        findings = lint_snippet(
            """
            class Walker:
                def descend(self, page_id):
                    node = self._tree.read_node(page_id)
                    self._stats.node_expansions += 1
                    return node.entries
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_evaluator_parameter_is_clean(self):
        findings = lint_snippet(
            """
            def evaluate(store, evaluator, sid, start, length):
                return store.get_subsequence(sid, start, length)
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_outside_engines_is_exempt(self):
        findings = lint_snippet(
            """
            def rebuild(tree, page_id):
                return tree.read_node(page_id)
            """,
            "repro/index/builder.py",
        )
        assert findings == []


class TestRS007CheckpointDiscipline:
    def test_loop_without_checkpoint_is_flagged(self):
        findings = lint_snippet(
            """
            def _run(self, window_set, evaluator, config):
                while heap:
                    entry = heap.pop()
                    evaluator.submit(entry.sid, entry.start, entry.bound)
            """,
            "repro/engines/novel.py",
        )
        assert codes(findings) == ["RS007"]
        assert "checkpoint" in findings[0].message

    def test_loop_with_checkpoint_is_clean(self):
        findings = lint_snippet(
            """
            def _run(self, window_set, evaluator, config):
                budget = evaluator.control
                while heap:
                    budget.checkpoint(heap[0][0])
                    entry = heap.pop()
                    evaluator.submit(entry.sid, entry.start, entry.bound)
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_nested_loop_is_covered_by_outer_checkpoint(self):
        findings = lint_snippet(
            """
            def search(self, query, config, stats):
                budget = self.control
                for sid in sids:
                    budget.checkpoint()
                    for block in blocks(sid):
                        scan(block)
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_each_outermost_loop_needs_its_own_checkpoint(self):
        findings = lint_snippet(
            """
            def search(self, query, config, stats):
                budget = self.control
                for window in windows:
                    budget.checkpoint()
                while stack:
                    stack.pop()
            """,
            "repro/engines/novel.py",
        )
        assert codes(findings) == ["RS007"]

    def test_helper_functions_are_exempt(self):
        findings = lint_snippet(
            """
            def _expand_state(self, heap, state, stats):
                for entry in state:
                    heap.append(entry)
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_outside_engines_is_exempt(self):
        findings = lint_snippet(
            """
            def search(values, target):
                for value in values:
                    if value == target:
                        return value
            """,
            "repro/index/rstar.py",
        )
        assert findings == []


class TestRS008SpanDiscipline:
    def test_bare_start_span_is_flagged(self):
        findings = lint_snippet(
            """
            def run(tracer):
                span = tracer.start_span("engine.run")
                do_work()
                span.close()
            """,
            "repro/engines/novel.py",
        )
        # RS008 flags the bare start_span; RS011's flow analysis also
        # (correctly) notices the span leaks if do_work() raises.
        assert codes(findings) == ["RS008", "RS011"]
        rs008 = [f for f in findings if f.code == "RS008"]
        assert "with" in rs008[0].message

    def test_bare_tracer_span_is_flagged(self):
        findings = lint_snippet(
            """
            def run(self):
                self.tracer.span("engine.run", k=5)
                do_work()
            """,
            "repro/engines/novel.py",
        )
        assert codes(findings) == ["RS008"]

    def test_with_span_is_clean(self):
        findings = lint_snippet(
            """
            def run(tracer):
                with tracer.span("engine.run", k=5) as span:
                    do_work(span)
                with tracer.start_span("engine.other"):
                    do_work(None)
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_non_tracer_span_method_is_clean(self):
        findings = lint_snippet(
            """
            def rows(table):
                return table.span("header")
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_tracer_module_is_whitelisted(self):
        findings = lint_snippet(
            """
            def span(self, name):
                return self.start_span(name)
            """,
            "repro/obs/tracer.py",
        )
        assert findings == []

    def test_suppressed_long_lived_span_is_clean(self):
        findings = lint_snippet(
            """
            def open_root(tracer):
                return tracer.start_span(  # repro: ignore[RS008]
                    "engine.search"
                )
            """,
            "repro/api.py",
        )
        assert findings == []


class TestRS009WalDiscipline:
    def test_sealed_mutation_without_session_is_flagged(self):
        findings = lint_snippet(
            """
            class Store:
                def overwrite(self, page_id, payload):
                    self._pager.write(page_id, payload)
            """,
            "repro/storage/bad_ingest.py",
        )
        assert codes(findings) == ["RS009"]
        assert "WAL" in findings[0].message

    def test_allocate_and_free_are_flagged(self):
        findings = lint_snippet(
            """
            def grow(pager, payload):
                new = pager.allocate("DATA", payload)
                pager.free(new)
            """,
            "repro/index/novel.py",
        )
        assert codes(findings) == ["RS009"]
        assert len(findings) == 2

    def test_session_parameter_is_clean(self):
        findings = lint_snippet(
            """
            class Store:
                def add(self, sid, payload, session=None):
                    return self._pager.allocate("DATA", payload)
            """,
            "repro/storage/sequences.py",
        )
        assert findings == []

    def test_wal_attribute_reference_is_clean(self):
        findings = lint_snippet(
            """
            class Store:
                def add(self, sid, payload):
                    self._wal.append("append", sid=sid)
                    return self._pager.allocate("DATA", payload)
            """,
            "repro/storage/sequences.py",
        )
        assert findings == []

    def test_annotated_session_is_clean(self):
        findings = lint_snippet(
            """
            def apply(db, record: "IngestSession", payload):
                db._pager.write(0, payload)
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_wal_layer_is_whitelisted(self):
        findings = lint_snippet(
            """
            def truncate(self):
                self._pager.free(0)
            """,
            "repro/storage/wal.py",
        )
        assert findings == []

    def test_engine_layer_is_out_of_scope(self):
        findings = lint_snippet(
            """
            def hack(pager, payload):
                pager.write(0, payload)
            """,
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_suppressed_build_path_is_clean(self):
        findings = lint_snippet(
            """
            class Tree:
                def _write_back(self, page_id):
                    self._pager.write(page_id, self._peek(page_id))  # repro: ignore[RS009]
            """,
            "repro/index/rstar.py",
        )
        assert findings == []

    def test_non_pager_receiver_is_clean(self):
        findings = lint_snippet(
            """
            def save(handle, payload):
                handle.write(payload)
            """,
            "repro/storage/novel.py",
        )
        assert findings == []


class TestRS010LockDiscipline:
    def test_unlocked_guarded_read_is_flagged(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                def get(self, page_id):
                    return self._frames.get(page_id)
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS010"]
        assert "_frames" in findings[0].message
        assert "_lock" in findings[0].message

    def test_locked_access_is_clean(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                def get(self, page_id):
                    with self._lock:
                        return self._frames.get(page_id)
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_one_unlocked_path_is_enough_to_flag(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                def get(self, page_id, fast):
                    if fast:
                        return self._frames.get(page_id)
                    with self._lock:
                        return self._frames.get(page_id)
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS010"]
        assert len(findings) == 1  # only the fast path is unprotected

    def test_access_after_with_block_is_flagged(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                def get(self, page_id):
                    with self._lock:
                        value = self._frames.get(page_id)
                    return value if value else self._frames.get(0)
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS010"]

    def test_acquire_release_in_try_finally_is_clean(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                def get(self, page_id):
                    self._lock.acquire()
                    try:
                        return self._frames.get(page_id)
                    finally:
                        self._lock.release()
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_requires_lock_helper_body_is_trusted(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                requires_lock,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                @requires_lock("_lock")
                def _evict_one(self):
                    self._frames.popitem()
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_requires_lock_call_without_lock_is_flagged(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                requires_lock,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                @requires_lock("_lock")
                def _evict_one(self):
                    self._frames.popitem()

                def shrink(self):
                    self._evict_one()
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS010"]
        assert "_evict_one" in findings[0].message

    def test_init_is_lifecycle_exempt(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import (
                guarded_by,
                shared_across_queries,
            )

            @shared_across_queries
            @guarded_by("_lock", "_frames")
            class Pool:
                def __init__(self):
                    self._frames = {}
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_unguarded_class_is_out_of_scope(self):
        findings = lint_snippet(
            """
            class Pool:
                def get(self, page_id):
                    return self._frames.get(page_id)
            """,
            "repro/storage/novel.py",
        )
        assert findings == []


class TestRS011ResourceLifecycle:
    def test_leak_on_exceptional_path_is_flagged(self):
        # validate(path) may raise with the log still open; note the
        # may-raise call must not mention `wal`, or passing it onward
        # would count as an ownership transfer.
        findings = lint_snippet(
            """
            def recover(path):
                wal = WriteAheadLog(path)
                validate(path)
                wal.close()
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS011"]
        assert "write-ahead log" in findings[0].message

    def test_try_finally_close_is_clean(self):
        findings = lint_snippet(
            """
            def recover(path):
                wal = WriteAheadLog(path)
                try:
                    validate(path)
                finally:
                    wal.close()
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_with_statement_is_clean(self):
        findings = lint_snippet(
            """
            def recover(path):
                wal = WriteAheadLog(path)
                with wal:
                    validate(path)
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_discarded_opener_is_flagged(self):
        findings = lint_snippet(
            """
            def add(db, values):
                db.ingest()
            """,
            "repro/api_helpers.py",
        )
        assert codes(findings) == ["RS011"]
        assert "discarded" in findings[0].message

    def test_returned_resource_transfers_ownership(self):
        findings = lint_snippet(
            """
            def open_wal(path):
                wal = WriteAheadLog(path)
                return wal
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_resource_passed_onward_transfers_ownership(self):
        findings = lint_snippet(
            """
            def open_wal(path, registry):
                wal = WriteAheadLog(path)
                registry.adopt(wal)
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_leaked_pin_is_flagged(self):
        findings = lint_snippet(
            """
            def read(pool, page_id):
                pin = pool.pin(page_id)
                value = pool.get(page_id)
                pin.release()
                return value
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS011"]
        assert "pin" in findings[0].message

    def test_tracer_module_is_exempt(self):
        findings = lint_snippet(
            """
            def open_root(self, name):
                span = self.start_span(name)
                self._register(name)
                return None
            """,
            "repro/obs/tracer.py",
        )
        assert findings == []


class TestRS012CheckThenAct:
    def test_unlocked_check_then_act_is_flagged(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import shared_across_queries

            @shared_across_queries
            class Cache:
                def put(self, key):
                    if self._count >= self._cap:
                        self._count = 0
                    self._count += 1
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS012"]
        assert "_count" in findings[0].message

    def test_locked_check_then_act_is_clean(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import shared_across_queries

            @shared_across_queries
            class Cache:
                def put(self, key):
                    with self._lock:
                        if self._count >= self._cap:
                            self._count = 0
                        self._count += 1
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_mutator_call_counts_as_write(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import shared_across_queries

            @shared_across_queries
            class Cache:
                def evict(self):
                    if self._entries:
                        self._entries.pop()
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS012"]

    def test_write_through_helper_method_is_flagged(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import shared_across_queries

            @shared_across_queries
            class Breaker:
                def record(self):
                    if self._state == "closed":
                        self._trip()

                def _trip(self):
                    self._state = "open"
            """,
            "repro/storage/novel.py",
        )
        assert codes(findings) == ["RS012"]

    def test_different_attribute_write_is_clean(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import shared_across_queries

            @shared_across_queries
            class Breaker:
                def record(self):
                    if self._state == "closed":
                        self._failures += 1
            """,
            "repro/storage/novel.py",
        )
        assert findings == []

    def test_unshared_class_is_out_of_scope(self):
        findings = lint_snippet(
            """
            class Cache:
                def put(self, key):
                    if self._count >= self._cap:
                        self._count = 0
            """,
            "repro/storage/novel.py",
        )
        assert findings == []


class TestRS013ServiceLoopDiscipline:
    def test_uncheckpointed_while_true_is_flagged(self):
        findings = lint_snippet(
            """
            class Worker:
                def loop(self):
                    while True:
                        item = self.poll()
                        if item is not None:
                            self.run(item)
            """,
            "repro/serve/novel.py",
        )
        assert codes(findings) == ["RS013"]
        assert "checkpoint" in findings[0].message

    def test_checkpointed_while_true_is_clean(self):
        findings = lint_snippet(
            """
            class Worker:
                def loop(self):
                    while True:
                        self.shutdown_control.checkpoint()
                        item = self.poll()
                        if item is not None:
                            self.run(item)
            """,
            "repro/serve/novel.py",
        )
        assert findings == []

    def test_bounded_while_is_out_of_scope(self):
        findings = lint_snippet(
            """
            class Client:
                def read_all(self):
                    final = False
                    while not final:
                        final = self.read_line()
            """,
            "repro/serve/novel.py",
        )
        assert findings == []

    def test_engine_call_under_lock_is_flagged(self):
        findings = lint_snippet(
            """
            class Service:
                def run(self, request):
                    with self._lock:
                        return self._db.search(request.query, k=request.k)
            """,
            "repro/serve/novel.py",
        )
        assert codes(findings) == ["RS013"]
        assert "search" in findings[0].message

    def test_engine_call_after_release_is_clean(self):
        findings = lint_snippet(
            """
            class Service:
                def run(self, request):
                    with self._lock:
                        budget = self._budget
                    return self._db.search(request.query, budget=budget)
            """,
            "repro/serve/novel.py",
        )
        assert findings == []

    def test_guarded_by_contract_lock_is_tracked(self):
        findings = lint_snippet(
            """
            from repro.analysis.concurrency import guarded_by

            @guarded_by("_lock", "_state")
            class Service:
                def run(self, request):
                    self._lock.acquire()
                    try:
                        return self._db.range_search(request.query)
                    finally:
                        self._lock.release()
            """,
            "repro/serve/novel.py",
        )
        assert "RS013" in codes(findings)

    def test_outside_serve_package_is_out_of_scope(self):
        findings = lint_snippet(
            """
            class Worker:
                def loop(self):
                    while True:
                        self.run(self.poll())
            """,
            "repro/engines/novel.py",
        )
        assert "RS013" not in codes(findings)


class TestSuppressions:
    def test_matching_code_is_suppressed(self):
        report = LintReport()
        findings = lint_source(
            "def fetch(pager):\n"
            "    return pager.read(0)  # repro: ignore[RS001]\n",
            "repro/engines/novel.py",
            report=report,
        )
        assert findings == []
        assert report.suppressed == 1

    def test_blanket_ignore_suppresses_everything(self):
        findings = lint_source(
            "def fetch(pager):\n"
            "    return pager.read(0)  # repro: ignore\n",
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_wrong_code_does_not_suppress(self):
        findings = lint_source(
            "def fetch(pager):\n"
            "    return pager.read(0)  # repro: ignore[RS002]\n",
            "repro/engines/novel.py",
        )
        assert codes(findings) == ["RS001"]

    def test_multiple_codes_in_one_comment(self):
        suppressions = parse_suppressions(
            "x = 1  # repro: ignore[RS001, RS003]\n"
        )
        assert suppressions == {1: {"RS001", "RS003"}}

    def test_marker_inside_string_is_not_a_suppression(self):
        findings = lint_source(
            'MESSAGE = "# repro: ignore[RS001]"\n'
            "def fetch(pager):\n"
            "    return pager.read(0)\n",
            "repro/engines/novel.py",
        )
        assert codes(findings) == ["RS001"]

    def test_suppression_on_decorator_line_covers_the_def(self):
        # RS004 anchors on the def line, but the comment sits on the
        # decorator — the alias map must bridge the two.
        report = LintReport()
        findings = lint_source(
            "@decorate  # repro: ignore[RS004]\n"
            "def collect(matches=[]):\n"
            "    return matches\n",
            "repro/core/results.py",
            report=report,
        )
        assert findings == []
        assert report.suppressed == 1

    def test_suppression_on_def_line_of_decorated_function(self):
        findings = lint_source(
            "@decorate\n"
            "def collect(matches=[]):  # repro: ignore[RS004]\n"
            "    return matches\n",
            "repro/core/results.py",
        )
        assert findings == []

    def test_decorator_suppression_does_not_leak_into_the_body(self):
        findings = lint_source(
            "@decorate  # repro: ignore[RS001]\n"
            "def fetch(pager):\n"
            "    return pager.read(0)\n",
            "repro/engines/novel.py",
        )
        assert codes(findings) == ["RS001"]

    def test_suppression_on_first_line_of_multiline_statement(self):
        # The finding anchors on the continuation line holding the
        # violating call, not the line carrying the comment.
        findings = lint_source(
            "def fetch(pager):\n"
            "    return (  # repro: ignore[RS001]\n"
            "        pager.read(0)\n"
            "    )\n",
            "repro/engines/novel.py",
        )
        assert findings == []

    def test_multiline_suppression_needs_the_first_line(self):
        findings = lint_source(
            "def fetch(pager):\n"
            "    return (\n"
            "        pager.read(0)  # repro: ignore[RS001]\n"
            "    )\n",
            "repro/engines/novel.py",
        )
        # A comment on the continuation line still works — it matches
        # the finding's own line directly.
        assert findings == []


class TestFramework:
    def test_syntax_error_reports_rs000(self):
        findings = lint_source("def broken(:\n", "repro/engines/broken.py")
        assert codes(findings) == ["RS000"]

    def test_select_restricts_rules(self):
        rules = all_rules(select=["RS001"])
        assert [rule.code for rule in rules] == ["RS001"]

    def test_ignore_removes_rules(self):
        rules = all_rules(ignore=["RS001"])
        assert "RS001" not in [rule.code for rule in rules]

    def test_unknown_code_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            all_rules(select=["RS999"])

    def test_all_rules_are_registered(self):
        registered = [rule.code for rule in all_rules()]
        assert registered == [
            "RS001",
            "RS002",
            "RS003",
            "RS004",
            "RS005",
            "RS006",
            "RS007",
            "RS008",
            "RS009",
            "RS010",
            "RS011",
            "RS012",
            "RS013",
        ]


class TestSelfCheck:
    def test_shipped_tree_is_clean(self):
        report = lint_paths([SRC_PACKAGE])
        assert report.findings == []
        assert report.files_checked > 40

    def test_cli_exits_zero_on_head(self, capsys):
        assert cli_main(["lint", str(SRC_PACKAGE)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_cli_exits_nonzero_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "engines" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def fetch(pager):\n    return pager.read(0)\n")
        assert cli_main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RS001" in out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "storage" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f():\n    raise ValueError('x')\n")
        assert cli_main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["code"] == "RS002"
        assert payload["findings"][0]["line"] == 2

    def test_cli_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RS001",
            "RS002",
            "RS003",
            "RS004",
            "RS005",
            "RS006",
            "RS007",
            "RS008",
            "RS009",
            "RS010",
            "RS011",
            "RS012",
            "RS013",
        ):
            assert code in out

    def test_cli_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "storage" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f():\n    raise ValueError('x')\n")
        assert cli_main(["lint", "--format", "sarif", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "RS002" in rule_ids and "RS010" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RS002"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2

    def test_cli_sarif_clean_run_has_empty_results(self, tmp_path, capsys):
        good = tmp_path / "repro" / "core" / "ok.py"
        good.parent.mkdir(parents=True)
        good.write_text("VALUE = 1\n")
        assert cli_main(["lint", "--format", "sarif", str(good)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []

    def test_cli_unknown_rule_code_is_usage_error(self, capsys):
        assert cli_main(["lint", "--select", "RS999", "src"]) == 2

    def test_cli_missing_path_is_usage_error(self, capsys):
        assert cli_main(["lint", "definitely-not-a-real-path"]) == 2
