"""Tests for range (epsilon) subsequence matching."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SubsequenceDatabase
from repro.engines.range_search import brute_force_range
from tests.conftest import make_walk


def range_keys(result_matches):
    return sorted(match.key() for match in result_matches)


class TestRangeSearch:
    def test_matches_brute_force(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 800, 48).copy()
        for epsilon in (0.5, 3.0, 10.0):
            gold = brute_force_range(walk_db.store, query, epsilon, rho=2)
            got = walk_db.range_search(query, epsilon=epsilon, rho=2)
            assert range_keys(got.matches) == range_keys(gold)

    def test_zero_epsilon_finds_exact_occurrence(self, walk_db):
        query = walk_db.store.peek_subsequence(1, 500, 48).copy()
        result = walk_db.range_search(query, epsilon=0.0, rho=2)
        assert (1, 500) in {match.key() for match in result.matches}
        assert all(m.distance == 0.0 for m in result.matches)

    def test_results_sorted_best_first(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 800, 48).copy()
        result = walk_db.range_search(query, epsilon=8.0, rho=2)
        distances = [m.distance for m in result.matches]
        assert distances == sorted(distances)

    def test_empty_result_for_tiny_epsilon_on_foreign_query(self, walk_db):
        query = make_walk(48, seed=404) + 1000.0  # far from all data
        result = walk_db.range_search(query, epsilon=1.0, rho=2)
        assert result.matches == []
        # And the index pruned everything without touching candidates.
        assert result.stats.candidates == 0

    def test_negative_epsilon_rejected(self, walk_db):
        from repro.exceptions import QueryError

        query = walk_db.store.peek_subsequence(0, 0, 48).copy()
        with pytest.raises(QueryError):
            walk_db.range_search(query, epsilon=-1.0)

    def test_requires_build(self):
        from repro.exceptions import IndexNotBuiltError

        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(100, seed=0))
        with pytest.raises(IndexNotBuiltError):
            db.range_search(make_walk(48, seed=1), epsilon=1.0)

    def test_stats_populated(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 800, 48).copy()
        result = walk_db.range_search(query, epsilon=5.0, rho=2)
        assert result.stats.node_expansions > 0
        assert result.stats.candidates >= len(result.matches)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    epsilon=st.floats(min_value=0.0, max_value=15.0),
)
def test_range_search_equals_brute_force_property(seed, epsilon):
    rng = np.random.default_rng(seed)
    db = SubsequenceDatabase(omega=8, features=4, buffer_fraction=0.2)
    db.insert(0, rng.standard_normal(300).cumsum())
    db.build()
    query = db.store.peek_subsequence(
        0, int(rng.integers(0, 250)), 17
    ).copy()
    gold = brute_force_range(db.store, query, epsilon, rho=1)
    got = db.range_search(query, epsilon=epsilon, rho=1)
    assert range_keys(got.matches) == range_keys(gold)
