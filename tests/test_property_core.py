"""Hypothesis property tests for the core math layer.

These guard the invariants the engines' exactness rests on: the DTW
band semantics, the envelope definition, and the lower-bound chain.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import dtw_pow, dtw_pow_batch, lp_distance
from repro.core.envelope import query_envelope
from repro.core.lower_bounds import (
    batch_lower_bounds,
    lb_keogh_pow,
    lb_keogh_pow_batch,
    lb_paa_pow,
    lb_paa_pow_batch,
    maxdist_pow_batch,
    mindist_pow,
    mindist_pow_batch,
)
from repro.core.paa import paa, paa_batch, paa_envelope
from repro.core.results import TopKCollector

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def sequences(min_size=2, max_size=48):
    return st.lists(finite, min_size=min_size, max_size=max_size)


@settings(max_examples=60, deadline=None)
@given(sequences(), st.integers(min_value=0, max_value=6))
def test_dtw_self_distance_zero(values, rho):
    assert dtw_pow(values, values, rho) == 0.0


@settings(max_examples=60, deadline=None)
@given(sequences(8, 24), sequences(8, 24), st.integers(0, 5))
def test_dtw_symmetry(a, b, rho):
    left = dtw_pow(a, b, rho)
    right = dtw_pow(b, a, rho)
    if math.isinf(left):
        assert math.isinf(right)
    else:
        assert left == pytest_approx(right)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(sequences(8, 24), st.integers(0, 4))
def test_wider_band_never_increases_dtw(a, rho):
    rng = np.random.default_rng(len(a))
    b = rng.standard_normal(len(a))
    narrow = dtw_pow(a, b, rho)
    wide = dtw_pow(a, b, rho + 2)
    assert wide <= narrow + 1e-9


@settings(max_examples=60, deadline=None)
@given(sequences(4, 40), st.integers(0, 8))
def test_envelope_definition(values, rho):
    env = query_envelope(values, rho)
    array = np.asarray(values)
    n = array.size
    for i in range(n):
        window = array[max(0, i - rho) : min(n, i + rho + 1)]
        assert env.lower[i] == window.min()
        assert env.upper[i] == window.max()


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(1, 4),
    st.integers(0, 6),
)
def test_lower_bound_chain(seed, features_exp, rho):
    rng = np.random.default_rng(seed)
    features = 2**features_exp  # 2..16 divides 32
    n = 32
    q = rng.standard_normal(n).cumsum()
    s = rng.standard_normal(n).cumsum()
    env = query_envelope(q, rho)
    dtw = dtw_pow(s, q, rho)
    keogh = lb_keogh_pow(env, s)
    lower, upper = paa_envelope(env, features)
    paa_bound = lb_paa_pow(lower, upper, paa(s, features), n // features)
    assert dtw + 1e-9 >= keogh
    assert keogh + 1e-9 >= paa_bound


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_mindist_lower_bounds_points_in_rect(seed):
    rng = np.random.default_rng(seed)
    f = 4
    env_low = np.sort(rng.standard_normal(f))
    env_high = env_low + rng.random(f)
    rect_low = rng.standard_normal(f)
    rect_high = rect_low + rng.random(f) * 3
    point = rect_low + rng.random(f) * (rect_high - rect_low)
    assert mindist_pow(
        env_low, env_high, rect_low, rect_high, 4
    ) <= lb_paa_pow(env_low, env_high, point, 4) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(1, 4),
    st.integers(0, 6),
)
def test_batched_lower_bound_sandwich(seed, features_exp, rho):
    # Lemma 1's chain, LB_PAA <= LB_Keogh <= DTW_rho, must hold for
    # every lane of the batched kernels at once.
    rng = np.random.default_rng(seed)
    features = 2**features_exp  # 2..16 divides 32
    n = 32
    q = rng.standard_normal(n).cumsum()
    batch = rng.standard_normal((8, n)).cumsum(axis=1)
    env = query_envelope(q, rho)
    dtw = dtw_pow_batch(batch, q, rho)
    keogh = lb_keogh_pow_batch(env, batch)
    lower, upper = paa_envelope(env, features)
    paa_bound = lb_paa_pow_batch(
        lower, upper, paa_batch(batch, features), n // features
    )
    assert (dtw + 1e-9 >= keogh).all()
    assert (keogh + 1e-9 >= paa_bound).all()


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 8))
def test_batched_mindist_sandwich_over_rect_points(seed, seg_len):
    # MINDIST <= LB_PAA(point) <= MAXDIST for every point inside its
    # rectangle, batched: the near/far bounds of batch_lower_bounds
    # must bracket every leaf entry the rectangle could contain.
    rng = np.random.default_rng(seed)
    f = 4
    env_low = np.sort(rng.standard_normal(f))
    env_high = env_low + rng.random(f)
    lows = rng.standard_normal((8, f))
    highs = lows + rng.random((8, f)) * 3
    points = lows + rng.random((8, f)) * (highs - lows)
    near, far = batch_lower_bounds(
        env_low, env_high, lows, highs, seg_len, include_far=True
    )
    point_bound = lb_paa_pow_batch(env_low, env_high, points, seg_len)
    assert (near <= point_bound + 1e-9).all()
    assert (point_bound <= far + 1e-9).all()
    assert np.array_equal(
        near, mindist_pow_batch(env_low, env_high, lows, highs, seg_len)
    )
    assert np.array_equal(
        far, maxdist_pow_batch(env_low, env_high, lows, highs, seg_len)
    )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    st.integers(1, 10),
)
def test_topk_collector_matches_sorted_reference(pows, k):
    collector = TopKCollector(k=k)
    for index, value in enumerate(pows):
        collector.offer_pow(value, 0, index)
    got = [match.distance for match in collector.matches(length=1)]
    want = [v**0.5 for v in sorted(pows)[:k]]
    np.testing.assert_allclose(got, want, rtol=1e-12)


@settings(max_examples=60, deadline=None)
@given(sequences(4, 32), sequences(4, 32))
def test_lp_vs_dtw_rho_zero(a, b):
    if len(a) != len(b):
        return
    assert dtw_pow(a, b, 0) == pytest_approx(lp_distance(a, b) ** 2)
