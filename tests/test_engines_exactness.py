"""Integration tests: every engine returns the brute-force top-k.

This is the library's central invariant (DESIGN.md, "Exactness
invariant"): SeqScan, HLMJ, PSM, RU, and RU-COST — deferred or not —
must produce the same distance multiset as an exhaustive banded-DTW
scan.
"""

import numpy as np
import pytest

from tests.conftest import (
    engine_distances,
    gold_topk,
    make_walk,
    query_from,
)

INDEX_METHODS = ["seqscan", "hlmj", "ru", "ru-cost"]


class TestEnginesMatchBruteForce:
    @pytest.mark.parametrize("method", INDEX_METHODS)
    @pytest.mark.parametrize("deferred", [False, True])
    def test_extracted_query(self, walk_db, method, deferred):
        query = query_from(walk_db, 500, 48)
        gold = gold_topk(walk_db, query, k=5, rho=2)
        result = walk_db.search(
            query, k=5, rho=2, method=method, deferred=deferred
        )
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("method", INDEX_METHODS)
    def test_synthetic_query(self, walk_db, method):
        query = make_walk(48, seed=99)
        gold = gold_topk(walk_db, query, k=4, rho=2)
        result = walk_db.search(query, k=4, rho=2, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("method", INDEX_METHODS)
    @pytest.mark.parametrize("k", [1, 3, 10, 40])
    def test_various_k(self, walk_db, method, k):
        query = query_from(walk_db, 1200, 48, sid=1)
        gold = gold_topk(walk_db, query, k=k, rho=2)
        result = walk_db.search(query, k=k, rho=2, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("method", INDEX_METHODS)
    @pytest.mark.parametrize("rho", [0, 1, 4])
    def test_various_rho(self, walk_db, method, rho):
        query = query_from(walk_db, 77, 64)
        gold = gold_topk(walk_db, query, k=3, rho=rho)
        result = walk_db.search(query, k=3, rho=rho, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("method", INDEX_METHODS)
    def test_k_larger_than_everything_matchable(self, walk_db, method):
        # k exceeding the number of subsequences must return them all.
        db = _tiny_db()
        query = db.store.peek_subsequence(0, 3, 31).copy()
        gold = gold_topk(db, query, k=50, rho=1)
        result = db.search(query, k=50, rho=1, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("method", INDEX_METHODS)
    def test_query_exactly_matches_sequence_prefix(self, walk_db, method):
        query = query_from(walk_db, 0, 48)
        result = walk_db.search(query, k=1, rho=2, method=method)
        assert result.matches[0].distance == pytest.approx(0.0, abs=1e-9)
        assert result.matches[0].start == 0


class TestPsmExactness:
    @pytest.mark.parametrize("deferred", [False, True])
    def test_matches_brute_force(self, psm_db, deferred):
        query = psm_db.store.peek_subsequence(0, 100, 24).copy()
        gold = gold_topk(psm_db, query, k=4, rho=1)
        result = psm_db.search(
            query, k=4, rho=1, method="psm", deferred=deferred
        )
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    def test_counts_bloom_calls(self, psm_db):
        query = psm_db.store.peek_subsequence(1, 50, 24).copy()
        result = psm_db.search(query, k=2, rho=1, method="psm")
        assert result.stats.bloom_calls > 0


def _tiny_db():
    from repro import SubsequenceDatabase

    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.5)
    db.insert(0, make_walk(80, seed=5))
    db.build()
    return db


class TestMultiSequence:
    @pytest.mark.parametrize("method", INDEX_METHODS)
    def test_results_span_sequences(self, method):
        from repro import SubsequenceDatabase

        rng = np.random.default_rng(8)
        base = rng.standard_normal(64).cumsum()
        db = SubsequenceDatabase(omega=16, features=4)
        # Plant the same motif in two different sequences.
        db.insert(0, np.concatenate([make_walk(200, seed=1), base]))
        db.insert(1, np.concatenate([base, make_walk(150, seed=2)]))
        db.build()
        result = db.search(base[:48], k=2, rho=2, method=method)
        assert {match.sid for match in result.matches} == {0, 1}
        for match in result.matches:
            assert match.distance == pytest.approx(0.0, abs=1e-9)
