"""Unit tests for MBR arithmetic (repro.index.geometry)."""

import numpy as np
import pytest

from repro.exceptions import UsageError
from repro.index import geometry


def rect(low, high):
    return np.asarray(low, dtype=float), np.asarray(high, dtype=float)


class TestBasics:
    def test_area_and_margin(self):
        r = rect([0, 0], [2, 3])
        assert geometry.area(r) == 6.0
        assert geometry.margin(r) == 5.0

    def test_degenerate_point_rect(self):
        point = np.array([1.0, 2.0])
        r = geometry.rect_of_point(point)
        assert geometry.area(r) == 0.0
        assert geometry.contains_point(r, point)

    def test_union(self):
        low, high = geometry.union(rect([0, 0], [1, 1]), rect([2, -1], [3, 0]))
        assert low.tolist() == [0.0, -1.0]
        assert high.tolist() == [3.0, 1.0]

    def test_union_all(self):
        merged = geometry.union_all(
            [rect([0, 0], [1, 1]), rect([5, 5], [6, 6]), rect([-1, 2], [0, 3])]
        )
        assert merged[0].tolist() == [-1.0, 0.0]
        assert merged[1].tolist() == [6.0, 6.0]

    def test_union_all_empty_rejected(self):
        with pytest.raises(UsageError):
            geometry.union_all([])


class TestEnlargementOverlap:
    def test_enlargement_zero_when_contained(self):
        big = rect([0, 0], [10, 10])
        small = rect([1, 1], [2, 2])
        assert geometry.enlargement(big, small) == 0.0

    def test_enlargement_positive_when_growing(self):
        r = rect([0, 0], [1, 1])
        other = rect([2, 0], [3, 1])
        assert geometry.enlargement(r, other) == pytest.approx(2.0)

    def test_overlap_area(self):
        a = rect([0, 0], [2, 2])
        b = rect([1, 1], [3, 3])
        assert geometry.overlap_area(a, b) == 1.0

    def test_disjoint_overlap_zero(self):
        a = rect([0, 0], [1, 1])
        b = rect([2, 2], [3, 3])
        assert geometry.overlap_area(a, b) == 0.0

    def test_touching_edges_overlap_zero(self):
        a = rect([0, 0], [1, 1])
        b = rect([1, 0], [2, 1])
        assert geometry.overlap_area(a, b) == 0.0


class TestCentersAndDistances:
    def test_center(self):
        assert geometry.center(rect([0, 0], [2, 4])).tolist() == [1.0, 2.0]

    def test_center_distance_sq(self):
        a = rect([0, 0], [2, 2])
        b = rect([3, 4], [3, 4])
        assert geometry.center_distance_sq(a, b) == pytest.approx(
            (3 - 1) ** 2 + (4 - 1) ** 2
        )

    def test_mindist_point_inside_is_zero(self):
        r = rect([0, 0], [2, 2])
        assert geometry.mindist_point_sq(r, np.array([1.0, 1.0])) == 0.0

    def test_mindist_point_outside(self):
        r = rect([0, 0], [1, 1])
        assert geometry.mindist_point_sq(r, np.array([4.0, 5.0])) == (
            pytest.approx(3.0**2 + 4.0**2)
        )
