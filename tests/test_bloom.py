"""Unit tests for the bloom filter (repro.index.bloom)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.index.bloom import BloomFilter


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter(num_bits=4096)
        keys = [(sid, offset) for sid in range(4) for offset in range(50)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_absent_keys_mostly_rejected(self):
        bloom = BloomFilter.with_capacity(200)
        for offset in range(200):
            bloom.add((0, offset))
        false_positives = sum(
            bloom.might_contain((1, offset)) for offset in range(1000)
        )
        # ~1 % FPR at 10 bits/key; allow generous slack.
        assert false_positives < 100

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(num_bits=128)
        assert not bloom.might_contain("anything")


class TestCounting:
    def test_probe_calls_counted(self):
        bloom = BloomFilter(num_bits=128)
        bloom.add("a")
        bloom.might_contain("a")
        bloom.might_contain("b")
        assert bloom.probe_calls == 2
        assert bloom.items_added == 1

    def test_add_does_not_count_probes(self):
        bloom = BloomFilter(num_bits=128)
        bloom.add("a")
        assert bloom.probe_calls == 0


class TestConfiguration:
    def test_min_bits_enforced(self):
        assert BloomFilter(num_bits=1).num_bits == 64

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=0)
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=64, num_hashes=0)
        with pytest.raises(ConfigurationError):
            BloomFilter(num_bits=64, num_hashes=9)
        with pytest.raises(ConfigurationError):
            BloomFilter.with_capacity(0)

    def test_with_capacity_sizes_bits(self):
        assert BloomFilter.with_capacity(100, bits_per_item=10).num_bits == (
            1000
        )
