"""Backend-parity differential matrix: file versus mmap storage.

The mmap backend substitutes the pager's in-memory page payloads with
read-only views of a memory-mapped scratch file.  It is *only* a cache
substitution: every deterministic observable — matches, full-precision
distances, every golden counter including NUM_IO — must be byte
identical to the file backend.  This module pins that claim across the
full golden engine matrix, persistence round-trips, sharded roots, and
WAL recovery, plus the verify-mode semantics the zero-copy path relies
on (CRC on first touch instead of every read).

ResourceWarnings are promoted to errors module-wide so an unclosed
NpzFile or mmap handle anywhere on these paths fails the suite.
"""

import warnings

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.exceptions import ConfigurationError, CorruptPageError
from repro.ingest import create_durable, recover_database
from repro.shard import ShardedDatabase
from repro.storage.backends import (
    BACKEND_NAMES,
    FileBackend,
    MmapBackend,
    StorageBackend,
    resolve_backend,
)
from repro.storage.faults import FaultInjector
from repro.storage.page import PageKind
from repro.storage.pager import Pager
from repro.storage.persistence import load_database, save_database
from tests.conftest import make_walk, query_from
from tests.test_engines_stats import (
    GOLDEN_DISTANCES,
    GOLDEN_MATCHES,
    GOLDEN_PSM_DISTANCES,
    GOLDEN_PSM_MATCHES,
    assert_golden,
)

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

#: Every ranked engine label of the golden matrix (method, deferred).
GOLDEN_LABELS = (
    "seqscan", "hlmj", "hlmj-d", "hlmj-wg", "hlmj-wg-d",
    "ru", "ru-d", "ru-cost", "ru-cost-d",
)


def build_backend_db(backend):
    """The golden workload rebuilt from scratch under one backend."""
    db = SubsequenceDatabase(
        omega=16, features=4, buffer_fraction=0.1, backend=backend
    )
    db.insert(0, make_walk(3000, seed=11))
    db.insert(1, make_walk(2200, seed=12))
    db.build()
    return db


def fingerprint(db, query, k=5, rho=2, method="ru-cost", normalize=False):
    """Exact digest from a cold cache: matches, distances, NUM_IO."""
    db.reset_cache()
    result = db.search(query, k=k, rho=rho, method=method, normalize=normalize)
    return (
        [(m.sid, m.start, repr(m.distance)) for m in result.matches],
        result.stats.page_accesses,
    )


@pytest.fixture(scope="module", params=list(BACKEND_NAMES))
def backend_db(request):
    db = build_backend_db(request.param)
    yield db
    db.close()


class TestResolveBackend:
    def test_default_is_file(self):
        assert isinstance(resolve_backend(None), FileBackend)
        assert isinstance(resolve_backend("file"), FileBackend)

    def test_mmap_by_name(self):
        assert isinstance(resolve_backend("mmap"), MmapBackend)

    def test_instance_passthrough(self):
        backend = MmapBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("ramdisk")
        with pytest.raises(ConfigurationError):
            resolve_backend(42)

    def test_capabilities_reported(self):
        assert resolve_backend("file").capabilities()["zero_copy"] is False
        caps = resolve_backend("mmap").capabilities()
        assert caps["zero_copy"] is True
        assert caps["verify"] == "first-touch"

    def test_backends_are_storage_backends(self):
        for name in BACKEND_NAMES:
            backend = resolve_backend(name)
            assert isinstance(backend, StorageBackend)
            assert backend.name == name
            assert backend.describe()["backend"] == name


class TestGoldenBackendParity:
    """Both backends must reproduce the golden matrix byte for byte."""

    @pytest.mark.parametrize("label", GOLDEN_LABELS)
    def test_ranked_engines_match_goldens(self, backend_db, label):
        deferred = label.endswith("-d")
        method = label[:-2] if deferred else label
        query = query_from(backend_db, 640, 48)
        backend_db.reset_cache()
        result = backend_db.search(
            query, k=5, rho=2, method=method, deferred=deferred
        )
        assert_golden(result, label, GOLDEN_DISTANCES, GOLDEN_MATCHES)

    def test_range_search_matches_goldens(self, backend_db):
        from repro.engines.range_search import RangeSearchEngine

        query = query_from(backend_db, 640, 48)
        backend_db.reset_cache()
        result = RangeSearchEngine(backend_db.index).search(
            query, epsilon=2.5, rho=2
        )
        assert_golden(result, "range", GOLDEN_DISTANCES, GOLDEN_MATCHES)

    @pytest.mark.parametrize("backend", list(BACKEND_NAMES))
    def test_psm_matches_goldens(self, backend):
        db = SubsequenceDatabase(
            omega=8, features=4, buffer_fraction=0.1, backend=backend
        )
        db.insert(0, make_walk(900, seed=21))
        db.insert(1, make_walk(700, seed=22))
        db.build(psm=True)
        try:
            query = query_from(db, 200, 32)
            db.reset_cache()
            result = db.search(query, k=3, rho=1, method="psm")
            assert_golden(
                result, "psm", GOLDEN_PSM_DISTANCES, GOLDEN_PSM_MATCHES
            )
        finally:
            db.close()

    def test_normalized_parity_file_vs_mmap(self):
        file_db = build_backend_db("file")
        mmap_db = build_backend_db("mmap")
        try:
            query = query_from(file_db, 640, 48)
            for method in ("seqscan", "hlmj-wg", "ru", "ru-cost"):
                assert fingerprint(
                    file_db, query, method=method, normalize=True
                ) == fingerprint(
                    mmap_db, query, method=method, normalize=True
                )
        finally:
            mmap_db.close()
            file_db.close()


class TestMmapZeroCopy:
    def test_data_payloads_are_mmap_views(self, backend_db):
        if backend_db.backend.name != "mmap":
            pytest.skip("zero-copy claim is mmap-specific")
        pager = backend_db.pager
        data_pages = [
            pid
            for pid in range(pager.num_pages)
            if pager.kind_of(pid) == PageKind.DATA
        ]
        assert data_pages
        for pid in data_pages:
            payload = pager._payloads[pid]  # noqa: SLF001 — white-box
            assert isinstance(payload, np.ndarray)
            assert payload.base is not None  # a view, not an owning copy
            assert not payload.flags.writeable

    def test_store_arrays_are_views(self, backend_db):
        if backend_db.backend.name != "mmap":
            pytest.skip("zero-copy claim is mmap-specific")
        store = backend_db.store
        for sid in store.sequence_ids():
            arr = store._arrays[sid]  # noqa: SLF001 — white-box
            assert arr.base is not None
            assert not arr.flags.writeable

    def test_scrub_passes_under_mmap(self, backend_db):
        report = backend_db.verify_integrity()
        assert report["ok"], report


class TestVerifyModes:
    """First-touch CRC semantics that make zero-copy reads cheap."""

    def _sealed_pager(self, verify_mode):
        pager = Pager(verify_mode=verify_mode)
        values = np.arange(64, dtype=np.float64)
        page_id = pager.allocate(PageKind.DATA, values)
        pager.seal()
        return pager, page_id, values

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Pager(verify_mode="never")

    def test_always_mode_reverifies_every_read(self):
        pager, page_id, values = self._sealed_pager("always")
        np.testing.assert_array_equal(pager.read(page_id), values)
        # Tamper behind the pager's back: every read re-verifies.
        tampered = values.copy()
        tampered[0] += 1.0
        pager._payloads[page_id] = tampered  # noqa: SLF001 — white-box
        with pytest.raises(CorruptPageError):
            pager.read(page_id)

    def test_first_touch_skips_reverification(self):
        pager, page_id, values = self._sealed_pager("first-touch")
        np.testing.assert_array_equal(pager.read(page_id), values)
        tampered = values.copy()
        tampered[0] += 1.0
        pager._payloads[page_id] = tampered  # noqa: SLF001 — white-box
        # Already verified once; the fast path trusts the payload.
        np.testing.assert_array_equal(pager.read(page_id), tampered)

    def test_first_touch_still_verifies_first_read(self):
        pager = Pager(verify_mode="first-touch")
        values = np.arange(64, dtype=np.float64)
        page_id = pager.allocate(PageKind.DATA, values)
        pager.seal()
        tampered = values.copy()
        tampered[0] += 1.0
        pager._payloads[page_id] = tampered  # noqa: SLF001 — white-box
        with pytest.raises(CorruptPageError):
            pager.read(page_id)

    def test_write_resets_first_touch_state(self):
        pager, page_id, values = self._sealed_pager("first-touch")
        pager.read(page_id)
        replacement = values + 2.0
        pager.write(page_id, replacement)
        tampered = replacement.copy()
        tampered[0] += 1.0
        pager._payloads[page_id] = tampered  # noqa: SLF001 — white-box
        # The write discarded the verified mark, so this read re-verifies
        # against the freshly stored checksum and catches the tamper.
        with pytest.raises(CorruptPageError):
            pager.read(page_id)

    def test_mmap_with_injector_forces_always(self):
        injector = FaultInjector.corrupt_pages([0])
        pager = MmapBackend().open_pager(
            page_size=1024, fault_injector=injector, clock=None
        )
        assert pager.verify_mode == "always"

    def test_mmap_corruption_detected(self):
        injector = FaultInjector.corrupt_pages([0])
        db = SubsequenceDatabase(
            omega=16,
            features=4,
            buffer_fraction=0.1,
            backend="mmap",
            fault_injector=injector,
        )
        db.insert(0, make_walk(600, seed=31))
        db.build()
        try:
            with pytest.raises(CorruptPageError):
                db.pager.read(0)
            assert 0 in db.pager.verify_all()
        finally:
            db.close()


class TestPersistenceParity:
    def test_round_trip_across_backends(self, tmp_path):
        source = build_backend_db("mmap")
        try:
            query = query_from(source, 640, 48)
            save_database(source, tmp_path / "db")
            want = fingerprint(source, query)
        finally:
            source.close()
        for backend in BACKEND_NAMES:
            reloaded = load_database(tmp_path / "db", backend=backend)
            try:
                assert fingerprint(reloaded, query) == want
                assert reloaded.verify_integrity()["ok"]
            finally:
                reloaded.close()

    def test_api_load_accepts_backend(self, tmp_path):
        source = build_backend_db("file")
        try:
            query = query_from(source, 640, 48)
            source.save(tmp_path / "db")
            want = fingerprint(source, query)
        finally:
            source.close()
        reloaded = SubsequenceDatabase.load(tmp_path / "db", backend="mmap")
        try:
            assert reloaded.backend.name == "mmap"
            assert fingerprint(reloaded, query) == want
        finally:
            reloaded.close()


class TestShardedParity:
    def _sharded(self, backend):
        db = ShardedDatabase(
            num_shards=2,
            policy="hash",
            executor="serial",
            omega=16,
            features=4,
            buffer_fraction=0.1,
            backend=backend,
        )
        for sid in range(4):
            db.insert(sid, make_walk(1100, seed=41 + sid))
        db.build()
        return db

    def test_sharded_file_vs_mmap_identical(self):
        file_db = self._sharded("file")
        mmap_db = self._sharded("mmap")
        try:
            query = file_db.shards[0].store.peek_subsequence(
                0, 300, 48
            ).copy()
            for normalize in (False, True):
                gold = file_db.search(
                    query, k=5, rho=2, method="ru-cost", normalize=normalize
                )
                got = mmap_db.search(
                    query, k=5, rho=2, method="ru-cost", normalize=normalize
                )
                assert [
                    (m.sid, m.start, repr(m.distance)) for m in gold.matches
                ] == [
                    (m.sid, m.start, repr(m.distance)) for m in got.matches
                ]
                assert (
                    gold.stats.page_accesses == got.stats.page_accesses
                )
        finally:
            mmap_db.close()
            file_db.close()

    def test_sharded_backend_must_be_a_name(self):
        with pytest.raises(ConfigurationError):
            ShardedDatabase(num_shards=2, backend=MmapBackend())


class TestRecoveryParity:
    def test_recover_under_mmap_matches_file(self, tmp_path):
        db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.15)
        db.insert(0, make_walk(1200, seed=61))
        db.insert(1, make_walk(800, seed=62))
        db.build()
        root = tmp_path / "root"
        wal = create_durable(db, root, sync=False)
        db.append_sequence(9, make_walk(260, seed=76))
        with db.ingest() as session:
            session.extend(0, make_walk(90, seed=77))
            session.delete(1)
        query = db.store.peek_subsequence(9, 50, 48).copy()
        wal.close()

        file_rec, file_report = recover_database(root, sync=False)
        mmap_rec, mmap_report = recover_database(
            root, sync=False, backend="mmap"
        )
        try:
            assert file_report == mmap_report
            for method in ("seqscan", "ru", "ru-cost"):
                assert fingerprint(
                    file_rec, query, method=method
                ) == fingerprint(mmap_rec, query, method=method)
            assert mmap_rec.verify_integrity()["ok"]
        finally:
            mmap_rec.wal.close()
            file_rec.wal.close()
            mmap_rec.close()
            file_rec.close()


class TestCloseMigration:
    def test_close_migrates_to_heap_and_stays_usable(self):
        db = build_backend_db("mmap")
        query = query_from(db, 640, 48)
        before = fingerprint(db, query)
        db.close()
        after = fingerprint(db, query)
        assert before == after
        for sid in db.store.sequence_ids():
            arr = db.store._arrays[sid]  # noqa: SLF001 — white-box
            assert arr.base is None  # owns its data now
            assert not arr.flags.writeable

    def test_close_is_idempotent(self):
        db = build_backend_db("mmap")
        db.close()
        db.close()

    def test_context_manager_closes(self):
        with SubsequenceDatabase(
            omega=16, features=4, buffer_fraction=0.1, backend="mmap"
        ) as db:
            db.insert(0, make_walk(600, seed=91))
            db.build()
            query = query_from(db, 100, 32)
            db.search(query, k=3, rho=1, method="ru")
        # Exiting migrated pages to heap; the db keeps working.
        db.search(query, k=3, rho=1, method="ru")

    def test_extend_after_build_migrates_sequence(self):
        db = build_backend_db("mmap")
        try:
            old_length = db.store.length(1)
            db.extend_sequence(1, make_walk(100, seed=75))
            got = db.store.get_subsequence(1, old_length - 40, 140)
            expected = db.store.peek_full_sequence(1)[
                old_length - 40 : old_length + 100
            ]
            np.testing.assert_array_equal(np.asarray(got), expected)
            assert db.verify_integrity()["ok"]
        finally:
            db.close()

    def test_no_resource_warning_on_lifecycle(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            db = build_backend_db("mmap")
            save_database(db, tmp_path / "db")
            db.close()
            reloaded = load_database(tmp_path / "db", backend="mmap")
            reloaded.close()
