"""Unit tests for the extended iterator operators (Definition 5, Sec 3.2)."""

import math

import pytest

from repro.core.windows import QueryWindowSet
from repro.engines.base import CandidateEvaluator, EngineConfig
from repro.engines.operators import RankedTuple, Status
from repro.engines.ranked_union import PhiOperator, UnionOperator, _cap_pow


def make_phi(db, query, class_index=0, k=3, scheduling="max-delta"):
    config = EngineConfig(k=k, rho=2)
    window_set = QueryWindowSet.from_query(
        query, omega=db.omega, features=db.features, rho=config.rho
    )
    evaluator = CandidateEvaluator(
        index=db.index,
        envelope=window_set.envelope,
        query=window_set.query,
        config=config,
        stats=__import__(
            "repro.core.metrics", fromlist=["QueryStats"]
        ).QueryStats(),
    )
    phi = PhiOperator(
        class_index=class_index,
        window_set=window_set,
        index=db.index,
        evaluator=evaluator,
        config=config,
        scheduling=scheduling,
    )
    return phi, evaluator, window_set


class TestCapPow:
    def test_no_threshold_admits_everything(self):
        assert _cap_pow(math.inf, 5.0) == math.inf

    def test_exhausted_sibling_prunes_everything(self):
        assert _cap_pow(10.0, math.inf) == -math.inf
        assert _cap_pow(math.inf, math.inf) == -math.inf

    def test_finite_headroom(self):
        assert _cap_pow(10.0, 4.0) == 6.0


class TestPhiOperator:
    def test_initial_state(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 200, 48).copy()
        phi, _evaluator, window_set = make_phi(walk_db, query)
        assert len(phi.queues) == len(window_set.classes[0])
        # Every queue starts with the root pair at distance 0.
        assert phi.frontier_pow() == 0.0
        assert phi.current_lower_bound_pow() == 0.0

    def test_get_next_returns_lb_then_eventually_tuples(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 200, 48).copy()
        phi, _evaluator, _ws = make_phi(walk_db, query)
        statuses = []
        for _ in range(4000):
            status, payload = phi.get_next()
            statuses.append(status)
            if status == Status.EOR:
                break
        assert Status.LB in statuses
        assert Status.TUPLE in statuses
        assert statuses[-1] == Status.EOR

    def test_tuples_arrive_in_distance_order(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 200, 48).copy()
        phi, _evaluator, _ws = make_phi(walk_db, query, k=5)
        distances = []
        for _ in range(6000):
            status, payload = phi.get_next()
            if status == Status.TUPLE:
                distances.append(payload.distance_pow)
            elif status == Status.EOR:
                break
        assert distances == sorted(distances)

    def test_frontier_is_monotone_nondecreasing(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 200, 48).copy()
        phi, _evaluator, _ws = make_phi(walk_db, query)
        previous = 0.0
        for _ in range(300):
            status, _payload = phi.get_next()
            if status == Status.EOR:
                break
            frontier = phi.frontier_pow()
            assert frontier >= previous - 1e-9
            previous = frontier


class TestUnionOperator:
    def test_drives_children_to_eor(self, walk_db):
        query = walk_db.store.peek_subsequence(1, 300, 48).copy()
        config = EngineConfig(k=3, rho=2)
        window_set = QueryWindowSet.from_query(
            query, omega=16, features=4, rho=2
        )
        from repro.core.metrics import QueryStats

        evaluator = CandidateEvaluator(
            index=walk_db.index,
            envelope=window_set.envelope,
            query=window_set.query,
            config=config,
            stats=QueryStats(),
        )
        children = [
            PhiOperator(
                class_index=index,
                window_set=window_set,
                index=walk_db.index,
                evaluator=evaluator,
                config=config,
                scheduling="max-delta",
            )
            for index in range(window_set.num_classes)
        ]
        union = UnionOperator(children, evaluator)
        emitted = []
        for _ in range(100_000):
            status, payload = union.get_next()
            if status == Status.EOR:
                break
            if status == Status.TUPLE:
                emitted.append(payload)
        assert isinstance(emitted[0], RankedTuple)
        # The union stops once delta_cur covers every child bound; the
        # collector holds the exact top-k.
        assert evaluator.collector.is_full
        distances = [t.distance_pow for t in emitted]
        assert distances == sorted(distances)
