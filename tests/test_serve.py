"""The query service: queueing, tenancy, overload typing, timeouts.

Organised by layer, bottom up:

* :class:`AgingPriorityQueue` — static-key aging (priority at equal
  age, no starvation), QoS-aware shedding, typed full-queue rejection.
* :class:`TokenBucket` / :class:`TenantRegistry` — deterministic rate
  maths on a :class:`FakeClock`, per-tenant isolation.
* :class:`QueryService` in-process — exactness against the direct
  library oracle, typed overload rejections with retry-after hints,
  server-side timeout to :class:`PartialResult` conversion under an
  8-thread hammer, and drain/cancel shutdown semantics.
* The JSON-lines protocol and :class:`SocketServer` end to end.

These are the runtime counterparts of the chaos `serve` campaign: the
campaign randomises scenarios, this file pins each property with a
deterministic instance.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, List

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.core.clock import FakeClock
from repro.engines.base import PartialResult
from repro.exceptions import (
    ConfigurationError,
    ProtocolError,
    ServiceOverloadedError,
)
from repro.serve import (
    AgingPriorityQueue,
    QosClass,
    QueryRequest,
    QueryService,
    ServeClient,
    ServiceConfig,
    SocketServer,
    TenantPolicy,
    TenantRegistry,
    TokenBucket,
    decode_response,
    parse_request,
)

THREADS = 8


def _run_threads(worker, count: int = THREADS) -> None:
    barrier = threading.Barrier(count)
    failures: List[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


def _make_db(size: int = 2000, omega: int = 16) -> SubsequenceDatabase:
    rng = np.random.default_rng(7)
    db = SubsequenceDatabase(omega=omega, features=4, buffer_fraction=0.2)
    db.insert(0, np.asarray(rng.standard_normal(size).cumsum()))
    db.insert(1, np.asarray(rng.standard_normal(size // 2).cumsum()))
    db.build()
    return db


@pytest.fixture(scope="module")
def db() -> SubsequenceDatabase:
    return _make_db()


@pytest.fixture(scope="module")
def query(db: SubsequenceDatabase) -> List[float]:
    return [float(v) for v in db.store.peek_subsequence(0, 400, 48)]


# ---------------------------------------------------------------------------
# AgingPriorityQueue
# ---------------------------------------------------------------------------


class TestAgingPriorityQueue:
    def test_better_class_wins_at_equal_age(self) -> None:
        clock = FakeClock()
        queue = AgingPriorityQueue(capacity=8, clock=clock)
        queue.put("batch", QosClass.BATCH)
        queue.put("standard", QosClass.STANDARD)
        queue.put("interactive", QosClass.INTERACTIVE)
        order = [queue.get(timeout=0) for _ in range(3)]
        assert order == ["interactive", "standard", "batch"]

    def test_aging_lets_old_batch_beat_fresh_interactive(self) -> None:
        # A BATCH item enqueued at t=0 has key 2 * interval; an
        # INTERACTIVE item arriving later than that key loses to it.
        clock = FakeClock()
        queue = AgingPriorityQueue(
            capacity=8, aging_interval_s=0.25, clock=clock
        )
        queue.put("old-batch", QosClass.BATCH)  # key 0.5
        clock.advance(0.6)
        queue.put("fresh-interactive", QosClass.INTERACTIVE)  # key 0.6
        assert queue.get(timeout=0) == "old-batch"
        assert queue.get(timeout=0) == "fresh-interactive"

    def test_fifo_within_a_class(self) -> None:
        clock = FakeClock(auto_advance=0.001)
        queue = AgingPriorityQueue(capacity=8, clock=clock)
        for i in range(4):
            queue.put(i, QosClass.STANDARD)
        assert [queue.get(timeout=0) for _ in range(4)] == [0, 1, 2, 3]

    def test_full_queue_sheds_newest_of_worst_class(self) -> None:
        clock = FakeClock(auto_advance=0.001)
        queue = AgingPriorityQueue(capacity=2, clock=clock)
        queue.put("batch-0", QosClass.BATCH)
        queue.put("batch-1", QosClass.BATCH)
        shed = queue.put("vip", QosClass.INTERACTIVE)
        assert shed == "batch-1"  # newest of the worst class
        assert queue.stats.shed == 1
        remaining = [queue.get(timeout=0), queue.get(timeout=0)]
        assert remaining == ["vip", "batch-0"]

    def test_full_queue_rejects_equal_class_with_retry_after(self) -> None:
        queue = AgingPriorityQueue(
            capacity=2, clock=FakeClock(), retry_after_hint_s=0.1
        )
        queue.put("a", QosClass.STANDARD)
        queue.put("b", QosClass.STANDARD)
        with pytest.raises(ServiceOverloadedError) as info:
            queue.put("c", QosClass.STANDARD)
        assert info.value.reason == "queue-full"
        # Depth-scaled hint: 2 queued items * 0.1s base.
        assert info.value.retry_after_s == pytest.approx(0.2)
        assert queue.stats.rejected_full == 1

    def test_close_drains_in_key_order_and_rejects_put(self) -> None:
        clock = FakeClock(auto_advance=0.001)
        queue = AgingPriorityQueue(capacity=8, clock=clock)
        queue.put("batch", QosClass.BATCH)
        queue.put("interactive", QosClass.INTERACTIVE)
        drained = queue.close()
        assert drained == ["interactive", "batch"]
        with pytest.raises(ServiceOverloadedError) as info:
            queue.put("late", QosClass.INTERACTIVE)
        assert info.value.reason == "shutdown"
        assert queue.get(timeout=0) is None

    def test_capacity_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            AgingPriorityQueue(capacity=0)


# ---------------------------------------------------------------------------
# TokenBucket / tenants
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_exact_retry_after(self) -> None:
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        # Empty bucket at rate 2/s: one token accrues in 0.5s.
        assert wait == pytest.approx(0.5)

    def test_refill_restores_admission(self) -> None:
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.1)
        assert bucket.try_acquire() == 0.0

    def test_registry_isolates_tenants(self) -> None:
        clock = FakeClock()
        registry = TenantRegistry(
            default_policy=TenantPolicy(rate=1.0, burst=1.0), clock=clock
        )
        alpha = registry.get_or_create("alpha")
        beta = registry.get_or_create("beta")
        assert alpha.bucket.try_acquire() == 0.0
        assert alpha.bucket.try_acquire() > 0.0
        # Alpha draining its bucket never touches beta's.
        assert beta.bucket.try_acquire() == 0.0
        assert registry.get_or_create("alpha") is alpha
        assert registry.names() == ["alpha", "beta"]


# ---------------------------------------------------------------------------
# QueryService in-process
# ---------------------------------------------------------------------------


class TestQueryService:
    def test_knn_matches_direct_search(self, db, query) -> None:
        direct = db.search(query, k=5, rho=2, method="ru-cost")
        with QueryService(db) as service:
            response = service.query(
                QueryRequest(
                    kind="knn", query=tuple(query), k=5, rho=2,
                    method="ru-cost",
                ),
                timeout=30.0,
            )
        assert response.exact and not response.partial
        assert [(m.sid, m.start, m.distance) for m in response.result.matches] \
            == [(m.sid, m.start, m.distance) for m in direct.matches]

    def test_rate_limited_tenant_gets_typed_rejection(self, db, query) -> None:
        tenants = TenantRegistry(
            default_policy=TenantPolicy(rate=1.0, burst=1.0)
        )
        with QueryService(db, tenants=tenants) as service:
            request = QueryRequest(
                kind="knn", query=tuple(query), tenant="greedy", k=3,
                rho=2, method="seqscan",
            )
            service.query(request, timeout=30.0)
            with pytest.raises(ServiceOverloadedError) as info:
                service.submit(request)
        assert info.value.reason == "tenant-rate-limit"
        assert info.value.retry_after_s is not None
        assert info.value.retry_after_s > 0.0
        state = tenants.get_or_create("greedy")
        assert state.snapshot().rejected_rate == 1

    def test_open_breaker_rejects_before_queueing(self, db, query) -> None:
        tenants = TenantRegistry(
            default_policy=TenantPolicy(
                breaker_threshold=0.5, breaker_window=4,
                breaker_min_samples=2, breaker_reset_s=30.0,
            )
        )
        state = tenants.get_or_create("flaky")
        for _ in range(4):
            state.breaker.record_failure()
        assert state.breaker.state == "open"
        with QueryService(db, tenants=tenants) as service:
            with pytest.raises(ServiceOverloadedError) as info:
                service.submit(
                    QueryRequest(
                        kind="knn", query=tuple(query), tenant="flaky",
                        k=3, rho=2,
                    )
                )
        assert info.value.reason == "tenant-circuit-open"
        assert info.value.retry_after_s == pytest.approx(30.0)

    def test_timeout_converts_to_sound_partial_under_hammer(
        self, db, query
    ) -> None:
        # Eight threads, each submitting a query whose deadline expires
        # before its first engine checkpoint (the FakeClock auto-advance
        # outruns the sub-millisecond timeout).  Every response must
        # resolve — partial with reason "deadline" and a certificate no
        # better than its reported matches — and none may raise or hang.
        gold = db.search(query, k=4, rho=2, method="seqscan")
        gold_set = {(m.sid, m.start): m.distance for m in gold.matches}
        clock = FakeClock(auto_advance=0.001)
        responses: List[Any] = []
        record = threading.Lock()
        with QueryService(db, clock=clock) as service:

            def worker(index: int) -> None:
                response = service.query(
                    QueryRequest(
                        kind="knn", query=tuple(query),
                        tenant=f"t{index}", k=4, rho=2, method="seqscan",
                        timeout_s=0.0005,
                    ),
                    timeout=60.0,
                )
                with record:
                    responses.append(response)

            _run_threads(worker)
        assert len(responses) == THREADS
        for response in responses:
            result = response.result
            assert isinstance(result, PartialResult)
            assert result.reason == "deadline"
            # Soundness: every gold match below the certificate must be
            # present in the partial's reported matches.
            reported = {(m.sid, m.start) for m in result.matches}
            for key, distance in gold_set.items():
                if distance < result.certificate - 1e-9:
                    assert key in reported

    def test_queue_full_rejection_carries_retry_after(self, db, query) -> None:
        # One worker, capacity-1 queue, and a held admission slot force
        # the second enqueue to bounce with "queue-full".
        config = ServiceConfig(
            workers=1, queue_capacity=1, retry_after_hint_s=0.2
        )
        with QueryService(db, config=config) as service:
            with service.admission.admit():  # starve the worker
                first = QueryRequest(
                    kind="knn", query=tuple(query), k=3, rho=2,
                )
                service.submit(first)
                # Wait for the worker to dequeue it (it then parks
                # inside admission, which we hold).
                deadline = 100
                while service.queue.depth > 0 and deadline > 0:
                    deadline -= 1
                    threading.Event().wait(0.02)
                assert service.queue.depth == 0
                service.submit(first)  # refills the queue slot
                with pytest.raises(ServiceOverloadedError) as info:
                    service.submit(first)
            assert info.value.reason == "queue-full"
            assert info.value.retry_after_s is not None
            assert info.value.retry_after_s > 0.0

    def test_shutdown_fails_queued_requests_with_typed_error(
        self, db, query
    ) -> None:
        config = ServiceConfig(workers=1, queue_capacity=8)
        service = QueryService(db, config=config)  # never started
        pending = service.submit(
            QueryRequest(kind="knn", query=tuple(query), k=3, rho=2)
        )
        service.shutdown(drain=False, timeout=1.0)
        with pytest.raises(ServiceOverloadedError) as info:
            pending.result(timeout=5.0)
        assert info.value.reason == "shutdown"
        with pytest.raises(ServiceOverloadedError):
            service.submit(
                QueryRequest(kind="knn", query=tuple(query), k=3, rho=2)
            )

    def test_cancel_resolves_as_partial(self, db, query) -> None:
        with QueryService(db) as service:
            pending = service.submit(
                QueryRequest(
                    kind="knn", query=tuple(query), k=4, rho=2,
                    method="seqscan",
                )
            )
            pending.cancel()
            # Either the cancel landed before execution finished
            # (partial, reason "cancelled") or the query won the race
            # and completed exactly; both are legal, neither may hang.
            response = pending.result(timeout=30.0)
        if isinstance(response.result, PartialResult):
            assert response.result.reason == "cancelled"

    def test_stream_interrupt_certificate_capped_by_emitted(
        self, db, query
    ) -> None:
        # An interrupted stream reports only *emitted* matches; its
        # certificate must never promise completeness beyond the last
        # emitted distance (unemitted-but-examined candidates sit there).
        clock = FakeClock(auto_advance=0.001)
        with QueryService(db, clock=clock) as service:
            response = service.query(
                QueryRequest(
                    kind="stream", query=tuple(query), k=6, rho=2,
                    method="ru", timeout_s=0.2,
                ),
                timeout=60.0,
            )
        result = response.result
        if isinstance(result, PartialResult):
            if result.matches:
                assert result.certificate <= result.matches[-1].distance + 1e-9
            else:
                assert result.certificate == 0.0


# ---------------------------------------------------------------------------
# AdmissionController fairness (the serve-layer wakeup contract)
# ---------------------------------------------------------------------------


class TestAdmissionFairness:
    def _drain_order(self, priorities: List[int]) -> List[int]:
        """Park one waiter per priority behind a held slot; return the
        order (by arrival index) in which slots were granted."""
        from repro.control import AdmissionController

        controller = AdmissionController(
            max_concurrent=1, max_queued=len(priorities)
        )
        order: List[int] = []
        order_lock = threading.Lock()
        release = threading.Semaphore(0)
        threads: List[threading.Thread] = []
        with controller.admit():

            def waiter(index: int, priority: int) -> None:
                with controller.admit(priority=priority):
                    with order_lock:
                        order.append(index)
                    release.acquire()

            for index, priority in enumerate(priorities):
                thread = threading.Thread(target=waiter, args=(index, priority))
                thread.start()
                threads.append(thread)
                # Arrival order must be deterministic: wait until this
                # waiter is actually parked before starting the next.
                for _ in range(500):
                    if controller.waiting == index + 1:
                        break
                    threading.Event().wait(0.005)
                assert controller.waiting == index + 1
        for _ in priorities:
            release.release()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)
        return order

    def test_equal_priority_is_fifo(self) -> None:
        assert self._drain_order([0, 0, 0, 0]) == [0, 1, 2, 3]

    def test_lower_priority_value_wins(self) -> None:
        # Arrivals: BATCH(2), INTERACTIVE(0), STANDARD(1), INTERACTIVE(0)
        # → both interactives (FIFO among themselves), standard, batch.
        assert self._drain_order([2, 0, 1, 0]) == [1, 3, 2, 0]

    def test_newcomer_does_not_barge(self) -> None:
        # A slot is momentarily free between a release and the parked
        # head waiter's wakeup; an equal-priority newcomer arriving in
        # that window must queue behind the waiter, not grab the slot.
        from repro.control import AdmissionController

        controller = AdmissionController(max_concurrent=1, max_queued=2)
        order: List[str] = []
        ticket = controller.admit()

        def parked_waiter() -> None:
            with controller.admit(priority=0):
                order.append("waiter")

        thread = threading.Thread(target=parked_waiter)
        thread.start()
        for _ in range(500):
            if controller.waiting == 1:
                break
            threading.Event().wait(0.005)
        assert controller.waiting == 1
        ticket.release()
        # Race the parked waiter for the freed slot from this thread.
        with controller.admit(priority=0):
            order.append("newcomer")
        thread.join(timeout=10.0)
        assert order == ["waiter", "newcomer"]


# ---------------------------------------------------------------------------
# Protocol + socket end to end
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_parse_request_rejects_garbage(self) -> None:
        with pytest.raises(ProtocolError):
            parse_request({"kind": "nope", "query": [1.0]})
        with pytest.raises(ProtocolError):
            parse_request({"kind": "knn"})  # missing query
        with pytest.raises(ProtocolError):
            parse_request({"kind": "knn", "query": "not-a-list"})
        with pytest.raises(ProtocolError):
            parse_request([1, 2, 3])  # not an object

    def test_decode_reconstructs_overload_error(self) -> None:
        obj = {
            "error": "ServiceOverloadedError",
            "reason": "tenant-rate-limit",
            "retry_after_s": 1.5,
            "message": "slow down",
        }
        with pytest.raises(ServiceOverloadedError) as info:
            decode_response(obj)
        assert info.value.reason == "tenant-rate-limit"
        assert info.value.retry_after_s == pytest.approx(1.5)

    def test_certificate_null_decodes_to_inf(self) -> None:
        obj = {"ok": True, "status": "partial", "certificate": None}
        assert decode_response(obj)["certificate"] == math.inf

    def test_exact_response_is_json_serializable(self, db, query) -> None:
        from repro.serve.protocol import encode_response

        with QueryService(db) as service:
            response = service.query(
                QueryRequest(kind="knn", query=tuple(query), k=3, rho=2),
                timeout=30.0,
            )
        encoded = encode_response(response)
        assert encoded["status"] == "exact"
        assert "certificate" not in encoded  # only partials carry one
        assert json.loads(json.dumps(encoded)) == encoded


class TestSocketServer:
    def test_concurrent_clients_mixed_engines(self, db, query) -> None:
        direct: Dict[str, List[Any]] = {}
        for method in ("seqscan", "hlmj", "ru", "ru-cost"):
            result = db.search(query, k=4, rho=2, method=method)
            direct[method] = [
                [m.sid, m.start, repr(m.distance)] for m in result.matches
            ]
        failures: List[str] = []
        record = threading.Lock()
        with QueryService(db) as service:
            with SocketServer(service) as server:
                host, port = server.address

                def worker(index: int) -> None:
                    method = ("seqscan", "hlmj", "ru", "ru-cost")[index % 4]
                    with ServeClient(host, port) as client:
                        out = client.request(
                            {
                                "kind": "knn",
                                "query": list(query),
                                "k": 4,
                                "rho": 2,
                                "method": method,
                                "tenant": f"sock-{index}",
                                "id": index,
                            }
                        )
                    got = [
                        [row[0], row[1], repr(row[3])]
                        for row in out["matches"]
                    ]
                    with record:
                        if out["status"] != "exact":
                            failures.append(f"{method}: {out['status']}")
                        if got != direct[method]:
                            failures.append(f"{method}: digest mismatch")

                _run_threads(worker)
        assert failures == []

    def test_stream_interleaves_match_lines(self, db, query) -> None:
        with QueryService(db) as service:
            with SocketServer(service) as server:
                host, port = server.address
                with ServeClient(host, port) as client:
                    lines = client.request_raw(
                        {
                            "kind": "stream",
                            "query": list(query),
                            "k": 3,
                            "rho": 2,
                            "id": "s1",
                        }
                    )
        assert lines[-1].get("final", True)
        streamed = [line["match"] for line in lines[:-1] if "match" in line]
        final_matches = lines[-1]["matches"]
        assert streamed == final_matches
        assert len(streamed) == 3

    def test_malformed_line_returns_typed_error(self, db) -> None:
        with QueryService(db) as service:
            with SocketServer(service) as server:
                host, port = server.address
                with ServeClient(host, port) as client:
                    client._conn.sendall(b"this is not json\n")
                    error_line = client._read_object()
                    with pytest.raises(ProtocolError):
                        decode_response(error_line)
                    # The connection survives a bad line.
                    out = client.request(
                        {
                            "kind": "knn",
                            "query": [0.0] * 32,
                            "k": 1,
                            "method": "seqscan",
                        }
                    )
        assert "matches" in out
