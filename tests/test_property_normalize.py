"""Property and differential tests for z-normalized ranked matching.

Three layers of evidence, mirroring the raw pipeline's test stack:

1. Hypothesis properties pin the rolling-stats kernel to a naive
   two-pass scalar oracle (1e-9), including the constant-window sigma
   floor and float32 inputs.
2. The normalized bound chain — MINDIST_znorm <= LB_PAA_znorm <=
   LB_Keogh_znorm <= normalized DTW — must hold lane-for-lane on random
   workloads, with the candidate transformed through its *own* stats
   and the MBR bounds through a global stats box, exactly as the
   engines use them.
3. Every engine (plus range search, streaming, and sharded roots)
   must agree with an exhaustive normalized brute force on the golden
   workload, and the normalized bounds must be registered with RS005's
   contract table in both directions.
"""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import (
    BOUND_NAME_PREFIXES,
    LOWER_BOUND_CONTRACTS,
)
from repro.core.distance import dtw_pow
from repro.core.envelope import query_envelope
from repro.core.lower_bounds import (
    batch_lower_bounds_znorm,
    lb_keogh_znorm_pow,
    lb_paa_znorm_pow_batch,
    maxdist_znorm_pow_batch,
    mindist_znorm_pow_batch,
)
from repro.core.normalize import (
    SIGMA_FLOOR,
    NormalizationContext,
    rolling_stats,
    znormalize,
)
from repro.core.paa import paa, paa_envelope
from repro.core.reference import (
    reference_rolling_stats,
    reference_znormalize,
)
from repro.engines.range_search import brute_force_range
from repro.exceptions import QueryError
from tests.conftest import build_golden_db, make_walk, query_from

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def sequences(min_size=2, max_size=48):
    return st.lists(finite, min_size=min_size, max_size=max_size)


#: Verified normalized golden top-5 for the (640, 48) query on the
#: golden workload — every engine, the stream, and the sharded facade
#: must reproduce these distances bit for bit.
ZNORM_GOLDEN_MATCHES = [(0, 640), (0, 639), (0, 641), (0, 642), (0, 638)]


# ----------------------------------------------------------------------
# 1. Rolling-stats kernel versus the scalar oracle
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(sequences(2, 48), st.data())
def test_rolling_stats_matches_reference(values, data):
    window = data.draw(st.integers(1, len(values)))
    mu, sigma = rolling_stats(np.asarray(values), window)
    ref_mu, ref_sigma = reference_rolling_stats(values, window)
    np.testing.assert_allclose(mu, ref_mu, rtol=1e-9, atol=1e-9)
    # Sigma is compared in the variance domain with a scale-aware
    # absolute term: the cumulative-sum kernel's cancellation error is
    # O(eps * magnitude^2), so a near-constant window inside a
    # large-magnitude sequence cannot beat that floor no matter how the
    # variance is extracted.  Well-separated variances still agree to
    # 1e-9 relative.
    scale = float(np.ptp(np.asarray(values))) + 1.0
    floored = (sigma == 1.0) | (ref_sigma == 1.0)
    np.testing.assert_allclose(
        sigma[~floored] ** 2,
        ref_sigma[~floored] ** 2,
        rtol=1e-9,
        atol=1e-12 * scale * scale,
    )
    # Windows whose true deviation is zero sit exactly at the sigma
    # floor; cancellation noise can push one side just above
    # SIGMA_FLOOR while the other floors to 1.0.  Where the two
    # disagree about flooring, both must be describing a window that is
    # constant relative to the data's magnitude.
    disagree = floored & (sigma != ref_sigma)
    assert (np.minimum(sigma, ref_sigma)[disagree] < 1e-5 * scale).all()


@settings(max_examples=40, deadline=None)
@given(finite, st.integers(2, 32), st.integers(1, 8))
def test_constant_window_floors_sigma(value, length, window):
    window = min(window, length)
    mu, sigma = rolling_stats(np.full(length, value), window)
    np.testing.assert_allclose(mu, value, rtol=0, atol=1e-9)
    # Population sigma of a constant window is 0 <= SIGMA_FLOOR, so
    # every window gets the floor value of exactly 1.0.
    assert (sigma == 1.0).all()


@settings(max_examples=40, deadline=None)
@given(sequences(4, 32))
def test_float32_input_promotes_to_float64(values):
    as32 = np.asarray(values, dtype=np.float32)
    mu, sigma = rolling_stats(as32, 4) if as32.size >= 4 else rolling_stats(
        as32, as32.size
    )
    assert mu.dtype == np.float64
    assert sigma.dtype == np.float64
    window = 4 if as32.size >= 4 else as32.size
    ref_mu, ref_sigma = rolling_stats(as32.astype(np.float64), window)
    # Same float32 values in, identical float64 stats out.
    np.testing.assert_array_equal(mu, ref_mu)
    np.testing.assert_array_equal(sigma, ref_sigma)


@settings(max_examples=60, deadline=None)
@given(sequences(2, 48))
def test_znormalize_matches_reference(values):
    got = znormalize(np.asarray(values))
    want = reference_znormalize(values)
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)
    assert got.dtype == np.float64


@settings(max_examples=40, deadline=None)
@given(finite, st.integers(2, 32))
def test_constant_input_normalizes_to_zeros(value, length):
    np.testing.assert_array_equal(
        znormalize(np.full(length, value)), np.zeros(length)
    )


def test_znormalize_rejects_empty_and_bad_sigma():
    with pytest.raises(QueryError):
        znormalize(np.empty(0))
    with pytest.raises(QueryError):
        znormalize(np.arange(4.0), mu=0.0, sigma=0.0)


def test_sigma_floor_is_conservative():
    # A deviation just above the floor is used as-is; at the floor and
    # below it is replaced by 1.0 — never a near-zero divisor.
    tiny = np.array([0.0, SIGMA_FLOOR / 2], dtype=np.float64)
    _, sigma = rolling_stats(tiny, 2)
    assert sigma[0] == 1.0


# ----------------------------------------------------------------------
# 2. Normalized bound chain soundness
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 3), st.integers(0, 5))
def test_znorm_bound_sandwich(seed, features_exp, rho):
    rng = np.random.default_rng(seed)
    features = 2**features_exp  # 2..8 divides 32
    n = 32
    seg_len = n // features
    q = rng.standard_normal(n).cumsum()
    batch = rng.standard_normal((8, n)).cumsum(axis=1)

    q_hat = znormalize(q)
    env = query_envelope(q_hat, rho)
    paa_lower, paa_upper = paa_envelope(env, features)

    mus = np.empty(len(batch))
    sigmas = np.empty(len(batch))
    paa_rows = np.empty((len(batch), features))
    for i, row in enumerate(batch):
        mu_i, sigma_i = rolling_stats(row, n)
        mus[i], sigmas[i] = float(mu_i[0]), float(sigma_i[0])
        paa_rows[i] = paa(row, features)

    paa_z = lb_paa_znorm_pow_batch(
        paa_lower, paa_upper, paa_rows, mus, sigmas, seg_len
    )
    for i, row in enumerate(batch):
        keogh_z = lb_keogh_znorm_pow(env, row, mus[i], sigmas[i])
        dtw_z = dtw_pow(znormalize(row, mus[i], sigmas[i]), q_hat, rho)
        assert dtw_z + 1e-9 >= keogh_z
        assert keogh_z + 1e-9 >= paa_z[i]

    # One MBR covering all raw PAA rows, one stats box covering every
    # candidate's (mu, sigma): MINDIST under the box must stay below
    # each row's LB_PAA, MAXDIST must stay above it.
    rect_low = paa_rows.min(axis=0)[None, :]
    rect_high = paa_rows.max(axis=0)[None, :]
    mu_range = (float(mus.min()), float(mus.max()))
    sigma_range = (float(sigmas.min()), float(sigmas.max()))
    near = mindist_znorm_pow_batch(
        paa_lower, paa_upper, rect_low, rect_high,
        mu_range, sigma_range, seg_len,
    )
    far = maxdist_znorm_pow_batch(
        paa_lower, paa_upper, rect_low, rect_high,
        mu_range, sigma_range, seg_len,
    )
    assert (near[0] <= paa_z + 1e-9).all()
    assert (far[0] + 1e-9 >= paa_z).all()

    both_near, both_far = batch_lower_bounds_znorm(
        paa_lower, paa_upper, rect_low, rect_high,
        mu_range, sigma_range, seg_len, include_far=True,
    )
    np.testing.assert_array_equal(both_near, near)
    np.testing.assert_array_equal(both_far, far)


# ----------------------------------------------------------------------
# 3. Engine differential versus normalized brute force
# ----------------------------------------------------------------------


def normalized_brute_force_topk(db, query, k, rho):
    """Exhaustive normalized top-k sharing zero code with the engines.

    Every candidate window is normalized with its own rolling stats
    (the same definition :class:`NormalizationContext` implements) and
    scored with scalar banded DTW against the normalized query.
    """
    length = len(query)
    q_hat = znormalize(np.asarray(query, dtype=np.float64))
    heap = []
    for sid in db.store.sequence_ids():
        values = np.asarray(db.store.peek_full_sequence(sid))
        if values.size < length:
            continue
        mus, sigmas = rolling_stats(values, length)
        for start in range(values.size - length + 1):
            window = (values[start : start + length] - mus[start]) / sigmas[
                start
            ]
            # Match.distance is the p-th root of the power-p DTW.
            d = dtw_pow(window, q_hat, rho) ** 0.5
            heapq.heappush(heap, (d, sid, start))
    return [heapq.heappop(heap) for _ in range(min(k, len(heap)))]


@pytest.fixture(scope="module")
def golden_db():
    return build_golden_db()


@pytest.fixture(scope="module")
def znorm_oracle(golden_db):
    query = query_from(golden_db, 640, 48)
    return normalized_brute_force_topk(golden_db, query, 5, 2)


class TestNormalizedEngineExactness:
    @pytest.mark.parametrize(
        "method,deferred",
        [
            ("seqscan", False),
            ("hlmj", False), ("hlmj", True),
            ("hlmj-wg", False), ("hlmj-wg", True),
            ("ru", False), ("ru", True),
            ("ru-cost", False), ("ru-cost", True),
        ],
    )
    def test_engines_match_oracle(
        self, golden_db, znorm_oracle, method, deferred
    ):
        query = query_from(golden_db, 640, 48)
        golden_db.reset_cache()
        result = golden_db.search(
            query, k=5, rho=2, method=method, deferred=deferred,
            normalize=True,
        )
        got = [(m.distance, m.sid, m.start) for m in result.matches]
        assert [(sid, start) for _, sid, start in got] == ZNORM_GOLDEN_MATCHES
        for (gd, gs, gt), (od, os_, ot) in zip(got, znorm_oracle):
            assert (gs, gt) == (os_, ot)
            assert gd == pytest.approx(od, rel=1e-12, abs=1e-12)

    def test_stream_matches_oracle(self, golden_db, znorm_oracle):
        query = query_from(golden_db, 640, 48)
        golden_db.reset_cache()
        got = []
        for match in golden_db.iter_matches(
            query, rho=2, normalize=True
        ):
            got.append((match.sid, match.start))
            if len(got) == 5:
                break
        assert got == [(sid, start) for _, sid, start in znorm_oracle]

    def test_range_matches_brute_force(self, golden_db):
        query = query_from(golden_db, 640, 48)
        epsilon = 1.0
        want = brute_force_range(
            golden_db.store, query, epsilon, 2, normalize=True
        )
        golden_db.reset_cache()
        result = golden_db.range_search(
            query, epsilon=epsilon, rho=2, normalize=True
        )
        assert [(m.sid, m.start, repr(m.distance)) for m in result.matches] \
            == [(m.sid, m.start, repr(m.distance)) for m in want]

    def test_raw_results_unchanged_by_default(self, golden_db):
        # normalize=False must stay byte-identical to the pre-existing
        # golden distances: the normalized plane is strictly additive.
        from tests.test_engines_stats import (
            GOLDEN_DISTANCES,
            GOLDEN_MATCHES,
        )

        query = query_from(golden_db, 640, 48)
        golden_db.reset_cache()
        result = golden_db.search(query, k=5, rho=2, method="ru-cost")
        assert [repr(m.distance) for m in result.matches] == GOLDEN_DISTANCES
        assert [(m.sid, m.start) for m in result.matches] == GOLDEN_MATCHES

    def test_normalization_finds_shifted_scaled_copies(self, golden_db):
        # The point of z-normalization: an affine-transformed copy of
        # the query is a perfect (distance zero) normalized match even
        # though its raw distance is enormous.
        query = query_from(golden_db, 640, 48)
        shifted = 3.0 * query + 250.0
        golden_db.reset_cache()
        raw = golden_db.search(shifted, k=1, rho=2, method="ru-cost")
        golden_db.reset_cache()
        norm = golden_db.search(
            shifted, k=1, rho=2, method="ru-cost", normalize=True
        )
        assert norm.matches[0].distance == pytest.approx(0.0, abs=1e-10)
        assert (norm.matches[0].sid, norm.matches[0].start) == (0, 640)
        assert raw.matches[0].distance > 1.0


class TestNormalizedSharded:
    def test_sharded_matches_unsharded(self):
        from repro.shard import ShardedDatabase

        sharded = ShardedDatabase(
            num_shards=2, policy="hash", executor="serial",
            omega=16, features=4, buffer_fraction=0.1,
        )
        oracle = build_golden_db()
        # Same two sequences, routed across two shards.
        sharded.insert(0, make_walk(3000, seed=11))
        sharded.insert(1, make_walk(2200, seed=12))
        sharded.build()
        try:
            query = query_from(oracle, 640, 48)
            gold = oracle.search(
                query, k=5, rho=2, method="ru-cost", normalize=True
            )
            got = sharded.search(
                query, k=5, rho=2, method="ru-cost", normalize=True
            )
            assert [
                (m.sid, m.start, repr(m.distance)) for m in gold.matches
            ] == [(m.sid, m.start, repr(m.distance)) for m in got.matches]
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# RS005 registration: both directions
# ----------------------------------------------------------------------

ZNORM_BOUNDS = (
    "lb_keogh_znorm_pow",
    "lb_paa_znorm_pow_batch",
    "mindist_znorm_pow_batch",
    "maxdist_znorm_pow_batch",
    "batch_lower_bounds_znorm",
)


class TestContractRegistration:
    def test_znorm_bounds_registered(self):
        for name in ZNORM_BOUNDS:
            assert name in LOWER_BOUND_CONTRACTS, name
            assert name.startswith(BOUND_NAME_PREFIXES) or name.startswith(
                "batch_"
            )

    def test_every_module_bound_has_a_contract(self):
        # The forward direction of RS005, asserted without the linter:
        # every bound-named top-level function in lower_bounds.py must
        # carry a registered contract.
        import ast
        import inspect

        from repro.core import lower_bounds

        tree = ast.parse(inspect.getsource(lower_bounds))
        module_bounds = {
            node.name
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
            and (
                node.name.startswith(BOUND_NAME_PREFIXES)
                or node.name.startswith("batch_lower_bounds")
            )
        }
        missing = module_bounds - set(LOWER_BOUND_CONTRACTS)
        assert not missing, f"unregistered bounds: {sorted(missing)}"

    def test_contracts_name_their_tightening_chain(self):
        assert (
            LOWER_BOUND_CONTRACTS["lb_paa_znorm_pow_batch"].tightens
            == "lb_keogh_znorm_pow"
        )
        assert (
            LOWER_BOUND_CONTRACTS["mindist_znorm_pow_batch"].tightens
            == "lb_paa_znorm_pow_batch"
        )
