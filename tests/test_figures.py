"""Tests for the ASCII chart renderer (repro.bench.figures)."""

import math

from repro.bench.figures import ascii_chart, chart_from_results


class TestAsciiChart:
    def test_contains_title_labels_and_legend(self):
        chart = ascii_chart(
            "My chart",
            [5, 25, 50],
            {"SeqScan": [100.0, 100.0, 100.0], "RU": [1.0, 2.0, 4.0]},
        )
        assert "My chart" in chart
        assert "o=SeqScan" in chart
        assert "x=RU" in chart
        for label in ("5", "25", "50"):
            assert label in chart

    def test_log_scale_orders_rows(self):
        chart = ascii_chart("t", [1], {"hi": [1000.0], "lo": [1.0]})
        lines = chart.splitlines()
        hi_row = next(i for i, l in enumerate(lines) if "o" in l and "=" not in l)
        lo_row = next(i for i, l in enumerate(lines) if "x" in l and "=" not in l)
        assert hi_row < lo_row  # larger value drawn higher

    def test_handles_empty_and_nonpositive(self):
        assert "(no positive data)" in ascii_chart("t", [1], {"a": [0.0]})
        assert "(no positive data)" in ascii_chart(
            "t", [1], {"a": [math.inf]}
        )

    def test_single_point(self):
        chart = ascii_chart("t", [1], {"a": [5.0]})
        assert "o" in chart


class TestChartFromResults:
    def test_uses_metric_accessor(self):
        class FakeResult:
            def __init__(self, value):
                self._value = value

            def metric(self, name):
                return self._value

        rows = {
            5: {"A": FakeResult(10.0), "B": FakeResult(1.0)},
            25: {"A": FakeResult(20.0), "B": FakeResult(2.0)},
        }
        chart = chart_from_results("c", rows, "candidates")
        assert "o=A" in chart and "x=B" in chart
