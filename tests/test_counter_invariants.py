"""Cross-engine accounting invariants.

The benchmark conclusions are only as good as the counters; these tests
pin down the arithmetic relations between them so instrumentation bugs
cannot silently skew a figure.
"""

import pytest

METHODS = ["seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost"]


def query_from(db, start, length, sid=0):
    return db.store.peek_subsequence(sid, start, length).copy()


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("deferred", [False, True])
class TestAccountingInvariants:
    def test_candidate_pipeline_adds_up(self, walk_db, method, deferred):
        query = query_from(walk_db, 555, 48)
        stats = walk_db.search(
            query, k=5, rho=2, method=method, deferred=deferred
        ).stats
        # Every retrieved candidate gets exactly one LB_Keogh check, and
        # then either a DTW computation or an LB_Keogh prune.
        assert stats.lb_keogh_computations == stats.candidates
        assert (
            stats.dtw_computations + stats.pruned_by_lb_keogh
            == stats.candidates
        )

    def test_physical_versus_logical_reads(self, walk_db, method, deferred):
        query = query_from(walk_db, 555, 48)
        walk_db.reset_cache()
        stats = walk_db.search(
            query, k=5, rho=2, method=method, deferred=deferred
        ).stats
        assert stats.page_accesses <= stats.logical_reads
        assert (
            stats.sequential_page_accesses + stats.random_page_accesses
            == stats.page_accesses
        )

    def test_wall_time_positive(self, walk_db, method, deferred):
        query = query_from(walk_db, 555, 48)
        stats = walk_db.search(
            query, k=5, rho=2, method=method, deferred=deferred
        ).stats
        assert stats.wall_time_s > 0


class TestIsolationBetweenQueries:
    def test_stats_are_per_query_deltas(self, walk_db):
        query = query_from(walk_db, 100, 48)
        walk_db.reset_cache()
        first = walk_db.search(query, k=3, rho=2, method="ru").stats
        second = walk_db.search(query, k=3, rho=2, method="ru").stats
        # The second run reuses the warm buffer: fewer physical reads,
        # and definitely not cumulative ones.
        assert second.page_accesses <= first.page_accesses
        # Candidate counts are identical — pure function of the query.
        assert second.candidates == first.candidates

    def test_interleaved_engines_do_not_leak_counters(self, walk_db):
        query = query_from(walk_db, 100, 48)
        ru_first = walk_db.search(query, k=3, rho=2, method="ru").stats
        walk_db.search(query, k=3, rho=2, method="hlmj")
        ru_again = walk_db.search(query, k=3, rho=2, method="ru").stats
        assert ru_again.candidates == ru_first.candidates
        assert ru_again.heap_pops == ru_first.heap_pops

    def test_deferred_and_plain_agree_on_matches(self, walk_db):
        query = query_from(walk_db, 1500, 48)
        plain = walk_db.search(query, k=8, rho=2, method="ru-cost")
        deferred = walk_db.search(
            query, k=8, rho=2, method="ru-cost", deferred=True
        )
        assert [m.key() for m in plain.matches] == [
            m.key() for m in deferred.matches
        ]
