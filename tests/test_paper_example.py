"""Mechanism checks tied to the paper's worked examples.

* Figure 9's headline — ranked union terminates in far fewer pops than
  HLMJ on a query with one near-match window and one discriminative
  window — is checked on a constructed dataset.
* Lemma 5 — with global-min (MDMWP-order) scheduling, the
  MSEQ-distance is at least the MDMWP-distance — is checked
  empirically via candidate counts.
"""

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.core.lower_bounds import min_disjoint_windows
from repro.core.windows import QueryWindowSet
from repro.engines.base import EngineConfig
from repro.engines.ranked_union import RankedUnionEngine


def build_mixed_density_db(seed=0):
    """One repeated motif (dense region) plus unique wandering segments."""
    rng = np.random.default_rng(seed)
    motif = np.sin(np.linspace(0, 4 * np.pi, 32)) * 2.0
    pieces = []
    for index in range(40):
        pieces.append(motif + 0.01 * rng.standard_normal(32))
        if index % 5 == 0:
            pieces.append(rng.standard_normal(48).cumsum())
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.2)
    db.insert(0, np.concatenate(pieces))
    db.build()
    return db, motif


class TestRankedUnionBeatsGlobalQueue:
    def test_fewer_pops_than_hlmj_on_mixed_query(self):
        db, motif = build_mixed_density_db()
        # Query: motif (maps into the dense region) followed by a
        # unique tail (sparse region) — Figure 2's pathology.
        rng = np.random.default_rng(9)
        tail = rng.standard_normal(31).cumsum()
        query = np.concatenate([motif, tail])

        hlmj = db.search(query, k=1, rho=2, method="hlmj")
        ru = db.search(query, k=1, rho=2, method="ru")
        ru_cost = db.search(query, k=1, rho=2, method="ru-cost")
        assert ru.stats.heap_pops < hlmj.stats.heap_pops
        # Cost-aware scheduling additionally slashes retrievals.
        assert ru_cost.stats.candidates < hlmj.stats.candidates
        assert ru_cost.stats.heap_pops < hlmj.stats.heap_pops
        # All exact, of course.
        for result in (ru, ru_cost):
            assert result.matches[0].distance == pytest.approx(
                hlmj.matches[0].distance, abs=1e-9
            )


class TestLemma5:
    def test_mseq_bound_dominates_mdmwp_bound(self):
        """Under MDMWP-order scheduling the class frontier sum is at
        least r times the minimum frontier — the Lemma 5 inequality in
        p-th-power space."""
        db, motif = build_mixed_density_db(seed=3)
        rng = np.random.default_rng(5)
        query = np.concatenate([motif, rng.standard_normal(31).cumsum()])
        window_set = QueryWindowSet.from_query(
            query, omega=16, features=4, rho=2
        )
        r = min_disjoint_windows(window_set.length, 16)
        from repro.core.metrics import QueryStats
        from repro.engines.base import CandidateEvaluator
        from repro.engines.operators import Status
        from repro.engines.ranked_union import PhiOperator

        config = EngineConfig(k=1, rho=2)
        evaluator = CandidateEvaluator(
            index=db.index,
            envelope=window_set.envelope,
            query=window_set.query,
            config=config,
            stats=QueryStats(),
        )
        phi = PhiOperator(
            class_index=0,
            window_set=window_set,
            index=db.index,
            evaluator=evaluator,
            config=config,
            scheduling="global-min",  # MDMWP consumption order
        )
        for _ in range(200):
            status, _ = phi.get_next()
            if status == Status.EOR:
                break
            tops = [queue.top_pow() for queue in phi.queues]
            if any(np.isinf(top) for top in tops):
                break
            mseq_pow = sum(tops)
            # MDMWP uses r * (minimum matching pair distance); with
            # global-min scheduling that minimum is min(tops).
            mdmwp_pow = r * min(tops)
            # r <= |MSEQ_0| and each top >= min  =>  Lemma 5.
            assert mseq_pow + 1e-9 >= mdmwp_pow

    def test_r_never_exceeds_class_size(self):
        rng = np.random.default_rng(0)
        for length in (31, 40, 47, 64, 80):
            window_set = QueryWindowSet.from_query(
                rng.standard_normal(length), omega=16, features=4, rho=2
            )
            r = min_disjoint_windows(length, 16)
            for cls in window_set.classes:
                assert len(cls) >= r


class TestCandidateCoverage:
    """Lemma 3: the union of class candidates covers every offset."""

    def test_every_offset_reachable_from_exactly_one_class(self):
        from repro.core.windows import candidate_start

        omega = 16
        length = 48  # query length
        data_length = 200
        reachable = {}
        for class_index in range(omega):
            offsets = [
                class_index + position * omega
                for position in range((length - omega) // omega + 1)
            ]
            for data_window in range(data_length // omega):
                for offset in offsets:
                    start = candidate_start(data_window, offset, omega)
                    if 0 <= start <= data_length - length:
                        reachable.setdefault(start, set()).add(class_index)
        assert set(reachable) == set(range(data_length - length + 1))
        assert all(len(classes) == 1 for classes in reachable.values())
