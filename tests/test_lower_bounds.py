"""Unit tests for the lower-bound chain (repro.core.lower_bounds).

The heart of exactness: ``DTW >= LB_Keogh >= LB_PAA >= MINDIST`` must
hold for arbitrary inputs, otherwise the engines would dismiss true
results.  These tests check the chain on seeded random data and the
composite MDMWP / MSEQ bounds.
"""

import math

import numpy as np
import pytest

from repro.core.distance import dtw_pow
from repro.core.envelope import query_envelope
from repro.core.lower_bounds import (
    lb_keogh,
    lb_keogh_pow,
    lb_paa,
    lb_paa_pow,
    maxdist_pow,
    mdmwp_pow,
    min_disjoint_windows,
    mindist_pow,
    mseq_distance_pow,
    root,
)
from repro.core.paa import paa, paa_envelope
from repro.exceptions import QueryError


def _random_case(seed, n=64, f=8, rho=4):
    rng = np.random.default_rng(seed)
    q = rng.standard_normal(n).cumsum()
    s = rng.standard_normal(n).cumsum()
    env = query_envelope(q, rho)
    return q, s, env, f, n // f


class TestChain:
    @pytest.mark.parametrize("seed", range(8))
    def test_dtw_keogh_paa_chain(self, seed):
        q, s, env, f, seg = _random_case(seed)
        dtw = dtw_pow(s, q, rho=4)
        keogh = lb_keogh_pow(env, s)
        lower, upper = paa_envelope(env, f)
        paa_bound = lb_paa_pow(lower, upper, paa(s, f), seg)
        assert dtw >= keogh - 1e-9
        assert keogh >= paa_bound - 1e-9

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
    def test_chain_for_other_norms(self, p):
        q, s, env, f, seg = _random_case(42)
        dtw = dtw_pow(s, q, rho=4, p=p)
        keogh = lb_keogh_pow(env, s, p=p)
        lower, upper = paa_envelope(env, f)
        paa_bound = lb_paa_pow(lower, upper, paa(s, f), seg, p=p)
        assert dtw >= keogh - 1e-9 >= paa_bound - 2e-9

    def test_sequence_inside_envelope_scores_zero(self):
        q = np.linspace(0.0, 1.0, 32)
        env = query_envelope(q, rho=3)
        assert lb_keogh_pow(env, q) == 0.0

    def test_keogh_length_mismatch(self):
        env = query_envelope([1.0, 2.0], rho=0)
        with pytest.raises(QueryError):
            lb_keogh_pow(env, [1.0, 2.0, 3.0])

    def test_rooted_wrappers(self):
        q, s, env, f, seg = _random_case(1)
        assert lb_keogh(env, s) == pytest.approx(
            lb_keogh_pow(env, s) ** 0.5
        )
        lower, upper = paa_envelope(env, f)
        assert lb_paa(lower, upper, paa(s, f), seg) == pytest.approx(
            lb_paa_pow(lower, upper, paa(s, f), seg) ** 0.5
        )


class TestMindistMaxdist:
    @pytest.mark.parametrize("seed", range(6))
    def test_mindist_below_lb_paa_below_maxdist(self, seed):
        rng = np.random.default_rng(seed)
        f, seg = 4, 8
        env_low = np.sort(rng.standard_normal(f))
        env_high = env_low + rng.random(f)
        rect_low = rng.standard_normal(f)
        rect_high = rect_low + rng.random(f) * 2
        point = rect_low + rng.random(f) * (rect_high - rect_low)
        near = mindist_pow(env_low, env_high, rect_low, rect_high, seg)
        exact = lb_paa_pow(env_low, env_high, point, seg)
        far = maxdist_pow(env_low, env_high, rect_low, rect_high, seg)
        assert near - 1e-12 <= exact <= far + 1e-12

    def test_overlapping_rect_has_zero_mindist(self):
        low = np.array([0.0, 0.0])
        high = np.array([1.0, 1.0])
        assert mindist_pow(low, high, low, high, seg_len=2) == 0.0

    def test_bad_seg_len(self):
        with pytest.raises(QueryError):
            lb_paa_pow(np.zeros(2), np.zeros(2), np.zeros(2), seg_len=0)


class TestCompositeBounds:
    def test_min_disjoint_windows_formula(self):
        # Definition 2: r = floor((Len(Q)+1)/omega) - 1.
        assert min_disjoint_windows(384, 64) == 5
        assert min_disjoint_windows(11, 4) == 2
        assert min_disjoint_windows(127, 64) == 1

    def test_min_disjoint_windows_rejects_bad_omega(self):
        with pytest.raises(QueryError):
            min_disjoint_windows(10, 0)

    def test_mdmwp_scales_by_r(self):
        assert mdmwp_pow(2.0, 3) == 6.0
        with pytest.raises(QueryError):
            mdmwp_pow(1.0, 0)

    def test_mseq_distance_sums_in_power_space(self):
        assert mseq_distance_pow([1.0, 2.0, 0.5]) == 3.5

    def test_mseq_distance_propagates_infinity(self):
        assert mseq_distance_pow([1.0, math.inf]) == math.inf

    def test_root(self):
        assert root(9.0, 2.0) == 3.0
        assert root(math.inf) == math.inf
        assert root(-1e-15) == 0.0  # float-noise clamp
