"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro import SubsequenceDatabase
from repro.__main__ import main
from tests.conftest import make_walk


class TestCli:
    def test_demo_runs(self, capsys):
        code = main(
            [
                "demo",
                "--dataset",
                "WALK",
                "--size",
                "6000",
                "--omega",
                "16",
                "--query-length",
                "48",
                "--k",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ru-cost" in out
        assert "candidates" in out

    def test_inventory_runs(self, capsys):
        code = main(["inventory", "--scale", "0.001"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("UCR", "PIPE", "WALK", "STOCK", "MUSIC"):
            assert name in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestScrub:
    @pytest.fixture()
    def saved_db(self, tmp_path):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(1200, seed=51))
        db.build()
        db.save(tmp_path / "db")
        return tmp_path / "db"

    def test_clean_database_passes(self, saved_db, capsys):
        assert main(["scrub", str(saved_db)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_bit_flip_detected(self, saved_db, capsys):
        values = saved_db / "values.npz"
        data = bytearray(values.read_bytes())
        data[200] ^= 0x01
        values.write_bytes(bytes(data))
        assert main(["scrub", str(saved_db)]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "checksum" in err

    def test_truncation_detected(self, saved_db, capsys):
        index = saved_db / "index.npz"
        index.write_bytes(index.read_bytes()[:64])
        assert main(["scrub", str(saved_db)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_missing_directory(self, tmp_path, capsys):
        assert main(["scrub", str(tmp_path / "nope")]) == 1
        assert "scrub" in capsys.readouterr().err
