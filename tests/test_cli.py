"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo_runs(self, capsys):
        code = main(
            [
                "demo",
                "--dataset",
                "WALK",
                "--size",
                "6000",
                "--omega",
                "16",
                "--query-length",
                "48",
                "--k",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ru-cost" in out
        assert "candidates" in out

    def test_inventory_runs(self, capsys):
        code = main(["inventory", "--scale", "0.001"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("UCR", "PIPE", "WALK", "STOCK", "MUSIC"):
            assert name in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
