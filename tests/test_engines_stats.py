"""Integration tests for engine instrumentation and behaviour.

Beyond exactness, the paper's comparisons rest on the counters being
meaningful: candidates, page accesses, pops, prunes, and the deferred
mechanism's effect on access patterns.
"""

import pytest


def query_from(db, start, length, sid=0):
    return db.store.peek_subsequence(sid, start, length).copy()


class TestSeqScanBehaviour:
    def test_candidates_independent_of_k(self, walk_db):
        query = query_from(walk_db, 300, 48)
        counts = {
            walk_db.search(query, k=k, rho=2, method="seqscan").stats.candidates
            for k in (1, 10, 30)
        }
        assert len(counts) == 1  # "SeqScan shows constant values"

    def test_considers_every_offset(self, walk_db):
        query = query_from(walk_db, 300, 48)
        stats = walk_db.search(query, k=1, rho=2, method="seqscan").stats
        expected = sum(
            walk_db.store.length(sid) - 48 + 1
            for sid in walk_db.store.sequence_ids()
        )
        assert stats.candidates == expected

    def test_reads_all_data_pages_once_from_cold(self, walk_db):
        query = query_from(walk_db, 300, 48)
        walk_db.reset_cache()
        stats = walk_db.search(query, k=1, rho=2, method="seqscan").stats
        assert stats.page_accesses == walk_db.store.total_data_pages
        # Sequential scan: almost every read rides the sweep.
        assert stats.sequential_page_accesses >= stats.page_accesses - 2

    def test_lb_keogh_prunes_most_dtw(self, walk_db):
        query = query_from(walk_db, 300, 48)
        stats = walk_db.search(query, k=1, rho=2, method="seqscan").stats
        assert stats.dtw_computations < stats.candidates
        assert stats.pruned_by_lb_keogh > 0


class TestIndexEngineCounters:
    @pytest.mark.parametrize("method", ["hlmj", "ru", "ru-cost"])
    def test_counters_populated(self, walk_db, method):
        query = query_from(walk_db, 640, 48)
        stats = walk_db.search(query, k=5, rho=2, method=method).stats
        assert stats.heap_pops > 0
        assert stats.node_expansions > 0
        assert stats.candidates > 0
        assert stats.wall_time_s > 0
        assert stats.logical_reads >= stats.page_accesses

    @pytest.mark.parametrize("method", ["hlmj", "ru", "ru-cost"])
    def test_index_engines_prune_versus_seqscan(self, walk_db, method):
        query = query_from(walk_db, 640, 48)
        seq = walk_db.search(query, k=5, rho=2, method="seqscan").stats
        index_stats = walk_db.search(query, k=5, rho=2, method=method).stats
        assert index_stats.candidates < seq.candidates / 5

    def test_duplicates_are_suppressed(self, walk_db):
        # In HLMJ every sliding window can rediscover the same
        # candidate, so the seen-set must fire on realistic queries.
        query = query_from(walk_db, 640, 64)
        stats = walk_db.search(query, k=5, rho=2, method="hlmj").stats
        assert stats.duplicates_suppressed > 0

    def test_larger_k_needs_more_work(self, walk_db):
        query = query_from(walk_db, 640, 48)
        small = walk_db.search(query, k=1, rho=2, method="ru-cost").stats
        large = walk_db.search(query, k=30, rho=2, method="ru-cost").stats
        assert large.candidates >= small.candidates


class TestDeferredBehaviour:
    @pytest.mark.parametrize("method", ["hlmj", "ru", "ru-cost"])
    def test_deferred_flushes_happen(self, walk_db, method):
        query = query_from(walk_db, 100, 48)
        stats = walk_db.search(
            query, k=10, rho=2, method=method, deferred=True
        ).stats
        assert stats.deferred_flushes >= 1

    def test_deferred_improves_sequentiality(self, walk_db):
        query = query_from(walk_db, 100, 48)
        walk_db.reset_cache()
        plain = walk_db.search(query, k=10, rho=2, method="hlmj").stats
        walk_db.reset_cache()
        deferred = walk_db.search(
            query, k=10, rho=2, method="hlmj", deferred=True
        ).stats
        plain_fraction = plain.sequential_page_accesses / max(
            1, plain.page_accesses
        )
        deferred_fraction = deferred.sequential_page_accesses / max(
            1, deferred.page_accesses
        )
        assert deferred_fraction >= plain_fraction


class TestSchedulingVariants:
    @pytest.mark.parametrize(
        "scheduling", ["max-delta", "global-min", "round-robin"]
    )
    def test_all_strategies_exact(self, walk_db, scheduling):
        from repro.engines.ranked_union import RankedUnionEngine
        from repro.engines.base import EngineConfig

        query = query_from(walk_db, 900, 48)
        reference = walk_db.search(query, k=5, rho=2, method="ru")
        engine = RankedUnionEngine(walk_db.index, scheduling=scheduling)
        result = engine.search(query, EngineConfig(k=5, rho=2))
        assert [round(m.distance, 6) for m in result.matches] == [
            round(m.distance, 6) for m in reference.matches
        ]

    def test_engine_names(self, walk_db):
        from repro.engines.ranked_union import RankedUnionEngine

        assert RankedUnionEngine(walk_db.index).name == "RU"
        assert (
            RankedUnionEngine(walk_db.index, scheduling="cost-aware").name
            == "RU-COST"
        )

    def test_unknown_scheduling_rejected(self, walk_db):
        from repro.engines.ranked_union import RankedUnionEngine
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            RankedUnionEngine(walk_db.index, scheduling="nope")
