"""Integration tests for engine instrumentation and behaviour.

Beyond exactness, the paper's comparisons rest on the counters being
meaningful: candidates, page accesses, pops, prunes, and the deferred
mechanism's effect on access patterns.  The golden tests at the bottom
pin the exact counter values and result digests of every engine on a
fixed workload: the vectorized kernels must not shift NUM_IO accounting
or top-k sets by a single unit.
"""

import pytest

from tests.conftest import query_from


class TestSeqScanBehaviour:
    def test_candidates_independent_of_k(self, walk_db):
        query = query_from(walk_db, 300, 48)
        counts = {
            walk_db.search(query, k=k, rho=2, method="seqscan").stats.candidates
            for k in (1, 10, 30)
        }
        assert len(counts) == 1  # "SeqScan shows constant values"

    def test_considers_every_offset(self, walk_db):
        query = query_from(walk_db, 300, 48)
        stats = walk_db.search(query, k=1, rho=2, method="seqscan").stats
        expected = sum(
            walk_db.store.length(sid) - 48 + 1
            for sid in walk_db.store.sequence_ids()
        )
        assert stats.candidates == expected

    def test_reads_all_data_pages_once_from_cold(self, walk_db):
        query = query_from(walk_db, 300, 48)
        walk_db.reset_cache()
        stats = walk_db.search(query, k=1, rho=2, method="seqscan").stats
        assert stats.page_accesses == walk_db.store.total_data_pages
        # Sequential scan: almost every read rides the sweep.
        assert stats.sequential_page_accesses >= stats.page_accesses - 2

    def test_lb_keogh_prunes_most_dtw(self, walk_db):
        query = query_from(walk_db, 300, 48)
        stats = walk_db.search(query, k=1, rho=2, method="seqscan").stats
        assert stats.dtw_computations < stats.candidates
        assert stats.pruned_by_lb_keogh > 0


class TestIndexEngineCounters:
    @pytest.mark.parametrize("method", ["hlmj", "ru", "ru-cost"])
    def test_counters_populated(self, walk_db, method):
        query = query_from(walk_db, 640, 48)
        stats = walk_db.search(query, k=5, rho=2, method=method).stats
        assert stats.heap_pops > 0
        assert stats.node_expansions > 0
        assert stats.candidates > 0
        assert stats.wall_time_s > 0
        assert stats.logical_reads >= stats.page_accesses

    @pytest.mark.parametrize("method", ["hlmj", "ru", "ru-cost"])
    def test_index_engines_prune_versus_seqscan(self, walk_db, method):
        query = query_from(walk_db, 640, 48)
        seq = walk_db.search(query, k=5, rho=2, method="seqscan").stats
        index_stats = walk_db.search(query, k=5, rho=2, method=method).stats
        assert index_stats.candidates < seq.candidates / 5

    def test_duplicates_are_suppressed(self, walk_db):
        # In HLMJ every sliding window can rediscover the same
        # candidate, so the seen-set must fire on realistic queries.
        query = query_from(walk_db, 640, 64)
        stats = walk_db.search(query, k=5, rho=2, method="hlmj").stats
        assert stats.duplicates_suppressed > 0

    def test_larger_k_needs_more_work(self, walk_db):
        query = query_from(walk_db, 640, 48)
        small = walk_db.search(query, k=1, rho=2, method="ru-cost").stats
        large = walk_db.search(query, k=30, rho=2, method="ru-cost").stats
        assert large.candidates >= small.candidates


class TestDeferredBehaviour:
    @pytest.mark.parametrize("method", ["hlmj", "ru", "ru-cost"])
    def test_deferred_flushes_happen(self, walk_db, method):
        query = query_from(walk_db, 100, 48)
        stats = walk_db.search(
            query, k=10, rho=2, method=method, deferred=True
        ).stats
        assert stats.deferred_flushes >= 1

    def test_deferred_improves_sequentiality(self, walk_db):
        query = query_from(walk_db, 100, 48)
        walk_db.reset_cache()
        plain = walk_db.search(query, k=10, rho=2, method="hlmj").stats
        walk_db.reset_cache()
        deferred = walk_db.search(
            query, k=10, rho=2, method="hlmj", deferred=True
        ).stats
        plain_fraction = plain.sequential_page_accesses / max(
            1, plain.page_accesses
        )
        deferred_fraction = deferred.sequential_page_accesses / max(
            1, deferred.page_accesses
        )
        assert deferred_fraction >= plain_fraction


class TestSchedulingVariants:
    @pytest.mark.parametrize(
        "scheduling", ["max-delta", "global-min", "round-robin"]
    )
    def test_all_strategies_exact(self, walk_db, scheduling):
        from repro.engines.ranked_union import RankedUnionEngine
        from repro.engines.base import EngineConfig

        query = query_from(walk_db, 900, 48)
        reference = walk_db.search(query, k=5, rho=2, method="ru")
        engine = RankedUnionEngine(walk_db.index, scheduling=scheduling)
        result = engine.search(query, EngineConfig(k=5, rho=2))
        assert [round(m.distance, 6) for m in result.matches] == [
            round(m.distance, 6) for m in reference.matches
        ]

    def test_engine_names(self, walk_db):
        from repro.engines.ranked_union import RankedUnionEngine

        assert RankedUnionEngine(walk_db.index).name == "RU"
        assert (
            RankedUnionEngine(walk_db.index, scheduling="cost-aware").name
            == "RU-COST"
        )

    def test_unknown_scheduling_rejected(self, walk_db):
        from repro.engines.ranked_union import RankedUnionEngine
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            RankedUnionEngine(walk_db.index, scheduling="nope")


# ----------------------------------------------------------------------
# Golden counters: captured from the scalar (pre-vectorization) engines
# on the fixed workload below.  The batched kernels are required to be
# byte-identical end to end, so every counter, every distance repr, and
# every (sid, start) pair is pinned exactly.  If one of these moves, a
# kernel changed engine behaviour — that is a bug, not a baseline drift.
# ----------------------------------------------------------------------

GOLDEN_STAT_KEYS = (
    "candidates",
    "page_accesses",
    "sequential_page_accesses",
    "random_page_accesses",
    "logical_reads",
    "dtw_computations",
    "lb_keogh_computations",
    "heap_pops",
    "node_expansions",
    "bloom_calls",
    "deferred_flushes",
    "pruned_by_lower_bound",
    "pruned_by_lb_keogh",
    "duplicates_suppressed",
    "window_group_evaluations",
)

# Only non-zero counters are listed; every key absent from a row is
# asserted to be exactly zero.
GOLDEN_COUNTERS = {
    "seqscan": {
        "candidates": 5106, "page_accesses": 11,
        "sequential_page_accesses": 10, "random_page_accesses": 1,
        "logical_reads": 11, "dtw_computations": 379,
        "lb_keogh_computations": 5106, "pruned_by_lb_keogh": 4727,
    },
    "hlmj": {
        "candidates": 228, "page_accesses": 179,
        "sequential_page_accesses": 105, "random_page_accesses": 74,
        "logical_reads": 365, "dtw_computations": 24,
        "lb_keogh_computations": 228, "heap_pops": 350,
        "node_expansions": 110, "pruned_by_lb_keogh": 204,
        "duplicates_suppressed": 11,
    },
    "hlmj-d": {
        "candidates": 228, "page_accesses": 124,
        "sequential_page_accesses": 98, "random_page_accesses": 26,
        "logical_reads": 365, "dtw_computations": 28,
        "lb_keogh_computations": 228, "heap_pops": 350,
        "node_expansions": 110, "deferred_flushes": 18,
        "pruned_by_lb_keogh": 200, "duplicates_suppressed": 11,
    },
    "hlmj-wg": {
        "candidates": 46, "page_accesses": 45,
        "sequential_page_accesses": 26, "random_page_accesses": 19,
        "logical_reads": 160, "dtw_computations": 24,
        "lb_keogh_computations": 46, "heap_pops": 350,
        "node_expansions": 110, "pruned_by_lower_bound": 182,
        "pruned_by_lb_keogh": 22, "duplicates_suppressed": 11,
        "window_group_evaluations": 228,
    },
    "hlmj-wg-d": {
        "candidates": 60, "page_accesses": 39,
        "sequential_page_accesses": 26, "random_page_accesses": 13,
        "logical_reads": 175, "dtw_computations": 29,
        "lb_keogh_computations": 60, "heap_pops": 350,
        "node_expansions": 110, "deferred_flushes": 5,
        "pruned_by_lower_bound": 168, "pruned_by_lb_keogh": 31,
        "duplicates_suppressed": 11, "window_group_evaluations": 228,
    },
    "ru": {
        "candidates": 216, "page_accesses": 229,
        "sequential_page_accesses": 132, "random_page_accesses": 97,
        "logical_reads": 317, "dtw_computations": 24,
        "lb_keogh_computations": 216, "heap_pops": 273,
        "node_expansions": 57, "pruned_by_lb_keogh": 192,
    },
    "ru-d": {
        "candidates": 216, "page_accesses": 149,
        "sequential_page_accesses": 115, "random_page_accesses": 34,
        "logical_reads": 317, "dtw_computations": 27,
        "lb_keogh_computations": 216, "heap_pops": 273,
        "node_expansions": 57, "deferred_flushes": 17,
        "pruned_by_lb_keogh": 189,
    },
    "ru-cost": {
        "candidates": 214, "page_accesses": 248,
        "sequential_page_accesses": 144, "random_page_accesses": 104,
        "logical_reads": 355, "dtw_computations": 24,
        "lb_keogh_computations": 214, "heap_pops": 255,
        "node_expansions": 99, "pruned_by_lb_keogh": 190,
        "duplicates_suppressed": 3,
    },
    "ru-cost-d": {
        "candidates": 212, "page_accesses": 161,
        "sequential_page_accesses": 125, "random_page_accesses": 36,
        "logical_reads": 352, "dtw_computations": 27,
        "lb_keogh_computations": 212, "heap_pops": 252,
        "node_expansions": 98, "deferred_flushes": 17,
        "pruned_by_lb_keogh": 185, "duplicates_suppressed": 2,
    },
    "range": {
        "candidates": 431, "page_accesses": 517,
        "sequential_page_accesses": 263, "random_page_accesses": 254,
        "logical_reads": 635, "dtw_computations": 5,
        "lb_keogh_computations": 431, "node_expansions": 125,
        "pruned_by_lb_keogh": 426, "duplicates_suppressed": 44,
    },
    "psm": {
        "candidates": 3, "page_accesses": 5,
        "sequential_page_accesses": 1, "random_page_accesses": 4,
        "logical_reads": 37, "dtw_computations": 3,
        "lb_keogh_computations": 3, "heap_pops": 38,
        "node_expansions": 34, "bloom_calls": 882,
    },
}

# Full-precision reprs: the ranked engines and range search all return
# the identical five matches on this workload.
GOLDEN_DISTANCES = [
    "0.0",
    "0.6557656093859874",
    "0.6909614700562021",
    "1.3058718531149556",
    "1.6013218650370529",
]
GOLDEN_MATCHES = [(0, 640), (0, 639), (0, 641), (0, 642), (0, 638)]

GOLDEN_PSM_DISTANCES = ["0.0", "0.831178482643337", "2.646050360682022"]
GOLDEN_PSM_MATCHES = [(0, 200), (0, 199), (0, 201)]


# The golden_db / golden_psm_db fixtures live in tests/conftest.py
# (shared with the trace-conformance suite); they rebuild the database
# from scratch per module so cache history from other tests cannot
# shift the counters.


def assert_golden(result, label, distances, matches):
    expected = GOLDEN_COUNTERS[label]
    got = {key: getattr(result.stats, key) for key in GOLDEN_STAT_KEYS}
    want = {key: expected.get(key, 0) for key in GOLDEN_STAT_KEYS}
    assert got == want, f"{label}: counters drifted"
    assert [repr(m.distance) for m in result.matches] == distances
    assert [(m.sid, m.start) for m in result.matches] == matches


class TestGoldenCounters:
    @pytest.mark.parametrize(
        "label",
        [
            "seqscan", "hlmj", "hlmj-d", "hlmj-wg", "hlmj-wg-d",
            "ru", "ru-d", "ru-cost", "ru-cost-d",
        ],
    )
    def test_ranked_engines_match_goldens(self, golden_db, label):
        deferred = label.endswith("-d")
        method = label[:-2] if deferred else label
        query = query_from(golden_db, 640, 48)
        golden_db.reset_cache()
        result = golden_db.search(
            query, k=5, rho=2, method=method, deferred=deferred
        )
        assert_golden(result, label, GOLDEN_DISTANCES, GOLDEN_MATCHES)

    def test_range_search_matches_goldens(self, golden_db):
        from repro.engines.range_search import RangeSearchEngine

        query = query_from(golden_db, 640, 48)
        golden_db.reset_cache()
        result = RangeSearchEngine(golden_db.index).search(
            query, epsilon=2.5, rho=2
        )
        assert_golden(result, "range", GOLDEN_DISTANCES, GOLDEN_MATCHES)

    def test_psm_matches_goldens(self, golden_psm_db):
        query = query_from(golden_psm_db, 200, 32)
        golden_psm_db.reset_cache()
        result = golden_psm_db.search(query, k=3, rho=1, method="psm")
        assert_golden(
            result, "psm", GOLDEN_PSM_DISTANCES, GOLDEN_PSM_MATCHES
        )
