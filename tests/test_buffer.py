"""Unit tests for the LRU buffer pool (repro.storage.buffer)."""

import pytest

from repro.exceptions import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.page import PageKind
from repro.storage.pager import Pager


@pytest.fixture()
def setup():
    pager = Pager(page_size=512)
    pages = [pager.allocate(PageKind.DATA, f"p{i}") for i in range(8)]
    return pager, BufferPool(pager, capacity_pages=3), pages


class TestBasics:
    def test_miss_then_hit(self, setup):
        pager, pool, pages = setup
        assert pool.get(pages[0]) == "p0"
        assert pool.get(pages[0]) == "p0"
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pager.stats.physical_reads == 1

    def test_capacity_enforced(self, setup):
        _pager, pool, pages = setup
        for page in pages[:5]:
            pool.get(page)
        assert pool.num_resident == 3
        assert pool.stats.evictions == 2

    def test_lru_eviction_order(self, setup):
        _pager, pool, pages = setup
        pool.get(pages[0])
        pool.get(pages[1])
        pool.get(pages[2])
        pool.get(pages[0])  # refresh page 0
        pool.get(pages[3])  # must evict page 1 (least recently used)
        assert pool.resident(pages[0])
        assert not pool.resident(pages[1])
        assert pool.resident(pages[2])
        assert pool.resident(pages[3])

    def test_zero_capacity_rejected(self, setup):
        pager, _pool, _pages = setup
        with pytest.raises(BufferPoolError):
            BufferPool(pager, capacity_pages=0)

    def test_hit_ratio(self, setup):
        _pager, pool, pages = setup
        pool.get(pages[0])
        pool.get(pages[0])
        pool.get(pages[0])
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)


class TestBitmap:
    def test_resident_probe_does_not_touch_lru(self, setup):
        _pager, pool, pages = setup
        pool.get(pages[0])
        pool.get(pages[1])
        pool.get(pages[2])
        # Probing page 0 must NOT make it recently-used...
        assert pool.resident(pages[0])
        pool.get(pages[3])  # ...so it is the one evicted.
        assert not pool.resident(pages[0])

    def test_probe_does_not_count_io(self, setup):
        pager, pool, pages = setup
        pool.resident(pages[0])
        assert pager.stats.physical_reads == 0
        assert pool.stats.misses == 0

    def test_count_non_resident_deduplicates(self, setup):
        _pager, pool, pages = setup
        pool.get(pages[0])
        assert pool.count_non_resident([pages[0], pages[1], pages[1]]) == 1


class TestMaintenance:
    def test_put_is_write_through(self, setup):
        pager, pool, pages = setup
        pool.put(pages[0], "fresh")
        assert pager.peek(pages[0]) == "fresh"
        assert pool.get(pages[0]) == "fresh"
        assert pool.stats.misses == 0  # already resident

    def test_invalidate(self, setup):
        _pager, pool, pages = setup
        pool.get(pages[0])
        pool.invalidate(pages[0])
        assert not pool.resident(pages[0])
        pool.invalidate(pages[0])  # idempotent

    def test_clear(self, setup):
        _pager, pool, pages = setup
        pool.get(pages[0])
        pool.clear()
        assert pool.num_resident == 0

    def test_resize_shrink_evicts(self, setup):
        _pager, pool, pages = setup
        for page in pages[:3]:
            pool.get(page)
        pool.resize(1)
        assert pool.num_resident == 1
        assert pool.capacity == 1
        with pytest.raises(BufferPoolError):
            pool.resize(0)
