"""Tests for crash-safe online ingest (repro.ingest).

Covers the session lifecycle (append/extend/delete, group commit,
abort), durable-root creation, checkpointing, recovery, and the two
regressions the tentpole is most exposed to: stale buffer-pool pages
after an in-place extend, and NUM_IO drift on databases that merely
*attach* the ingest machinery without mutating anything.
"""

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.exceptions import (
    ConfigurationError,
    IndexNotBuiltError,
    PageError,
    SequenceNotFoundError,
    UsageError,
)
from repro.ingest import (
    CHECKPOINT_NAME,
    WAL_NAME,
    checkpoint_database,
    create_durable,
    recover_database,
)
from tests.conftest import make_walk


@pytest.fixture()
def built_db():
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.15)
    db.insert(0, make_walk(1200, seed=61))
    db.insert(1, make_walk(800, seed=62))
    db.build()
    return db


@pytest.fixture()
def durable(built_db, tmp_path):
    root = tmp_path / "root"
    wal = create_durable(built_db, root, sync=False)
    yield built_db, root
    wal.close()


def fingerprint(db, query, k=5, rho=2, method="ru"):
    """Exact digest: matches, distances, and NUM_IO for one query."""
    db.reset_cache()
    result = db.search(query, k=k, rho=rho, method=method)
    return (
        [(m.sid, m.start, repr(m.distance)) for m in result.matches],
        result.stats.page_accesses,
    )


def seqscan_matches(db, query, k=5, rho=2):
    db.reset_cache()
    result = db.search(query, k=k, rho=rho, method="seqscan")
    return [(m.sid, m.start, repr(m.distance)) for m in result.matches]


class TestSessionLifecycle:
    def test_append_is_searchable(self, durable):
        db, _ = durable
        new = make_walk(200, seed=63)
        lsn = db.append_sequence(9, new)
        assert lsn is not None and lsn == db.wal.last_lsn
        query = new[40:88].copy()
        matches, _ = fingerprint(db, query)
        assert matches[0][0] == 9
        assert matches == seqscan_matches(db, query)

    def test_extend_makes_new_windows_searchable(self, durable):
        db, _ = durable
        tail = make_walk(150, seed=64) + float(
            db.store.peek_full_sequence(1)[-1]
        )
        old_length = db.store.length(1)
        db.extend_sequence(1, tail)
        assert db.store.length(1) == old_length + 150
        # A query inside the appended region must be found exactly.
        query = db.store.peek_subsequence(1, old_length + 30, 48).copy()
        matches, _ = fingerprint(db, query)
        assert matches[0] == (1, old_length + 30, repr(0.0))

    def test_delete_removes_all_trace(self, durable):
        db, _ = durable
        victim = db.store.peek_subsequence(1, 100, 48).copy()
        db.delete_sequence(1)
        assert not db.store.has_sequence(1)
        matches, _ = fingerprint(db, victim)
        assert all(sid != 1 for sid, _, _ in matches)
        assert matches == seqscan_matches(db, victim)
        assert db.verify_integrity()["ok"]

    def test_grouped_session_commits_once(self, durable):
        db, _ = durable
        with db.ingest() as session:
            session.append(7, make_walk(120, seed=65))
            session.extend(7, make_walk(40, seed=66))
            session.delete(1)
            assert session.operations == 3
        # 3 intent records + 1 commit marker, one commit LSN.
        assert session.commit_lsn == 4
        assert db.wal.record_count == 4

    def test_session_abort_rolls_the_wal_back(self, durable):
        db, _ = durable
        with pytest.raises(PageError):
            with db.ingest() as session:
                session.append(7, make_walk(60, seed=67))
                session.append(0, make_walk(60, seed=68))  # duplicate sid
        assert session.commit_lsn is None
        assert db.wal.record_count == 0  # intent records rolled back
        assert db.wal.last_lsn == 0

    def test_closed_session_refuses_further_use(self, durable):
        db, _ = durable
        session = db.ingest()
        session.commit()
        with pytest.raises(UsageError):
            session.append(7, make_walk(60, seed=69))
        with pytest.raises(UsageError):
            session.commit()
        session.abort()  # no-op after close

    def test_validation_happens_before_logging(self, durable):
        db, _ = durable
        with pytest.raises(PageError):
            db.append_sequence(0, make_walk(60, seed=70))  # sid taken
        with pytest.raises(SequenceNotFoundError):
            db.extend_sequence(99, make_walk(60, seed=71))
        with pytest.raises(SequenceNotFoundError):
            db.delete_sequence(99)
        with pytest.raises(PageError):
            db.append_sequence(8, [float("nan")] * 32)
        assert db.wal.record_count == 0  # nothing leaked into the log

    def test_ingest_requires_build(self):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(300, seed=72))
        with pytest.raises(IndexNotBuiltError):
            db.ingest()

    def test_walless_session_works_in_memory(self, built_db):
        built_db.append_sequence(5, make_walk(100, seed=73))
        assert built_db.store.has_sequence(5)
        assert built_db.wal is None


class TestDurableRoot:
    def test_create_durable_lays_out_checkpoint_and_wal(self, durable):
        db, root = durable
        assert (root / CHECKPOINT_NAME / "meta.json").exists()
        assert (root / WAL_NAME).exists()
        assert db.durable_root == root

    def test_create_durable_requires_build(self, tmp_path):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(300, seed=74))
        with pytest.raises(ConfigurationError):
            create_durable(db, tmp_path / "root")

    def test_checkpoint_requires_durable_root(self, built_db):
        with pytest.raises(UsageError):
            built_db.checkpoint()

    def test_attaching_wal_does_not_change_num_io(self, built_db, tmp_path):
        """Regression: ingest plumbing must be invisible until used.

        The golden NUM_IO pins elsewhere in the suite guard the
        unmutated engines; this guards the attach step itself.
        """
        query = built_db.store.peek_subsequence(0, 321, 48).copy()
        before = {
            method: fingerprint(built_db, query, method=method)
            for method in ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost")
        }
        wal = create_durable(built_db, tmp_path / "root", sync=False)
        after = {
            method: fingerprint(built_db, query, method=method)
            for method in before
        }
        wal.close()
        assert before == after


class TestBufferStaleness:
    def test_extend_invalidates_cached_pages(self, durable):
        """Regression: an in-place page rewrite must evict stale copies.

        ``extend`` rewrites the sequence's partially filled last page.
        If the buffer pool kept serving the old cached copy, reads
        through the pool would silently diverge from the pager truth.
        """
        db, _ = durable
        old_length = db.store.length(1)
        # Fault the tail pages into the pool.
        db.store.get_subsequence(1, old_length - 40, 40)
        db.extend_sequence(1, make_walk(100, seed=75))
        got = db.store.get_subsequence(1, old_length - 40, 140)
        expected = db.store.peek_full_sequence(1)[
            old_length - 40 : old_length + 100
        ]
        np.testing.assert_array_equal(np.asarray(got), expected)

    def test_delete_evicts_freed_pages(self, durable):
        db, _ = durable
        db.store.get_subsequence(1, 0, 200)  # warm the pool
        db.delete_sequence(1)
        assert db.verify_integrity()["ok"]
        with pytest.raises(SequenceNotFoundError):
            db.store.get_subsequence(1, 0, 10)


class TestRecovery:
    def run_some_sessions(self, db):
        db.append_sequence(9, make_walk(260, seed=76))
        with db.ingest() as session:
            session.extend(0, make_walk(90, seed=77))
            session.delete(1)

    def test_recovered_db_is_byte_identical(self, durable):
        db, root = durable
        self.run_some_sessions(db)
        query = db.store.peek_subsequence(9, 50, 48).copy()
        db.wal.close()
        recovered, report = recover_database(root, sync=False)
        assert report.checkpoint_lsn == 0
        assert report.replayed_batches == 2
        assert report.replayed_records == 3
        assert report.effective_lsn == db.wal.last_lsn
        for method in ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost"):
            assert fingerprint(recovered, query, method=method) == fingerprint(
                db, query, method=method
            )
        assert recovered.verify_integrity()["ok"]
        recovered.wal.close()

    def test_recovery_is_idempotent(self, durable):
        db, root = durable
        self.run_some_sessions(db)
        db.wal.close()
        first, report_a = recover_database(root, sync=False)
        first.wal.close()
        second, report_b = recover_database(root, sync=False)
        assert report_a == report_b
        query = first.store.peek_subsequence(9, 50, 48).copy()
        assert fingerprint(first, query) == fingerprint(second, query)
        second.wal.close()

    def test_checkpoint_truncates_and_recovery_replays_nothing(self, durable):
        db, root = durable
        self.run_some_sessions(db)
        watermark = db.checkpoint()
        assert watermark == db.wal.last_lsn
        assert db.wal.record_count == 0
        assert db.wal.base_lsn == watermark
        query = db.store.peek_subsequence(9, 50, 48).copy()
        live = fingerprint(db, query)
        db.wal.close()
        recovered, report = recover_database(root, sync=False)
        assert report.checkpoint_lsn == watermark
        assert report.replayed_records == 0
        assert report.effective_lsn == watermark
        assert fingerprint(recovered, query) == live
        recovered.wal.close()

    def test_ingest_resumes_after_recovery(self, durable):
        db, root = durable
        self.run_some_sessions(db)
        db.wal.close()
        recovered, _ = recover_database(root, sync=False)
        lsn = recovered.append_sequence(11, make_walk(120, seed=78))
        assert lsn == recovered.wal.last_lsn
        query = recovered.store.peek_subsequence(11, 10, 48).copy()
        matches, _ = fingerprint(recovered, query)
        assert matches[0][0] == 11
        recovered.wal.close()

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            recover_database(tmp_path / "nope", sync=False)


class TestPsmIngest:
    @pytest.fixture()
    def psm_durable(self, tmp_path):
        db = SubsequenceDatabase(omega=8, features=4, buffer_fraction=0.2)
        db.insert(0, make_walk(500, seed=81))
        db.insert(1, make_walk(400, seed=82))
        db.build(psm=True)
        root = tmp_path / "root"
        wal = create_durable(db, root, sync=False)
        yield db, root
        wal.close()

    def psm_fingerprint(self, db, query):
        db.reset_cache()
        result = db.search(query, k=3, rho=1, method="psm")
        return (
            [(m.sid, m.start, repr(m.distance)) for m in result.matches],
            result.stats.page_accesses,
        )

    def test_sliding_index_is_maintained_and_recovered(self, psm_durable):
        db, root = psm_durable
        db.append_sequence(5, make_walk(160, seed=83))
        with db.ingest() as session:
            session.extend(0, make_walk(60, seed=84))
            session.delete(1)
        query = db.store.peek_subsequence(5, 30, 24).copy()
        live = self.psm_fingerprint(db, query)
        assert live[0][0][0] == 5
        db.wal.close()
        recovered, _ = recover_database(root, psm=True, sync=False)
        assert self.psm_fingerprint(recovered, query) == live
        assert recovered.verify_integrity()["ok"]
        recovered.wal.close()
