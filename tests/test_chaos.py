"""Tests for the chaos / metamorphic exactness harness itself."""

from repro.__main__ import main as cli_main
from repro.chaos import (
    SCENARIOS,
    SERVE_SCENARIOS,
    SHARD_SCENARIOS,
    ChaosReport,
    run_chaos,
    run_serve_chaos,
    run_shard_chaos,
)


class TestRunChaos:
    def test_small_campaign_holds_every_invariant(self):
        report = run_chaos(seed=3, iterations=8)
        assert report.ok, [str(failure) for failure in report.failures]
        assert report.iterations == 8
        assert report.checks > 0

    def test_deterministic_across_runs(self):
        first = run_chaos(seed=5, iterations=6)
        second = run_chaos(seed=5, iterations=6)
        assert first.scenario_counts == second.scenario_counts
        assert first.checks == second.checks
        assert first.partials == second.partials

    def test_different_seeds_draw_different_schedules(self):
        # Over enough iterations two seeds picking identical scenario
        # sequences would mean the seed is ignored.
        first = run_chaos(seed=1, iterations=12)
        second = run_chaos(seed=2, iterations=12)
        assert first.ok and second.ok
        assert (
            first.scenario_counts != second.scenario_counts
            or first.checks != second.checks
        )

    def test_scenarios_all_reachable(self):
        report = run_chaos(seed=7, iterations=40)
        assert report.ok
        assert set(report.scenario_counts) == set(SCENARIOS)
        assert report.partials > 0

    def test_progress_callback_fires_per_iteration(self):
        lines = []
        run_chaos(seed=0, iterations=3, progress=lines.append)
        assert len(lines) == 3

    def test_empty_report_is_ok(self):
        assert ChaosReport(seed=0).ok


class TestRunServeChaos:
    def test_small_campaign_holds_every_invariant(self):
        report = run_serve_chaos(seed=3, iterations=6)
        assert report.ok, [str(failure) for failure in report.failures]
        assert report.iterations == 6
        assert report.checks > 0

    def test_scenario_schedule_is_deterministic(self):
        # The *schedule* is seeded; check counts are not asserted equal
        # because real thread races decide how many requests are shed
        # versus completed within a scenario.
        first = run_serve_chaos(seed=5, iterations=4)
        second = run_serve_chaos(seed=5, iterations=4)
        assert first.ok and second.ok
        assert first.scenario_counts == second.scenario_counts

    def test_scenarios_all_reachable(self):
        report = run_serve_chaos(seed=7, iterations=30)
        assert report.ok, [str(failure) for failure in report.failures]
        assert set(report.scenario_counts) == set(SERVE_SCENARIOS)
        # Adversity scenarios must have produced honest partials.
        assert report.partials > 0


class TestRunShardChaos:
    def test_small_campaign_holds_every_invariant(self):
        report = run_shard_chaos(seed=3, iterations=8)
        assert report.ok, [str(failure) for failure in report.failures]
        assert report.iterations == 8
        assert report.checks > 0

    def test_deterministic_across_runs(self):
        first = run_shard_chaos(seed=5, iterations=6)
        second = run_shard_chaos(seed=5, iterations=6)
        assert first.scenario_counts == second.scenario_counts
        assert first.checks == second.checks
        assert first.partials == second.partials

    def test_scenarios_all_reachable(self):
        report = run_shard_chaos(seed=7, iterations=40)
        assert report.ok, [str(failure) for failure in report.failures]
        assert set(report.scenario_counts) == set(SHARD_SCENARIOS)
        # Crashes, budgets, and deadlines must produce honest partials.
        assert report.partials > 0


class TestChaosCli:
    def test_exit_zero_and_summary_on_clean_run(self, capsys):
        assert cli_main(["chaos", "--seed", "3", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "seed=3 iterations=4" in out

    def test_serve_suite_exit_zero(self, capsys):
        assert (
            cli_main(
                [
                    "chaos",
                    "--suite",
                    "serve",
                    "--seed",
                    "3",
                    "--iterations",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OK" in out
        assert "run_serve_chaos" in out

    def test_shard_suite_exit_zero(self, capsys):
        assert (
            cli_main(
                [
                    "chaos",
                    "--suite",
                    "shard",
                    "--seed",
                    "3",
                    "--iterations",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OK" in out
        assert "run_shard_chaos" in out
