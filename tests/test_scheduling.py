"""Unit tests for queue-selection strategies (repro.engines.scheduling)."""

import math

import pytest

from repro.core.metrics import QueryStats
from repro.core.windows import QueryWindowSet
from repro.engines.queues import WindowQueue
from repro.engines.scheduling import (
    GlobalMinStrategy,
    MaxDeltaStrategy,
    RoundRobinStrategy,
    make_strategy,
)
from repro.exceptions import ConfigurationError


class FakeQueue:
    """Minimal stand-in exposing what the simple strategies consume."""

    def __init__(self, top):
        self._top = top
        self.reference_top_pow = 0.0
        self.is_empty = False

    def top_pow(self):
        return self._top


class TestMaxDelta:
    def test_picks_largest_growth(self):
        queues = [FakeQueue(1.0), FakeQueue(5.0), FakeQueue(2.0)]
        queues[1].reference_top_pow = 0.0
        queues[2].reference_top_pow = 1.9
        strategy = MaxDeltaStrategy()
        assert strategy.select(queues) is queues[1]

    def test_after_pop_resets_reference(self):
        queue = FakeQueue(5.0)
        strategy = MaxDeltaStrategy()
        strategy.after_pop(queue)
        assert queue.reference_top_pow == 5.0

    def test_ties_pick_first(self):
        queues = [FakeQueue(1.0), FakeQueue(1.0)]
        assert MaxDeltaStrategy().select(queues) is queues[0]


class TestGlobalMin:
    def test_picks_smallest_top(self):
        queues = [FakeQueue(3.0), FakeQueue(0.5), FakeQueue(2.0)]
        assert GlobalMinStrategy().select(queues) is queues[1]


class TestRoundRobin:
    def test_cycles(self):
        queues = [FakeQueue(1.0), FakeQueue(2.0)]
        strategy = RoundRobinStrategy()
        picks = [strategy.select(queues) for _ in range(4)]
        assert picks == [queues[0], queues[1], queues[0], queues[1]]


class TestFactory:
    def test_simple_names(self):
        assert make_strategy("max-delta").name == "max-delta"
        assert make_strategy("global-min").name == "global-min"
        assert make_strategy("round-robin").name == "round-robin"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_strategy("mystery")

    def test_cost_aware_needs_context(self):
        with pytest.raises(ConfigurationError):
            make_strategy("cost-aware")

    def test_cost_aware_construction(self, walk_db):
        strategy = make_strategy(
            "cost-aware",
            store=walk_db.store,
            query_length=48,
            omega=16,
            blocking_factor=8,
            cap_for=lambda _q: math.inf,
        )
        assert strategy.name == "cost-aware"


class TestStickiness:
    def test_sticky_reuses_selection(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 100, 48).copy()
        window_set = QueryWindowSet.from_query(
            query, omega=16, features=4, rho=2
        )
        stats = QueryStats()
        queues = [
            WindowQueue(
                window,
                walk_db.index.tree,
                walk_db.index.seg_len,
                2.0,
                stats,
            )
            for window in window_set.classes[0]
        ]
        calls = {"count": 0}

        class CountingScheduler:
            def select(self, live):
                calls["count"] += 1
                return live[0]

        from repro.engines.scheduling import CostAwareStrategy

        strategy = CostAwareStrategy(CountingScheduler(), sticky_pops=3)
        picks = [strategy.select(queues) for _ in range(6)]
        assert all(pick is queues[0] for pick in picks)
        assert calls["count"] == 2  # re-evaluated every 3 pops
