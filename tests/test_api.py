"""Unit tests for the public facade (repro.api.SubsequenceDatabase)."""

import numpy as np
import pytest

from repro import CostDensityConfig, SubsequenceDatabase
from repro.exceptions import (
    ConfigurationError,
    IndexNotBuiltError,
    QueryTooShortError,
)
from tests.conftest import make_walk


class TestLifecycle:
    def test_search_before_build_rejected(self):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(200, seed=0))
        with pytest.raises(IndexNotBuiltError):
            db.search(make_walk(48, seed=1))

    def test_build_without_data_rejected(self):
        db = SubsequenceDatabase(omega=16, features=4)
        with pytest.raises(ConfigurationError):
            db.build()

    def test_insert_after_build_rejected(self):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(200, seed=0))
        db.build()
        with pytest.raises(ConfigurationError):
            db.insert(1, make_walk(100, seed=1))

    def test_psm_requires_opt_in(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 0, 48).copy()
        with pytest.raises(IndexNotBuiltError):
            walk_db.search(query, method="psm")

    def test_unknown_method_rejected(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 0, 48).copy()
        with pytest.raises(ConfigurationError):
            walk_db.search(query, method="grep")

    def test_bad_buffer_fraction(self):
        with pytest.raises(ConfigurationError):
            SubsequenceDatabase(buffer_fraction=0.0)


class TestSearchDefaults:
    def test_default_rho_is_five_percent(self, walk_db):
        # rho defaults to max(1, 5% of Len(Q)); for a 48-point query
        # that is 2.  The search must succeed and return k matches.
        query = walk_db.store.peek_subsequence(0, 50, 48).copy()
        result = walk_db.search(query, k=3)
        assert len(result.matches) == 3

    def test_too_short_query(self, walk_db):
        with pytest.raises(QueryTooShortError):
            walk_db.search(np.zeros(16), k=1)

    def test_cost_config_accepted(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 50, 48).copy()
        result = walk_db.search(
            query,
            k=3,
            method="ru-cost",
            cost_config=CostDensityConfig(lookahead_h=4),
        )
        assert len(result.matches) == 3

    def test_results_carry_subsequence_coordinates(self, walk_db):
        query = walk_db.store.peek_subsequence(1, 321, 48).copy()
        match = walk_db.search(query, k=1, method="ru-cost").matches[0]
        assert (match.sid, match.start) == (1, 321)
        assert match.length == 48
        assert match.end == 369
        recovered = walk_db.store.peek_subsequence(1, match.start, 48)
        np.testing.assert_allclose(recovered, query)


class TestMaintenance:
    def test_describe(self, walk_db):
        info = walk_db.describe()
        assert info["sequences"] == 2
        assert info["buffer_pages"] == walk_db.buffer.capacity
        assert info["total_pages"] == walk_db.pager.num_pages

    def test_describe_before_build(self):
        db = SubsequenceDatabase()
        with pytest.raises(IndexNotBuiltError):
            db.describe()

    def test_resize_buffer(self, walk_db):
        original = walk_db.buffer.capacity
        walk_db.resize_buffer(0.02)
        assert walk_db.buffer.capacity < original
        walk_db.resize_buffer(0.1)
        with pytest.raises(ConfigurationError):
            walk_db.resize_buffer(0.0)

    def test_reset_cache(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 50, 48).copy()
        walk_db.search(query, k=1)
        walk_db.reset_cache()
        assert walk_db.buffer.num_resident == 0
        assert walk_db.pager.stats.physical_reads == 0

    def test_engines_are_cached(self, walk_db):
        first = walk_db._engine("ru", None)
        second = walk_db._engine("ru", None)
        assert first is second
