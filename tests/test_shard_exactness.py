"""Differential tests: sharded execution vs the single-shard oracle.

The tentpole invariant of the sharding subsystem is *byte identity*:
for every engine configuration in the golden table, a sharded database
must return exactly the matches — same distances bit-for-bit, same
tie-breaking order — that the unsharded oracle returns, for every shard
count and partitioning policy.  These tests enumerate that grid
directly; the Hypothesis suite (``test_property_shard.py``) walks
randomized workloads, and the chaos suite covers faults.

The N=1 column doubles as an accounting check: a single shard holds
the sequences in the original insertion order, so its index geometry —
and therefore every golden NUM_IO counter — is identical to the
unsharded database's.
"""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.shard import (
    POLICIES,
    ShardedDatabase,
    ShardedSearchResult,
    ShardPlanner,
    hash_shard,
)
from tests.conftest import (
    build_golden_db,
    build_golden_psm_db,
    make_walk,
    query_from,
)
from tests.test_engines_stats import (
    GOLDEN_COUNTERS,
    GOLDEN_DISTANCES,
    GOLDEN_MATCHES,
    GOLDEN_PSM_DISTANCES,
    GOLDEN_PSM_MATCHES,
    GOLDEN_STAT_KEYS,
)

SHARD_COUNTS = (1, 2, 3, 7)  # 3 and 7 exceed num_sequences (= 2)

ENGINE_LABELS = (
    "seqscan", "hlmj", "hlmj-d", "hlmj-wg", "hlmj-wg-d",
    "ru", "ru-d", "ru-cost", "ru-cost-d",
)

GRID = [
    (n, policy) for n in SHARD_COUNTS for policy in POLICIES
]


def _method_of(label):
    deferred = label.endswith("-d")
    return (label[:-2] if deferred else label), deferred


def build_sharded_golden_db(num_shards, policy, executor="serial"):
    """The golden workload, partitioned across ``num_shards``."""
    db = ShardedDatabase(
        num_shards=num_shards,
        policy=policy,
        executor=executor,
        omega=16,
        features=4,
        buffer_fraction=0.1,
    )
    db.insert(0, make_walk(3000, seed=11))
    db.insert(1, make_walk(2200, seed=12))
    db.build()
    return db


@pytest.fixture(scope="module")
def oracle():
    return build_golden_db()


@pytest.fixture(scope="module")
def sharded():
    """One sharded golden database per (num_shards, policy) cell."""
    dbs = {
        (n, policy): build_sharded_golden_db(n, policy)
        for n, policy in GRID
    }
    yield dbs
    for db in dbs.values():
        db.close()


def _num_io_adds_up(result):
    assert isinstance(result, ShardedSearchResult)
    assert result.stats.page_accesses == sum(
        stats.page_accesses for stats in result.shard_stats.values()
    )
    assert result.stats.candidates == sum(
        stats.candidates for stats in result.shard_stats.values()
    )


class TestGoldenDifferential:
    """Every golden engine config, every shard count, every policy."""

    @pytest.mark.parametrize("label", ENGINE_LABELS)
    @pytest.mark.parametrize("num_shards,policy", GRID)
    def test_byte_identical_topk(
        self, oracle, sharded, label, num_shards, policy
    ):
        method, deferred = _method_of(label)
        query = query_from(oracle, 640, 48)
        sdb = sharded[(num_shards, policy)]
        sdb.reset_cache()
        result = sdb.search(
            query, k=5, rho=2, method=method, deferred=deferred
        )
        # Bit-identical distances and the pinned tie-breaking order.
        assert [repr(m.distance) for m in result.matches] == GOLDEN_DISTANCES
        assert [(m.sid, m.start) for m in result.matches] == GOLDEN_MATCHES
        oracle.reset_cache()
        gold = oracle.search(
            query, k=5, rho=2, method=method, deferred=deferred
        )
        assert result.matches == gold.matches
        _num_io_adds_up(result)

    @pytest.mark.parametrize("num_shards,policy", GRID)
    def test_range_search_identical(self, oracle, sharded, num_shards, policy):
        query = query_from(oracle, 640, 48)
        sdb = sharded[(num_shards, policy)]
        sdb.reset_cache()
        result = sdb.range_search(query, epsilon=2.5, rho=2)
        oracle.reset_cache()
        gold = oracle.range_search(query, epsilon=2.5, rho=2)
        assert result.matches == gold.matches
        assert [repr(m.distance) for m in result.matches] == GOLDEN_DISTANCES
        _num_io_adds_up(result)

    @pytest.mark.parametrize("num_shards,policy", GRID)
    def test_stream_identical_and_nondecreasing(
        self, oracle, sharded, num_shards, policy
    ):
        query = query_from(oracle, 640, 48)
        sdb = sharded[(num_shards, policy)]
        sdb.reset_cache()
        stream = sdb.iter_matches(query, k=5, rho=2)
        got = list(stream)
        oracle.reset_cache()
        gold_stream = oracle.iter_matches(query, k=5, rho=2)
        want = list(gold_stream)
        gold_stream.close()
        assert got == want
        keys = [(m.distance, m.sid, m.start) for m in got]
        assert keys == sorted(keys)
        assert stream.stats is not None
        assert stream.stats.page_accesses == sum(
            stats.page_accesses for stats in stream.shard_stats.values()
        )
        assert math.isinf(stream.certificate)

    @pytest.mark.parametrize("label", ENGINE_LABELS)
    def test_single_shard_matches_golden_counters(self, sharded, label):
        """N=1 is bit-identical to the unsharded database — NUM_IO too."""
        method, deferred = _method_of(label)
        for policy in POLICIES:
            sdb = sharded[(1, policy)]
            query = sdb.shards[0].store.peek_subsequence(0, 640, 48).copy()
            sdb.reset_cache()
            result = sdb.search(
                query, k=5, rho=2, method=method, deferred=deferred
            )
            expected = GOLDEN_COUNTERS[label]
            got = {
                key: getattr(result.stats, key) for key in GOLDEN_STAT_KEYS
            }
            want = {key: expected.get(key, 0) for key in GOLDEN_STAT_KEYS}
            assert got == want, f"{label}/{policy}: N=1 counters drifted"


class TestPsmDifferential:
    @pytest.mark.parametrize("num_shards,policy", GRID)
    def test_psm_byte_identical(self, num_shards, policy):
        oracle = build_golden_psm_db()
        sdb = ShardedDatabase(
            num_shards=num_shards,
            policy=policy,
            executor="serial",
            omega=8,
            features=4,
            buffer_fraction=0.1,
        )
        sdb.insert(0, make_walk(900, seed=21))
        sdb.insert(1, make_walk(700, seed=22))
        sdb.build(psm=True)
        try:
            query = query_from(oracle, 200, 32)
            result = sdb.search(query, k=3, rho=1, method="psm")
            gold = oracle.search(query, k=3, rho=1, method="psm")
            assert result.matches == gold.matches
            assert [
                repr(m.distance) for m in result.matches
            ] == GOLDEN_PSM_DISTANCES
            assert [
                (m.sid, m.start) for m in result.matches
            ] == GOLDEN_PSM_MATCHES
            _num_io_adds_up(result)
        finally:
            sdb.close()


class TestTieBreakRegression:
    """Duplicated sequences force exact cross-shard distance ties.

    With distance-only tie-breaking the merged order depended on which
    shard answered first; the pinned total order (distance, sid, start)
    makes sharded and unsharded answers identical even when every
    distance appears twice.
    """

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", (2, 3))
    def test_duplicated_sequences(self, policy, num_shards):
        from repro import SubsequenceDatabase

        walk = make_walk(1200, seed=33)
        oracle = SubsequenceDatabase(
            omega=16, features=4, buffer_fraction=0.1
        )
        sdb = ShardedDatabase(
            num_shards=num_shards,
            policy=policy,
            executor="serial",
            omega=16,
            features=4,
            buffer_fraction=0.1,
        )
        for db in (oracle, sdb):
            db.insert(0, walk)
            db.insert(1, walk)  # exact duplicate: every distance ties
        oracle.build()
        sdb.build()
        try:
            # Only meaningful when the duplicates live on *different*
            # shards — otherwise the tie never crosses the merge.
            assignment = sdb.plan.assignment
            if num_shards > 1 and policy == "range":
                assert assignment[0] != assignment[1]
            query = oracle.store.peek_subsequence(0, 500, 48).copy()
            for method in ("seqscan", "hlmj", "ru", "ru-cost"):
                gold = oracle.search(query, k=6, rho=2, method=method)
                got = sdb.search(query, k=6, rho=2, method=method)
                assert got.matches == gold.matches, method
                # The duplicate pair straddles sids: ties resolve to
                # the lower sid first under the total order.
                by_key = [(m.distance, m.sid) for m in gold.matches]
                assert by_key == sorted(by_key)
        finally:
            sdb.close()


class TestTopology:
    def test_more_shards_than_sequences(self, sharded):
        sdb = sharded[(7, "hash")]
        assert len(sdb.shards) <= 2  # only 2 sequences exist
        assert sdb.plan.empty_shards  # surplus shards stay empty

    def test_hash_routing_is_process_independent(self):
        # Pinned values: hash_shard must never pick up Python's salted
        # builtin hash (PYTHONHASHSEED would break cross-process plans).
        assert [hash_shard(sid, 4) for sid in range(8)] == [
            0, 2, 0, 1, 1, 0, 2, 3,
        ]

    def test_range_policy_keeps_adjacent_ids_together(self):
        plan = ShardPlanner(num_shards=2, policy="range").plan(
            [5, 1, 9, 3, 7, 11]
        )
        assert plan.members(0) == [1, 3, 5]
        assert plan.members(1) == [7, 9, 11]

    def test_duplicate_sids_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardPlanner(num_shards=2).plan([1, 2, 1])


class TestPersistenceAndExecutors:
    def test_save_load_round_trip(self, oracle, tmp_path):
        sdb = build_sharded_golden_db(3, "hash")
        query = query_from(oracle, 640, 48)
        gold = sdb.search(query, k=5, rho=2, method="ru").matches
        root = tmp_path / "sharded"
        sdb.save(str(root))
        sdb.close()
        with ShardedDatabase.load(str(root), executor="serial") as reloaded:
            assert reloaded.plan.policy == "hash"
            assert reloaded.plan.num_shards == 3
            result = reloaded.search(query, k=5, rho=2, method="ru")
            assert result.matches == gold
            _num_io_adds_up(result)

    def test_thread_executor_identical(self, oracle):
        query = query_from(oracle, 640, 48)
        with build_sharded_golden_db(3, "hash", executor="thread") as sdb:
            for method in ("ru", "ru-cost", "hlmj"):
                gold = oracle.search(query, k=5, rho=2, method=method)
                got = sdb.search(query, k=5, rho=2, method=method)
                assert got.matches == gold.matches

    def test_process_executor_identical(self, oracle, tmp_path):
        query = query_from(oracle, 640, 48)
        sdb = build_sharded_golden_db(2, "hash")
        root = tmp_path / "sharded-proc"
        sdb.save(str(root))
        sdb.close()
        reloaded = ShardedDatabase.load(str(root), executor="process")
        try:
            gold = oracle.search(query, k=5, rho=2, method="ru")
            result = reloaded.search(query, k=5, rho=2, method="ru")
            assert result.matches == gold.matches
            _num_io_adds_up(result)
        finally:
            reloaded.close()
