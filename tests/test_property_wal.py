"""Hypothesis property tests for WAL recovery (repro.storage.wal/ingest).

Three properties, each a direct statement of the tentpole's contract:

* a crash at *any byte boundary* of the log leaves exactly a committed
  prefix — never a partial or spliced session;
* recovery is idempotent — recovering the same durable root twice
  yields byte-identical databases;
* an arbitrary interleaving of append/extend/delete sessions followed
  by recovery matches a freshly built database holding the final
  sequence contents (ground truth via seqscan).
"""

import random
import tempfile
import pathlib
import shutil

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SubsequenceDatabase
from repro.ingest import create_durable, recover_database
from repro.storage.wal import WriteAheadLog

WAL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

DB_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _walk(rng: random.Random, n: int) -> np.ndarray:
    np_rng = np.random.default_rng(rng.randrange(2**31))
    return np.asarray(np_rng.standard_normal(n).cumsum())


def _plan_sessions(rng: random.Random):
    """Random interleaved sessions against a simulated live-sid set."""
    live = {0, 1}
    next_sid = 10
    sessions = []
    for _ in range(rng.randint(1, 3)):
        ops = []
        for _ in range(rng.randint(1, 3)):
            choices = ["append"]
            if live:
                choices.append("extend")
            if len(live) > 1:
                choices.append("delete")
            op = rng.choice(choices)
            if op == "append":
                sid = next_sid
                next_sid += 1
                ops.append(("append", sid, _walk(rng, rng.randint(90, 200))))
                live.add(sid)
            elif op == "extend":
                sid = rng.choice(sorted(live))
                ops.append(("extend", sid, _walk(rng, rng.randint(40, 120))))
            else:
                sid = rng.choice(sorted(live))
                ops.append(("delete", sid, None))
                live.discard(sid)
        sessions.append(ops)
    return sessions


@WAL_SETTINGS
@given(seed=st.integers(0, 10_000), cut_fraction=st.floats(0.0, 1.0))
def test_crash_at_any_byte_boundary_yields_committed_prefix(
    seed, cut_fraction
):
    rng = random.Random(seed)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-walprop-"))
    try:
        path = workdir / "wal.log"
        wal = WriteAheadLog(path, sync=False)
        empty_size = path.stat().st_size
        expected = []  # (commit_lsn, [record lsns]) per session
        for ops in _plan_sessions(rng):
            lsns = []
            for op, sid, values in ops:
                fields = {"sid": sid}
                if values is not None:
                    fields["values"] = values.tolist()
                lsns.append(wal.append(op, fields))
            expected.append((wal.commit(), lsns))
        wal.close()
        raw = path.read_bytes()

        cut = empty_size + int((len(raw) - empty_size) * cut_fraction)
        torn = workdir / "torn.log"
        torn.write_bytes(raw[:cut])
        reopened = WriteAheadLog(torn, sync=False)
        batches = list(reopened.replay())
        reopened.close()

        shape = [
            (batch.commit_lsn, [record.lsn for record in batch.records])
            for batch in batches
        ]
        assert shape == expected[: len(shape)]
        # Reopening truncated the file back to its committed prefix, so
        # a second open sees a clean log with the same content.
        again = WriteAheadLog(torn, sync=False)
        assert [
            (batch.commit_lsn, [record.lsn for record in batch.records])
            for batch in again.replay()
        ] == shape
        assert again.torn_bytes_discarded == 0
        again.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _base_db(rng: random.Random) -> SubsequenceDatabase:
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.2)
    db.insert(0, _walk(rng, rng.randint(280, 420)))
    db.insert(1, _walk(rng, rng.randint(280, 420)))
    db.build()
    return db


def _apply_sessions(db, sessions):
    for ops in sessions:
        with db.ingest() as session:
            for op, sid, values in ops:
                if op == "append":
                    session.append(sid, values)
                elif op == "extend":
                    session.extend(sid, values)
                else:
                    session.delete(sid)


def _final_state(rng_seed):
    """The sequence contents the sessions leave behind, computed purely."""
    rng = random.Random(rng_seed)
    base_rng = random.Random(f"{rng_seed}:base")
    state = {
        0: _walk(base_rng, base_rng.randint(280, 420)),
        1: _walk(base_rng, base_rng.randint(280, 420)),
    }
    sessions = _plan_sessions(rng)
    for ops in sessions:
        for op, sid, values in ops:
            if op == "append":
                state[sid] = values
            elif op == "extend":
                state[sid] = np.concatenate([state[sid], values])
            else:
                del state[sid]
    return state, sessions


def _digest(db, query, method):
    db.reset_cache()
    result = db.search(query, k=4, rho=2, method=method)
    return (
        [(m.sid, m.start, repr(m.distance)) for m in result.matches],
        result.stats.page_accesses,
    )


@DB_SETTINGS
@given(seed=st.integers(0, 10_000))
def test_interleaved_sessions_then_recover_equals_fresh_db(seed):
    state, sessions = _final_state(seed)
    base_rng = random.Random(f"{seed}:base")
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.2)
    db.insert(0, _walk(base_rng, base_rng.randint(280, 420)))
    db.insert(1, _walk(base_rng, base_rng.randint(280, 420)))
    db.build()

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-ingprop-"))
    try:
        create_durable(db, workdir / "root", sync=False)
        _apply_sessions(db, sessions)
        assert set(db.store.sequence_ids()) == set(state)
        for sid, values in state.items():
            np.testing.assert_array_equal(
                db.store.peek_full_sequence(sid), values
            )
        db.wal.close()

        # Recovery is idempotent: two recoveries are byte-identical.
        query_sid = max(state, key=lambda sid: state[sid].size)
        query = np.asarray(state[query_sid][:32]).copy()
        first, report_a = recover_database(workdir / "root", sync=False)
        live_digest = _digest(db, query, "ru")
        assert _digest(first, query, "ru") == live_digest
        first.wal.close()
        second, report_b = recover_database(workdir / "root", sync=False)
        assert report_a == report_b
        assert _digest(second, query, "ru") == live_digest

        # Recovered results match a fresh build of the final contents
        # (ground truth by seqscan; NUM_IO differs across build shapes).
        fresh = SubsequenceDatabase(
            omega=16, features=4, buffer_fraction=0.2
        )
        for sid, values in state.items():
            fresh.insert(sid, values)
        fresh.build()
        fresh_matches = _digest(fresh, query, "seqscan")[0]
        for method in ("seqscan", "hlmj", "ru", "ru-cost"):
            assert _digest(second, query, method)[0] == fresh_matches
        second.wal.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
