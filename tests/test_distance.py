"""Unit tests for banded DTW and L_p distances (repro.core.distance)."""

import math

import numpy as np
import pytest

from repro.core.distance import dtw_distance, dtw_pow, lp_distance
from repro.exceptions import QueryError


class TestLpDistance:
    def test_euclidean(self):
        assert lp_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_l1(self):
        assert lp_distance([0.0, 0.0], [3.0, 4.0], p=1.0) == pytest.approx(
            7.0
        )

    def test_length_mismatch(self):
        with pytest.raises(QueryError):
            lp_distance([1.0], [1.0, 2.0])


class TestDtwBasics:
    def test_identical_sequences_have_zero_distance(self):
        s = [1.0, 2.0, 3.0, 2.0]
        assert dtw_distance(s, s, rho=1) == 0.0

    def test_empty_sequences(self):
        assert dtw_pow([], [], rho=0) == 0.0
        assert dtw_pow([1.0], [], rho=0) == math.inf
        assert dtw_pow([], [1.0], rho=3) == math.inf

    def test_rho_zero_equals_lp(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal(20)
        b = rng.standard_normal(20)
        assert dtw_distance(a, b, rho=0) == pytest.approx(lp_distance(a, b))

    def test_negative_rho_rejected(self):
        with pytest.raises(QueryError):
            dtw_distance([1.0], [1.0], rho=-1)

    def test_known_alignment(self):
        # Query [0,0,1], data [0,1,1] with rho=1: the warping path can
        # align the 1s diagonally: cost 0+min(...)... hand-checked = 0.
        assert dtw_distance([0.0, 1.0, 1.0], [0.0, 0.0, 1.0], rho=1) == 0.0

    def test_band_restricts_alignment(self):
        # With rho=0 the same pair costs |0-0|+|1-0|+|1-1| = 1.
        assert dtw_distance(
            [0.0, 1.0, 1.0], [0.0, 0.0, 1.0], rho=0
        ) == pytest.approx(1.0)

    def test_unequal_lengths_within_band(self):
        value = dtw_distance([1.0, 2.0, 3.0], [1.0, 2.0], rho=1)
        assert math.isfinite(value)

    def test_unequal_lengths_beyond_band(self):
        assert dtw_pow([1.0] * 10, [1.0, 2.0], rho=2) == math.inf


class TestDtwProperties:
    def test_symmetry(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal(30)
        b = rng.standard_normal(30)
        assert dtw_distance(a, b, rho=3) == pytest.approx(
            dtw_distance(b, a, rho=3)
        )

    def test_wider_band_never_increases_distance(self):
        rng = np.random.default_rng(6)
        a = rng.standard_normal(40)
        b = rng.standard_normal(40)
        distances = [dtw_distance(a, b, rho=r) for r in (0, 1, 3, 8)]
        assert distances == sorted(distances, reverse=True)

    def test_p_one_versus_p_two_differ(self):
        a = [0.0, 5.0]
        b = [0.0, 0.0]
        assert dtw_distance(a, b, rho=0, p=1.0) == pytest.approx(5.0)
        assert dtw_distance(a, b, rho=0, p=2.0) == pytest.approx(5.0)
        a = [3.0, 4.0]
        assert dtw_distance(a, b, rho=0, p=1.0) == pytest.approx(7.0)
        assert dtw_distance(a, b, rho=0, p=2.0) == pytest.approx(5.0)


class TestEarlyAbandon:
    def test_abandon_returns_inf(self):
        a = np.zeros(20)
        b = np.full(20, 10.0)
        assert (
            dtw_pow(a, b, rho=2, threshold_pow=1.0) == math.inf
        )

    def test_threshold_above_true_distance_is_exact(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal(25)
        b = rng.standard_normal(25)
        exact = dtw_pow(a, b, rho=3)
        assert dtw_pow(a, b, rho=3, threshold_pow=exact + 1.0) == exact

    def test_rooted_threshold_parameter(self):
        a = np.zeros(10)
        b = np.full(10, 10.0)
        assert dtw_distance(a, b, rho=1, threshold=1.0) == math.inf
