"""Unit tests for windowing and MSEQ partitioning (repro.core.windows)."""

import numpy as np
import pytest

from repro.core.windows import (
    QueryWindowSet,
    candidate_in_bounds,
    candidate_start,
    num_disjoint_windows,
    num_sliding_windows,
)
from repro.exceptions import QueryTooShortError


class TestCounts:
    def test_disjoint(self):
        assert num_disjoint_windows(27, 4) == 6
        assert num_disjoint_windows(3, 4) == 0

    def test_sliding(self):
        assert num_sliding_windows(11, 4) == 8
        assert num_sliding_windows(3, 4) == 0


class TestCandidateArithmetic:
    def test_paper_lemma3_offsets(self):
        # 0-based form of the Lemma 3 proof: data window m matched by
        # sliding window at offset j implies start = m*omega - j.
        assert candidate_start(4, 0, 4) == 16
        assert candidate_start(4, 3, 4) == 13

    def test_bounds(self):
        assert candidate_in_bounds(0, 11, 27)
        assert candidate_in_bounds(16, 11, 27)
        assert not candidate_in_bounds(17, 11, 27)
        assert not candidate_in_bounds(-1, 11, 27)


class TestQueryWindowSet:
    @pytest.fixture()
    def window_set(self):
        # The paper's running example: Len(Q)=11 (well, scaled to be
        # PAA-compatible we use omega=4, f=2), omega=4 -> 8 sliding
        # windows in 4 equivalence classes of 2.
        rng = np.random.default_rng(0)
        return QueryWindowSet.from_query(
            rng.standard_normal(11), omega=4, features=2, rho=1
        )

    def test_window_and_class_counts_match_paper_example(self, window_set):
        assert len(window_set.windows) == 8
        assert window_set.num_classes == 4
        assert [len(cls) for cls in window_set.classes] == [2, 2, 2, 2]

    def test_class_membership_is_offset_mod_omega(self, window_set):
        for window in window_set.windows:
            assert window.mseq_class == window.sliding_offset % 4
            assert window.mseq_position == window.sliding_offset // 4

    def test_class_of(self, window_set):
        assert window_set.class_of(6) is window_set.classes[2]

    def test_paa_windows_use_full_query_envelope(self):
        # Window envelopes must be slices of the full envelope: the
        # first element of window at offset 2 sees query[2-rho].
        q = np.array([10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        ws = QueryWindowSet.from_query(q, omega=4, features=4, rho=1)
        window = ws.windows[1]  # offset 1: envelope upper[1] sees q[0]
        assert window.paa_upper[0] == 10.0

    def test_too_short_query_rejected(self):
        with pytest.raises(QueryTooShortError):
            QueryWindowSet.from_query(
                np.zeros(6), omega=4, features=2, rho=1
            )

    def test_minimum_length_accepted(self):
        ws = QueryWindowSet.from_query(
            np.zeros(7), omega=4, features=2, rho=1
        )
        # Classes 0..3 hold windows at offsets 0..3 (one each).
        assert [len(cls) for cls in ws.classes] == [1, 1, 1, 1]

    def test_seg_len(self, window_set):
        assert window_set.seg_len == 2
        assert window_set.length == 11
