"""Edge-case integration tests across the whole stack.

Covers the awkward inputs a downstream user will eventually feed the
library: constant sequences, minimum-length queries, other norms,
sequences shorter than a window, extreme buffer pressure, and ties.
"""

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.core.reference import brute_force_topk
from tests.conftest import engine_distances, gold_topk, make_walk

METHODS = ["seqscan", "hlmj", "ru", "ru-cost"]


class TestDegenerateData:
    @pytest.mark.parametrize("method", METHODS)
    def test_constant_sequence(self, method):
        # Flat data: every subsequence is identical, all distances tie
        # at zero; engines must not crash or loop, and must return k
        # zero-distance matches.
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, np.full(400, 3.25))
        db.build()
        result = db.search(np.full(48, 3.25), k=5, rho=2, method=method)
        assert len(result.matches) == 5
        assert all(m.distance == 0.0 for m in result.matches)

    @pytest.mark.parametrize("method", METHODS)
    def test_constant_query_on_noisy_data(self, method):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(600, seed=4))
        db.build()
        query = np.zeros(48)
        gold = gold_topk(db, query, k=3, rho=2)
        result = db.search(query, k=3, rho=2, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("method", METHODS)
    def test_sequences_shorter_than_query_are_skipped(self, method):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(40, seed=1))  # shorter than the query
        db.insert(1, make_walk(300, seed=2))
        db.build()
        query = db.store.peek_subsequence(1, 10, 48).copy()
        result = db.search(query, k=3, rho=2, method=method)
        assert all(m.sid == 1 for m in result.matches)


class TestBoundaryLengths:
    @pytest.mark.parametrize("method", METHODS)
    def test_minimum_legal_query_length(self, method):
        # Len(Q) = 2*omega - 1 is the shortest exact-matching query.
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(500, seed=6))
        db.build()
        query = db.store.peek_subsequence(0, 100, 31).copy()
        gold = gold_topk(db, query, k=3, rho=1)
        result = db.search(query, k=3, rho=1, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("method", METHODS)
    def test_query_as_long_as_a_sequence(self, method):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(96, seed=7))
        db.insert(1, make_walk(400, seed=8))
        db.build()
        query = db.store.peek_subsequence(0, 0, 96).copy()
        result = db.search(query, k=1, rho=4, method=method)
        assert result.matches[0] == result.matches[0]
        assert result.matches[0].distance == pytest.approx(0.0, abs=1e-9)


class TestOtherNorms:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("p", [1.0, 3.0])
    def test_exactness_under_other_norms(self, method, p):
        db = SubsequenceDatabase(omega=16, features=4, p=p)
        db.insert(0, make_walk(500, seed=9))
        db.build()
        query = db.store.peek_subsequence(0, 77, 48).copy()
        gold = [
            round(m.distance, 6)
            for m in brute_force_topk(db.store, query, 4, rho=2, p=p)
        ]
        result = db.search(query, k=4, rho=2, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)


class TestBufferPressure:
    @pytest.mark.parametrize("method", ["hlmj", "ru", "ru-cost"])
    def test_one_page_buffer_still_exact(self, method):
        db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.05)
        db.insert(0, make_walk(1200, seed=10))
        db.build()
        db.buffer.resize(1)  # pathological thrashing
        query = db.store.peek_subsequence(0, 321, 48).copy()
        gold = gold_topk(db, query, k=4, rho=2)
        result = db.search(query, k=4, rho=2, method=method)
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)
        assert result.stats.page_accesses > 0


class TestTies:
    @pytest.mark.parametrize("method", METHODS)
    def test_many_exact_duplicates(self, method):
        # Identical motif planted many times: distances tie at zero and
        # k must still come back exactly, deterministically.
        motif = make_walk(64, seed=12)
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, np.tile(motif, 6))
        db.build()
        result = db.search(motif[:48], k=6, rho=2, method=method)
        assert len(result.matches) == 6
        zero_matches = [m for m in result.matches if m.distance < 1e-9]
        assert len(zero_matches) == 6
        # Deterministic: re-running returns the same starts.
        again = db.search(motif[:48], k=6, rho=2, method=method)
        assert [m.key() for m in again.matches] == [
            m.key() for m in result.matches
        ]
