"""Integration tests for the benchmark harness (repro.bench)."""

import pytest

from repro.bench import (
    EngineSpec,
    Harness,
    format_series_table,
    format_speedups,
    modeled_wall_time_s,
)
from repro.core.metrics import QueryStats


@pytest.fixture(scope="module")
def harness():
    return Harness("WALK", size=9000, omega=16, features=4, seed=1)


class TestEngineSpec:
    def test_labels_follow_paper_legends(self):
        assert EngineSpec("seqscan").label == "SeqScan"
        assert EngineSpec("hlmj", deferred=True).label == "HLMJ(D)"
        assert EngineSpec("ru-cost", deferred=True).label == "RU-COST(D)"
        assert EngineSpec("ru", label_override="X").label == "X"


class TestModeledTime:
    def test_io_dominates_for_random_reads(self):
        stats = QueryStats(random_page_accesses=100)
        assert modeled_wall_time_s(stats, 128, 6) == pytest.approx(0.5)

    def test_sequential_is_fifty_times_cheaper(self):
        random = QueryStats(random_page_accesses=50)
        sequential = QueryStats(sequential_page_accesses=50)
        assert modeled_wall_time_s(
            random, 128, 6
        ) == pytest.approx(
            50 * modeled_wall_time_s(sequential, 128, 6)
        )

    def test_cpu_terms_counted(self):
        stats = QueryStats(dtw_computations=10, lb_keogh_computations=10)
        assert modeled_wall_time_s(stats, 128, 6) > 0


class TestHarnessRuns:
    def test_run_produces_metrics(self, harness):
        queries = harness.regular_queries(length=48, count=2)
        result = harness.run(EngineSpec("ru-cost", deferred=True), queries, k=3)
        assert result.queries == 2
        assert result.candidates > 0
        assert result.modeled_time_s > 0
        assert result.metric("candidates") == result.candidates
        assert result.metric("heap_pops") > 0

    def test_run_lineup_keys_by_label(self, harness):
        queries = harness.regular_queries(length=48, count=1)
        specs = (EngineSpec("seqscan"), EngineSpec("ru", deferred=True))
        results = harness.run_lineup(specs, queries, k=2)
        assert set(results) == {"SeqScan", "RU(D)"}

    def test_buffer_fraction_override(self, harness):
        queries = harness.regular_queries(length=48, count=1)
        harness.run(
            EngineSpec("ru"), queries, k=2, buffer_fraction=0.02
        )
        assert harness.db.buffer_fraction == 0.02
        harness.run(
            EngineSpec("ru"), queries, k=2, buffer_fraction=0.05
        )

    def test_workload_helpers(self, harness):
        assert len(harness.regular_queries(48, 2)) == 2
        assert len(harness.dense_queries(48, 2)) == 2


class TestReporting:
    def test_series_table_contains_all_cells(self, harness):
        queries = harness.regular_queries(length=48, count=1)
        specs = (EngineSpec("seqscan"), EngineSpec("ru-cost", deferred=True))
        rows = {k: harness.run_lineup(specs, queries, k=k) for k in (1, 3)}
        table = format_series_table("t", "k", rows, "candidates")
        assert "SeqScan" in table and "RU-COST(D)" in table
        assert table.count("\n") >= 5

    def test_speedups_quote_reference(self, harness):
        queries = harness.regular_queries(length=48, count=1)
        specs = (EngineSpec("seqscan"), EngineSpec("ru-cost", deferred=True))
        rows = {3: harness.run_lineup(specs, queries, k=3)}
        line = format_speedups(
            rows, "candidates", "RU-COST(D)", ["SeqScan"]
        )
        assert "RU-COST(D) vs SeqScan" in line
