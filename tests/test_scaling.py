"""Tests for multi-scale (variable-length) matching."""

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.core.scaling import normalized_distance, resample, scale_lengths
from repro.exceptions import QueryError
from tests.conftest import make_walk


class TestResample:
    def test_endpoints_preserved(self):
        out = resample([1.0, 5.0, 2.0], 7)
        assert out[0] == 1.0
        assert out[-1] == 2.0
        assert out.size == 7

    def test_identity_length(self):
        values = [3.0, 1.0, 4.0]
        out = resample(values, 3)
        assert out.tolist() == values

    def test_downsampling(self):
        out = resample(np.linspace(0, 10, 11), 5)
        np.testing.assert_allclose(out, [0.0, 2.5, 5.0, 7.5, 10.0])

    def test_bad_inputs(self):
        with pytest.raises(QueryError):
            resample([1.0], 5)
        with pytest.raises(QueryError):
            resample([1.0, 2.0], 1)


class TestScaleLengths:
    def test_rounding_and_filtering(self):
        # base 100, omega 16 -> minimum legal length 31.
        assert scale_lengths(100, [0.25, 0.5, 1.0], omega=16) == [
            50,
            100,
        ] or scale_lengths(100, [0.25, 0.5, 1.0], omega=16) == [25, 50, 100]

    def test_too_small_scales_dropped(self):
        assert scale_lengths(100, [0.1, 1.0], omega=16) == [100]

    def test_all_invalid_rejected(self):
        with pytest.raises(QueryError):
            scale_lengths(40, [0.1], omega=32)

    def test_negative_factor_rejected(self):
        with pytest.raises(QueryError):
            scale_lengths(100, [-1.0], omega=16)

    def test_duplicates_collapsed(self):
        assert scale_lengths(100, [1.0, 1.001], omega=16) == [100]


class TestNormalizedDistance:
    def test_scale_free_for_euclidean(self):
        # Same per-step error at two lengths -> equal normalised value.
        assert normalized_distance(np.sqrt(100 * 0.25), 100) == (
            pytest.approx(normalized_distance(np.sqrt(400 * 0.25), 400))
        )

    def test_invalid_length(self):
        with pytest.raises(QueryError):
            normalized_distance(1.0, 0)


class TestSearchScaled:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(5)
        base = rng.standard_normal(64).cumsum()
        # Plant the motif at 1x and a time-stretched 2x copy.
        from repro.core.scaling import resample as rs

        stretched = rs(base, 128)
        data = np.concatenate(
            [
                make_walk(500, seed=1),
                base,
                make_walk(400, seed=2),
                stretched,
                make_walk(300, seed=3),
            ]
        )
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, data)
        db.build()
        return db, base

    def test_finds_both_scales(self, db):
        database, base = db
        result = database.search_scaled(
            base, k=4, scales=(1.0, 2.0), method="ru-cost"
        )
        lengths = {match.length for match in result.matches}
        assert 64 in lengths
        assert 128 in lengths
        # Both planted copies are found at (near-)zero distance.
        nearly_zero = [m for m in result.matches if m.distance < 0.05]
        assert len(nearly_zero) >= 2

    def test_matches_sorted_by_normalized_distance(self, db):
        database, base = db
        result = database.search_scaled(base, k=6, scales=(1.0, 2.0))
        distances = [m.distance for m in result.matches]
        assert distances == sorted(distances)

    def test_stats_accumulate_across_scales(self, db):
        database, base = db
        single = database.search(base, k=3, method="ru-cost").stats
        multi = database.search_scaled(base, k=3, scales=(1.0, 2.0)).stats
        assert multi.candidates > single.candidates

    def test_invalid_scales_raise(self, db):
        database, base = db
        with pytest.raises(QueryError):
            database.search_scaled(base, scales=(0.01,))
