"""Unit tests for the R*-tree (repro.index.rstar)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, IndexError_
from repro.index.rstar import LeafRecord, RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager


def make_tree(dimensions=2, max_entries=8):
    pager = Pager(page_size=4096)
    buffer = BufferPool(pager, capacity_pages=16)
    tree = RStarTree(
        pager, buffer, dimensions=dimensions, max_entries=max_entries
    )
    return pager, buffer, tree


def insert_grid(tree, count, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.random((count, tree.dimensions))
    for index, point in enumerate(points):
        tree.insert(point, LeafRecord(sid=0, window_index=index))
    return points


class TestConstruction:
    def test_empty_tree(self):
        _pager, _buffer, tree = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.node_count() == 1

    def test_fanout_from_page_geometry(self):
        pager = Pager(page_size=4096)
        buffer = BufferPool(pager, 4)
        tree = RStarTree(pager, buffer, dimensions=4)
        assert tree.max_entries == 53
        assert tree.blocking_factor == 53

    def test_rejects_bad_config(self):
        pager = Pager()
        buffer = BufferPool(pager, 4)
        with pytest.raises(ConfigurationError):
            RStarTree(pager, buffer, dimensions=0)
        with pytest.raises(ConfigurationError):
            RStarTree(pager, buffer, dimensions=2, max_entries=3)


class TestInsertion:
    def test_all_records_present_after_inserts(self):
        _pager, _buffer, tree = make_tree()
        insert_grid(tree, 200)
        records = {entry.record.window_index for entry in tree.iter_leaf_entries()}
        assert records == set(range(200))
        assert len(tree) == 200

    def test_invariants_hold_after_growth(self):
        _pager, _buffer, tree = make_tree()
        insert_grid(tree, 300)
        tree.check_invariants()
        assert tree.height >= 3

    def test_duplicate_points_allowed(self):
        _pager, _buffer, tree = make_tree()
        point = np.array([0.5, 0.5])
        for index in range(50):
            tree.insert(point, LeafRecord(sid=1, window_index=index))
        tree.check_invariants()
        assert len(tree) == 50

    def test_sequential_correlated_inserts(self):
        # Time-series PAA points arrive in correlated order; the R*
        # heuristics must still produce a valid tree.
        _pager, _buffer, tree = make_tree()
        for index in range(150):
            point = np.array([index * 0.01, np.sin(index * 0.1)])
            tree.insert(point, LeafRecord(sid=0, window_index=index))
        tree.check_invariants()

    def test_dimension_mismatch_rejected(self):
        _pager, _buffer, tree = make_tree(dimensions=3)
        with pytest.raises(IndexError_):
            tree.insert(np.zeros(2), LeafRecord(0, 0))

    def test_node_count_grows_with_splits(self):
        _pager, _buffer, tree = make_tree(max_entries=4)
        insert_grid(tree, 60)
        assert tree.node_count() > 10
        tree.check_invariants()


class TestBulkLoad:
    def test_str_pack_preserves_records_and_invariants(self):
        _pager, _buffer, tree = make_tree(max_entries=8)
        rng = np.random.default_rng(1)
        points = rng.random((500, 2))
        records = [LeafRecord(0, i) for i in range(500)]
        tree.bulk_load(points, records)
        tree.check_invariants()
        assert len(tree) == 500
        got = {e.record.window_index for e in tree.iter_leaf_entries()}
        assert got == set(range(500))

    def test_bulk_load_single_leaf(self):
        _pager, _buffer, tree = make_tree(max_entries=8)
        tree.bulk_load(np.zeros((3, 2)), [LeafRecord(0, i) for i in range(3)])
        assert tree.height == 1
        tree.check_invariants()

    def test_bulk_load_empty_is_noop(self):
        _pager, _buffer, tree = make_tree()
        tree.bulk_load(np.zeros((0, 2)), [])
        assert len(tree) == 0

    def test_bulk_load_requires_empty_tree(self):
        _pager, _buffer, tree = make_tree()
        tree.insert(np.zeros(2), LeafRecord(0, 0))
        with pytest.raises(IndexError_):
            tree.bulk_load(np.zeros((2, 2)), [LeafRecord(0, 1)] * 2)

    def test_bulk_load_validates_shapes(self):
        _pager, _buffer, tree = make_tree(dimensions=3)
        with pytest.raises(IndexError_):
            tree.bulk_load(np.zeros((4, 2)), [LeafRecord(0, 0)] * 4)
        with pytest.raises(IndexError_):
            tree.bulk_load(np.zeros((4, 3)), [LeafRecord(0, 0)] * 3)

    def test_str_leaves_are_spatially_tight(self):
        # STR packing should produce far less leaf overlap than a
        # random-order insertion pile-up: compare total leaf MBR area.
        rng = np.random.default_rng(2)
        points = rng.random((400, 2))
        records = [LeafRecord(0, i) for i in range(400)]

        _p1, _b1, packed = make_tree(max_entries=8)
        packed.bulk_load(points, records)

        def leaf_area_sum(tree):
            total = 0.0
            stack = [tree.root_page]
            while stack:
                node = tree._pager.peek(stack.pop())
                if node.is_leaf:
                    low, high = node.mbr()
                    total += float(np.prod(high - low))
                else:
                    stack.extend(e.child_page for e in node.entries)
            return total

        assert leaf_area_sum(packed) < 2.0  # unit square, tight tiles

    def test_multi_level_bulk_load(self):
        _pager, _buffer, tree = make_tree(max_entries=4)
        rng = np.random.default_rng(3)
        count = 300
        tree.bulk_load(
            rng.random((count, 2)), [LeafRecord(0, i) for i in range(count)]
        )
        assert tree.height >= 3
        tree.check_invariants()


class TestReads:
    def test_read_node_counts_io(self):
        pager, buffer, tree = make_tree()
        insert_grid(tree, 50)
        buffer.clear()
        pager.stats.reset()
        tree.read_node(tree.root_page)
        assert pager.stats.physical_reads == 1
        tree.read_node(tree.root_page)  # buffered now
        assert pager.stats.physical_reads == 1

    def test_mbrs_contain_children_everywhere(self):
        _pager, _buffer, tree = make_tree(max_entries=5)
        points = insert_grid(tree, 120, seed=3)
        tree.check_invariants()  # includes containment checks
        # Every point is inside the root MBR.
        root = tree.read_node(tree.root_page)
        low, high = root.mbr()
        assert np.all(points >= low - 1e-12)
        assert np.all(points <= high + 1e-12)
