"""Unit tests for the physical page store (repro.storage.pager)."""

import pytest

from repro.exceptions import PageError
from repro.storage.page import PageKind
from repro.storage.pager import READAHEAD_WINDOW, Pager


@pytest.fixture()
def pager() -> Pager:
    return Pager(page_size=512)


class TestAllocation:
    def test_ids_are_dense_and_ordered(self, pager):
        ids = [pager.allocate(PageKind.DATA, i) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert pager.num_pages == 5

    def test_allocation_counts_as_write(self, pager):
        pager.allocate(PageKind.DATA)
        pager.allocate(PageKind.INDEX_LEAF)
        assert pager.stats.physical_writes == 2

    def test_kind_histogram(self, pager):
        pager.allocate(PageKind.DATA)
        pager.allocate(PageKind.DATA)
        pager.allocate(PageKind.INDEX_LEAF)
        assert pager.kind_histogram() == {
            PageKind.DATA: 2,
            PageKind.INDEX_LEAF: 1,
        }


class TestReadWrite:
    def test_read_returns_payload_and_counts(self, pager):
        page = pager.allocate(PageKind.DATA, "payload")
        assert pager.read(page) == "payload"
        assert pager.stats.physical_reads == 1

    def test_write_replaces_payload(self, pager):
        page = pager.allocate(PageKind.DATA, "old")
        pager.write(page, "new")
        assert pager.peek(page) == "new"

    def test_peek_does_not_count(self, pager):
        page = pager.allocate(PageKind.DATA, 1)
        pager.peek(page)
        assert pager.stats.physical_reads == 0

    def test_out_of_range_read_raises(self, pager):
        with pytest.raises(PageError):
            pager.read(0)
        pager.allocate(PageKind.DATA)
        with pytest.raises(PageError):
            pager.read(5)

    def test_kind_of(self, pager):
        page = pager.allocate(PageKind.INDEX_INTERNAL)
        assert pager.kind_of(page) == PageKind.INDEX_INTERNAL


class TestSequentialClassification:
    def test_adjacent_reads_are_sequential(self, pager):
        for _ in range(4):
            pager.allocate(PageKind.DATA)
        for page in range(4):
            pager.read(page)
        # First read seeks; the following three ride the sweep.
        assert pager.stats.sequential_reads == 3
        assert pager.stats.random_reads == 1

    def test_short_forward_gap_rides_the_sweep(self, pager):
        for _ in range(READAHEAD_WINDOW + 5):
            pager.allocate(PageKind.DATA)
        pager.read(0)
        pager.read(READAHEAD_WINDOW)  # still inside the elevator window
        assert pager.stats.sequential_reads == 1

    def test_long_gap_and_backward_reads_are_random(self, pager):
        for _ in range(READAHEAD_WINDOW + 10):
            pager.allocate(PageKind.DATA)
        pager.read(0)
        pager.read(READAHEAD_WINDOW + 5)  # beyond the window
        pager.read(2)  # backward
        assert pager.stats.random_reads == 3

    def test_reset_clears_counters_and_position(self, pager):
        pager.allocate(PageKind.DATA)
        pager.read(0)
        pager.stats.reset()
        assert pager.stats.physical_reads == 0
        pager.read(0)
        # After a reset page 0 must not look sequential.
        assert pager.stats.random_reads == 1
