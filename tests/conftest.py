"""Shared fixtures for the test suite.

The session-scoped databases are intentionally small (a few thousand
points) so the full suite runs in well under a minute while still
exercising multi-level R*-trees, buffer eviction, and deferred flushes.
"""

from __future__ import annotations

import numpy as np
import pytest

from typing import Optional

from repro import SubsequenceDatabase
from repro.core.reference import brute_force_topk
from repro.obs import Tracer
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore


def make_walk(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n).cumsum()


def query_from(db: SubsequenceDatabase, start, length, sid=0):
    """The paper-style query: a subsequence peeked from stored data."""
    return db.store.peek_subsequence(sid, start, length).copy()


def build_golden_db(
    tracer: Optional[Tracer] = None,
) -> SubsequenceDatabase:
    """A fresh database matching the golden capture run exactly.

    Deliberately *not* the shared ``walk_db`` fixture: golden counters
    must not depend on what other tests ran first, so callers get a
    database (and cache history) rebuilt from scratch.  The optional
    ``tracer`` lets the trace-conformance suite run the same golden
    workload with the observability plane on.
    """
    db = SubsequenceDatabase(
        omega=16, features=4, buffer_fraction=0.1, tracer=tracer
    )
    db.insert(0, make_walk(3000, seed=11))
    db.insert(1, make_walk(2200, seed=12))
    db.build()
    return db


def build_golden_psm_db(
    tracer: Optional[Tracer] = None,
) -> SubsequenceDatabase:
    """The golden PSM workload's database (see :func:`build_golden_db`)."""
    db = SubsequenceDatabase(
        omega=8, features=4, buffer_fraction=0.1, tracer=tracer
    )
    db.insert(0, make_walk(900, seed=21))
    db.insert(1, make_walk(700, seed=22))
    db.build(psm=True)
    return db


def build_property_db(
    rng: np.random.Generator,
    lengths=(300, 200),
    psm: bool = False,
) -> SubsequenceDatabase:
    """The small seeded database the hypothesis engine tests generate."""
    db = SubsequenceDatabase(omega=8, features=4, buffer_fraction=0.2)
    for sid, n in enumerate(lengths):
        db.insert(sid, rng.standard_normal(n).cumsum())
    db.build(psm=psm)
    return db


@pytest.fixture(scope="module")
def golden_db() -> SubsequenceDatabase:
    return build_golden_db()


@pytest.fixture(scope="module")
def golden_psm_db() -> SubsequenceDatabase:
    return build_golden_psm_db()


@pytest.fixture(scope="session")
def walk_db() -> SubsequenceDatabase:
    """Two random-walk sequences, omega=16, f=4, multi-level tree."""
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
    db.insert(0, make_walk(3000, seed=11))
    db.insert(1, make_walk(2200, seed=12))
    db.build()
    return db


@pytest.fixture(scope="session")
def psm_db() -> SubsequenceDatabase:
    """A smaller database that also carries PSM's sliding index."""
    db = SubsequenceDatabase(omega=8, features=4, buffer_fraction=0.1)
    db.insert(0, make_walk(900, seed=21))
    db.insert(1, make_walk(700, seed=22))
    db.build(psm=True)
    return db


@pytest.fixture()
def fresh_store():
    """An empty pager/buffer/store triple for storage-layer tests."""
    pager = Pager(page_size=512)
    buffer = BufferPool(pager, capacity_pages=4)
    return pager, buffer, SequenceStore(pager, buffer)


def gold_topk(db: SubsequenceDatabase, query, k: int, rho: int):
    """Brute-force distances, rounded for robust comparison."""
    return [
        round(match.distance, 6)
        for match in brute_force_topk(db.store, query, k, rho)
    ]


def engine_distances(result) -> list:
    return [round(match.distance, 6) for match in result.matches]
