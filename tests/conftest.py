"""Shared fixtures for the test suite.

The session-scoped databases are intentionally small (a few thousand
points) so the full suite runs in well under a minute while still
exercising multi-level R*-trees, buffer eviction, and deferred flushes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.core.reference import brute_force_topk
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore


def make_walk(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n).cumsum()


@pytest.fixture(scope="session")
def walk_db() -> SubsequenceDatabase:
    """Two random-walk sequences, omega=16, f=4, multi-level tree."""
    db = SubsequenceDatabase(omega=16, features=4, buffer_fraction=0.1)
    db.insert(0, make_walk(3000, seed=11))
    db.insert(1, make_walk(2200, seed=12))
    db.build()
    return db


@pytest.fixture(scope="session")
def psm_db() -> SubsequenceDatabase:
    """A smaller database that also carries PSM's sliding index."""
    db = SubsequenceDatabase(omega=8, features=4, buffer_fraction=0.1)
    db.insert(0, make_walk(900, seed=21))
    db.insert(1, make_walk(700, seed=22))
    db.build(psm=True)
    return db


@pytest.fixture()
def fresh_store():
    """An empty pager/buffer/store triple for storage-layer tests."""
    pager = Pager(page_size=512)
    buffer = BufferPool(pager, capacity_pages=4)
    return pager, buffer, SequenceStore(pager, buffer)


def gold_topk(db: SubsequenceDatabase, query, k: int, rho: int):
    """Brute-force distances, rounded for robust comparison."""
    return [
        round(match.distance, 6)
        for match in brute_force_topk(db.store, query, k, rho)
    ]


def engine_distances(result) -> list:
    return [round(match.distance, 6) for match in result.matches]
