"""Unit tests for the paged sequence store (repro.storage.sequences)."""

import numpy as np
import pytest

from repro.exceptions import PageError, SequenceNotFoundError


class TestAddSequence:
    def test_meta_and_sizes(self, fresh_store):
        _pager, _buffer, store = fresh_store
        meta = store.add_sequence(7, np.arange(130.0))
        # 512-byte pages hold 60 values -> 130 values span 3 pages.
        assert meta.num_pages == 3
        assert meta.length == 130
        assert store.length(7) == 130
        assert store.total_values == 130
        assert store.total_data_pages == 3

    def test_duplicate_sid_rejected(self, fresh_store):
        _pager, _buffer, store = fresh_store
        store.add_sequence(1, [1.0, 2.0])
        with pytest.raises(PageError):
            store.add_sequence(1, [3.0])

    def test_empty_sequence_rejected(self, fresh_store):
        _pager, _buffer, store = fresh_store
        with pytest.raises(PageError):
            store.add_sequence(1, [])

    def test_two_dimensional_rejected(self, fresh_store):
        _pager, _buffer, store = fresh_store
        with pytest.raises(PageError):
            store.add_sequence(1, np.zeros((2, 3)))

    def test_sequences_start_on_fresh_pages(self, fresh_store):
        _pager, _buffer, store = fresh_store
        first = store.add_sequence(1, np.arange(70.0))
        second = store.add_sequence(2, np.arange(5.0))
        assert second.first_page == first.first_page + first.num_pages


class TestRetrieval:
    def test_values_round_trip(self, fresh_store):
        _pager, _buffer, store = fresh_store
        store.add_sequence(1, np.arange(130.0))
        got = store.get_subsequence(1, 58, 10)
        assert got.tolist() == list(range(58, 68))

    def test_unknown_sid(self, fresh_store):
        _pager, _buffer, store = fresh_store
        with pytest.raises(SequenceNotFoundError):
            store.get_subsequence(9, 0, 1)

    def test_out_of_bounds(self, fresh_store):
        _pager, _buffer, store = fresh_store
        store.add_sequence(1, np.arange(10.0))
        with pytest.raises(PageError):
            store.get_subsequence(1, 5, 6)
        with pytest.raises(PageError):
            store.get_subsequence(1, -1, 2)
        with pytest.raises(PageError):
            store.get_subsequence(1, 0, 0)

    def test_io_counted_per_covering_page(self, fresh_store):
        pager, buffer, store = fresh_store
        store.add_sequence(1, np.arange(130.0))
        buffer.clear()
        pager.stats.reset()
        store.get_subsequence(1, 55, 10)  # straddles pages 0 and 1
        assert pager.stats.physical_reads == 2

    def test_peek_counts_nothing(self, fresh_store):
        pager, _buffer, store = fresh_store
        store.add_sequence(1, np.arange(130.0))
        pager.stats.reset()
        store.peek_subsequence(1, 0, 130)
        store.peek_full_sequence(1)
        assert pager.stats.physical_reads == 0

    def test_read_full_sequence_touches_every_page(self, fresh_store):
        pager, buffer, store = fresh_store
        store.add_sequence(1, np.arange(130.0))
        buffer.clear()
        pager.stats.reset()
        values = store.read_full_sequence(1)
        assert values.size == 130
        assert pager.stats.physical_reads == 3
        assert pager.stats.sequential_reads == 2

    def test_returned_views_are_read_only(self, fresh_store):
        _pager, _buffer, store = fresh_store
        store.add_sequence(1, np.arange(10.0))
        view = store.get_subsequence(1, 0, 5)
        with pytest.raises(ValueError):
            view[0] = 99.0


class TestPagesForRange:
    def test_exact_page_ids(self, fresh_store):
        _pager, _buffer, store = fresh_store
        meta = store.add_sequence(1, np.arange(130.0))
        assert store.pages_for_range(1, 0, 60) == [meta.first_page]
        assert store.pages_for_range(1, 59, 2) == [
            meta.first_page,
            meta.first_page + 1,
        ]
        assert store.pages_for_range(1, 120, 10) == [meta.first_page + 2]

    def test_no_io(self, fresh_store):
        pager, _buffer, store = fresh_store
        store.add_sequence(1, np.arange(130.0))
        pager.stats.reset()
        store.pages_for_range(1, 0, 130)
        assert pager.stats.physical_reads == 0

    def test_iter_sequences(self, fresh_store):
        _pager, _buffer, store = fresh_store
        store.add_sequence(1, [1.0])
        store.add_sequence(5, [2.0, 3.0])
        assert [(sid, v.size) for sid, v in store.iter_sequences()] == [
            (1, 1),
            (5, 2),
        ]
        assert store.sequence_ids() == [1, 5]
        assert store.num_sequences == 2
