"""CFG construction and dataflow-solver properties.

Two layers of coverage for :mod:`repro.analysis.cfg` and
:mod:`repro.analysis.dataflow`:

* Hypothesis properties over randomly generated function bodies —
  every statement lands in exactly one block, the edge lists are
  mutually consistent, and the worklist solver reaches a genuine
  fixpoint that is independent of the seed order (Kildall).
* Deterministic edge-shape tests for the cleanup semantics the
  concurrency rules lean on: ``try/finally`` routing of returns and
  exceptions, ``except`` propagation, ``with`` normal/exceptional
  exits and the ``__enter__``-failure bypass, and loop back edges.

Plus one budget test: linting the entire ``src/`` tree (which builds a
CFG and runs all three flow rules for every function) must finish in
well under the ten-second ceiling promised by the docs.
"""

from __future__ import annotations

import ast
import pathlib
import time
from typing import Dict, List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_paths
from repro.analysis.cfg import (
    CFG,
    EXCEPTION,
    FALSE,
    LOOP,
    NORMAL,
    TRUE,
    BasicBlock,
    build_cfg,
    evaluated_nodes,
)
from repro.analysis.dataflow import (
    TOP,
    DataflowProblem,
    DataflowResult,
    Edge,
    is_top,
    solve,
)

CFG_SETTINGS = settings(max_examples=100, deadline=None)

EDGE_KINDS = {NORMAL, TRUE, FALSE, LOOP, EXCEPTION}


# ---------------------------------------------------------------------------
# Source generator
# ---------------------------------------------------------------------------
#
# Functions are generated as *source text* (not raw ASTs) so every
# example is a genuinely compilable Python function — ``ast.parse``
# acts as the oracle for well-formedness.  ``break``/``continue`` are
# only offered inside loop bodies.

_SIMPLE = ["x = work()", "use(x)", "x += 1", "pass", "return x", "raise Boom()"]
_LOOP_ONLY = ["break", "continue"]


@st.composite
def _statement(draw: st.DrawFn, depth: int, in_loop: bool) -> List[str]:
    """One statement, rendered as lines indented relative to its suite."""
    choices = _SIMPLE + (_LOOP_ONLY if in_loop else [])
    if depth <= 0 or draw(st.integers(min_value=0, max_value=3)) > 0:
        return [draw(st.sampled_from(choices))]
    kind = draw(
        st.sampled_from(["if", "ifelse", "while", "for", "with", "tryfin", "tryexc"])
    )
    body = draw(_suite(depth - 1, in_loop or kind in ("while", "for")))
    if kind == "if":
        return ["if cond():"] + body
    if kind == "ifelse":
        orelse = draw(_suite(depth - 1, in_loop))
        return ["if cond():"] + body + ["else:"] + orelse
    if kind == "while":
        return ["while cond():"] + body
    if kind == "for":
        return ["for item in items():"] + body
    if kind == "with":
        return ["with ctx() as handle:"] + body
    if kind == "tryfin":
        fin = draw(_suite(depth - 1, in_loop))
        return ["try:"] + body + ["finally:"] + fin
    handler = draw(_suite(depth - 1, in_loop))
    return ["try:"] + body + ["except Boom:"] + handler


@st.composite
def _suite(draw: st.DrawFn, depth: int, in_loop: bool) -> List[str]:
    count = draw(st.integers(min_value=1, max_value=3))
    lines: List[str] = []
    for _ in range(count):
        lines.extend("    " + line for line in draw(_statement(depth, in_loop)))
    return lines


@st.composite
def function_sources(draw: st.DrawFn) -> str:
    body = draw(_suite(depth=2, in_loop=False))
    return "def generated(x):\n" + "\n".join(body) + "\n"


def _parse_function(source: str) -> ast.FunctionDef:
    module = ast.parse(source)
    func = module.body[0]
    assert isinstance(func, ast.FunctionDef)
    return func


def _all_statements(func: ast.FunctionDef) -> List[ast.stmt]:
    """Every statement of the function body, at any nesting depth."""
    return [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.stmt) and node is not func
    ]


# ---------------------------------------------------------------------------
# Toy dataflow problems (monotone gen/kill, one edge-sensitive)
# ---------------------------------------------------------------------------


def _stored_names(block: BasicBlock) -> frozenset:
    names = set()
    for stmt in block.statements:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
    return frozenset(names)


def _loaded_names(block: BasicBlock) -> frozenset:
    names = set()
    for stmt in block.statements:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
    return frozenset(names)


class _MayAssigned(DataflowProblem):
    """May-analysis: names assigned on *some* path to the block."""

    may = True

    def gen(self, block: BasicBlock) -> frozenset:
        return _stored_names(block)


class _MustAssigned(DataflowProblem):
    """Must-analysis: assigned on every path, killed by any read.

    The gen/kill choice is arbitrary — the point is a monotone must
    problem whose facts actually vary across generated programs.
    """

    may = False

    def gen(self, block: BasicBlock) -> frozenset:
        return _stored_names(block)

    def kill(self, block: BasicBlock) -> frozenset:
        return _loaded_names(block) - _stored_names(block)


class _EdgeSensitiveMust(_MustAssigned):
    """Like the real lock rule: a gen never happened along the
    exception edge leaving the block that generated it."""

    def edge_value(self, block: BasicBlock, edge: Edge, value: frozenset) -> frozenset:
        if edge.kind == EXCEPTION:
            return value - self.gen(block)
        return value


_PROBLEMS = [_MayAssigned, _MustAssigned, _EdgeSensitiveMust]


def _assert_is_fixpoint(
    cfg: CFG, problem: DataflowProblem, result: DataflowResult
) -> None:
    """Re-apply the dataflow equations once; nothing may change."""
    boundary = cfg.entry
    for block in cfg.blocks:
        before = result.before[block.block_id]
        after = result.after[block.block_id]
        # after = transfer(before) (TOP stays TOP: unreachable).
        if is_top(before):
            assert is_top(after)
        else:
            assert after == problem.transfer(block, before)
        # before = meet over incoming edge values.
        if block.block_id == boundary:
            assert before == frozenset(problem.boundary(cfg))
            continue
        met = TOP
        for edge in block.preds:
            pred_after = result.after[edge.src]
            if is_top(pred_after):
                continue
            contributed = problem.edge_value(cfg.blocks[edge.src], edge, pred_after)
            if is_top(met):
                met = contributed
            elif problem.may:
                met = met | contributed
            else:
                met = met & contributed
        if is_top(met) and problem.may:
            met = frozenset()
        if is_top(met):
            assert is_top(before)
        else:
            assert before == met


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


class TestCFGProperties:
    @CFG_SETTINGS
    @given(source=function_sources())
    def test_every_statement_in_exactly_one_block(self, source: str) -> None:
        func = _parse_function(source)
        cfg = build_cfg(func)
        for stmt in _all_statements(func):
            holders = sum(
                1
                for block in cfg.blocks
                if any(existing is stmt for existing in block.statements)
            )
            if isinstance(stmt, ast.Try):
                # A try statement evaluates nothing itself; only its
                # suites (and the synthetic finally/handler entries)
                # occupy blocks.
                assert holders == 0
            else:
                assert holders == 1
                block = cfg.statement_block(stmt)
                assert block is not None
                assert any(existing is stmt for existing in block.statements)

    @CFG_SETTINGS
    @given(source=function_sources())
    def test_edges_are_consistent(self, source: str) -> None:
        func = _parse_function(source)
        cfg = build_cfg(func)
        ids = {block.block_id for block in cfg.blocks}
        assert cfg.entry in ids and cfg.exit in ids
        for block in cfg.blocks:
            assert cfg.block(block.block_id) is block
            for edge in block.succs:
                assert edge.src == block.block_id
                assert edge.dst in ids
                assert edge.kind in EDGE_KINDS
                assert edge in cfg.block(edge.dst).preds
            for edge in block.preds:
                assert edge.dst == block.block_id
                assert edge.src in ids
                assert edge in cfg.block(edge.src).succs
        # The exit block never flows anywhere.
        assert cfg.block(cfg.exit).succs == []
        # Entry dominates every reachable block.
        dom = cfg.dominators()
        for block_id in cfg.reachable():
            assert cfg.entry in dom[block_id]

    @CFG_SETTINGS
    @given(source=function_sources(), data=st.data())
    def test_solver_fixpoint_and_order_independence(
        self, source: str, data: st.DataObject
    ) -> None:
        func = _parse_function(source)
        cfg = build_cfg(func)
        block_ids = [block.block_id for block in cfg.blocks]
        for problem_class in _PROBLEMS:
            problem = problem_class()
            reference = solve(cfg, problem)
            _assert_is_fixpoint(cfg, problem, reference)
            shuffled = data.draw(
                st.permutations(block_ids), label=f"order:{problem_class.__name__}"
            )
            assert solve(cfg, problem, order=shuffled) == reference


# ---------------------------------------------------------------------------
# Deterministic edge-shape tests
# ---------------------------------------------------------------------------


def _cfg_of(body: str) -> CFG:
    return build_cfg(_parse_function("def f(x):\n" + body))


def _stmt_block(cfg: CFG, needle: str) -> BasicBlock:
    """The block whose (unique) *evaluated* source contains ``needle``.

    Matching the evaluated nodes rather than the whole statement keeps
    compound headers from also matching on their nested suites.
    """
    matches = [
        block
        for block in cfg.blocks
        if block.statements
        and needle
        in " ".join(
            ast.unparse(node) for node in evaluated_nodes(block.statements[0])
        )
    ]
    assert len(matches) == 1, f"{needle!r} matched {len(matches)} blocks"
    return matches[0]


def _labeled(cfg: CFG, label: str) -> List[BasicBlock]:
    return [block for block in cfg.blocks if block.label == label]


class TestTryFinallyEdges:
    def test_return_routes_through_finally(self) -> None:
        cfg = _cfg_of(
            "    try:\n"
            "        return x\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        (fin_entry,) = _labeled(cfg, "finally-entry")
        ret = _stmt_block(cfg, "return x")
        # The return transfers into the finally subgraph, never
        # straight to the function exit.
        assert [e.dst for e in ret.succs if e.kind == NORMAL] == [
            fin_entry.block_id
        ]
        assert cfg.exit not in [e.dst for e in ret.succs]
        # ...and the finally body re-dispatches the pending return.
        cleanup = _stmt_block(cfg, "cleanup()")
        assert cfg.exit in [e.dst for e in cleanup.succs if e.kind == NORMAL]

    def test_exception_routes_through_finally(self) -> None:
        cfg = _cfg_of(
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        (fin_entry,) = _labeled(cfg, "finally-entry")
        work = _stmt_block(cfg, "work()")
        exc_dsts = [e.dst for e in work.succs if e.kind == EXCEPTION]
        assert exc_dsts == [fin_entry.block_id]
        # The finally body then re-raises toward the function exit.
        cleanup = _stmt_block(cfg, "cleanup()")
        assert cfg.exit in [e.dst for e in cleanup.succs if e.kind == EXCEPTION]

    def test_normal_completion_also_runs_finally(self) -> None:
        cfg = _cfg_of(
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        cleanup()\n"
            "    after()\n"
        )
        work = _stmt_block(cfg, "work()")
        cleanup = _stmt_block(cfg, "cleanup()")
        after = _stmt_block(cfg, "after()")
        (fin_entry,) = _labeled(cfg, "finally-entry")
        assert fin_entry.block_id in [
            e.dst for e in work.succs if e.kind == NORMAL
        ]
        assert after.block_id in [
            e.dst for e in cleanup.succs if e.kind == NORMAL
        ]

    def test_except_handles_and_propagates(self) -> None:
        cfg = _cfg_of(
            "    try:\n"
            "        work()\n"
            "    except Boom:\n"
            "        recover()\n"
        )
        (handler_entry,) = _labeled(cfg, "except-entry")
        work = _stmt_block(cfg, "work()")
        exc_dsts = {e.dst for e in work.succs if e.kind == EXCEPTION}
        # Both the handler and the outward propagation path exist:
        # the graph cannot prove the handler matches the raised type.
        assert handler_entry.block_id in exc_dsts
        assert cfg.exit in exc_dsts

    def test_nested_finally_chains_compose(self) -> None:
        cfg = _cfg_of(
            "    try:\n"
            "        try:\n"
            "            return x\n"
            "        finally:\n"
            "            inner()\n"
            "    finally:\n"
            "        outer()\n"
        )
        inner = _stmt_block(cfg, "inner()")
        outer = _stmt_block(cfg, "outer()")
        ret = _stmt_block(cfg, "return x")
        inner_entry = next(
            b
            for b in _labeled(cfg, "finally-entry")
            if any(e.src == ret.block_id for e in b.preds)
        )
        assert inner_entry.block_id in [e.dst for e in ret.succs]
        # The inner finally forwards the pending return to the outer
        # finally, which forwards it to the exit.
        outer_entry = next(
            b
            for b in _labeled(cfg, "finally-entry")
            if b.block_id != inner_entry.block_id
        )
        assert outer_entry.block_id in [e.dst for e in inner.succs]
        assert cfg.exit in [e.dst for e in outer.succs]


class TestWithEdges:
    def test_with_exit_blocks_carry_origin(self) -> None:
        source = "    with ctx() as handle:\n        work()\n"
        func = _parse_function("def f(x):\n" + source)
        cfg = build_cfg(func)
        with_stmt = func.body[0]
        (normal_exit,) = _labeled(cfg, "with-exit")
        (exc_exit,) = _labeled(cfg, "with-except")
        assert normal_exit.origin is with_stmt
        assert exc_exit.origin is with_stmt

    def test_body_exception_reaches_with_except(self) -> None:
        cfg = _cfg_of("    with ctx() as handle:\n        work()\n")
        (exc_exit,) = _labeled(cfg, "with-except")
        work = _stmt_block(cfg, "work()")
        assert exc_exit.block_id in [
            e.dst for e in work.succs if e.kind == EXCEPTION
        ]

    def test_return_routes_through_with_exit(self) -> None:
        cfg = _cfg_of("    with ctx() as handle:\n        return x\n")
        (normal_exit,) = _labeled(cfg, "with-exit")
        ret = _stmt_block(cfg, "return x")
        # The pending return travels the normal edge into the cleanup
        # block (the exception edge goes to with-except instead).
        assert [e.dst for e in ret.succs if e.kind == NORMAL] == [
            normal_exit.block_id
        ]
        assert cfg.exit in [e.dst for e in normal_exit.succs]

    def test_enter_failure_bypasses_cleanup(self) -> None:
        # If ctx() / __enter__ raises, __exit__ never runs: the
        # header's exception edge must skip both cleanup blocks.
        cfg = _cfg_of("    with ctx() as handle:\n        work()\n")
        header = _stmt_block(cfg, "ctx()")
        (normal_exit,) = _labeled(cfg, "with-exit")
        (exc_exit,) = _labeled(cfg, "with-except")
        exc_dsts = [e.dst for e in header.succs if e.kind == EXCEPTION]
        assert exc_dsts == [cfg.exit]
        assert normal_exit.block_id not in exc_dsts
        assert exc_exit.block_id not in exc_dsts


class TestLoopEdges:
    def test_while_true_false_and_back_edge(self) -> None:
        cfg = _cfg_of(
            "    while cond():\n"
            "        work()\n"
            "    after()\n"
        )
        header = _stmt_block(cfg, "cond()")
        work = _stmt_block(cfg, "work()")
        after = _stmt_block(cfg, "after()")
        assert work.block_id in [e.dst for e in header.succs if e.kind == TRUE]
        assert header.block_id in [e.dst for e in work.succs if e.kind == LOOP]
        # FALSE leaves the loop (via the synthetic loop-after block).
        false_paths = [e.dst for e in header.succs if e.kind == FALSE]
        assert false_paths
        assert after.block_id in cfg.reachable()

    def test_break_skips_loop_body_tail(self) -> None:
        cfg = _cfg_of(
            "    for item in items():\n"
            "        break\n"
            "        dead()\n"
            "    after()\n"
        )
        dead = _stmt_block(cfg, "dead()")
        assert dead.block_id not in cfg.reachable()
        after = _stmt_block(cfg, "after()")
        assert after.block_id in cfg.reachable()

    def test_dead_code_after_return_is_unreachable(self) -> None:
        cfg = _cfg_of("    return x\n    dead()\n")
        dead = _stmt_block(cfg, "dead()")
        assert dead.block_id not in cfg.reachable()
        assert dead.preds == []


# ---------------------------------------------------------------------------
# Whole-tree analysis budget
# ---------------------------------------------------------------------------


class TestAnalysisBudget:
    def test_full_src_tree_under_ten_seconds(self) -> None:
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        assert src.is_dir()
        start = time.perf_counter()
        report = lint_paths([src])
        elapsed = time.perf_counter() - start
        assert report.files_checked > 0
        assert elapsed < 10.0, f"lint of src/ took {elapsed:.2f}s"
