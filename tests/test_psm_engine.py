"""Unit/integration tests specific to the PSM baseline (repro.engines.psm)."""

import numpy as np
import pytest

from repro.engines.base import EngineConfig
from repro.engines.psm import PsmEngine, build_sliding_index
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore
from tests.conftest import make_walk


def make_sliding(lengths, omega=8, features=4, seed=0, stride=1):
    pager = Pager(page_size=1024)
    buffer = BufferPool(pager, capacity_pages=16)
    store = SequenceStore(pager, buffer)
    for sid, length in enumerate(lengths):
        store.add_sequence(sid, make_walk(length, seed=seed + sid))
    return build_sliding_index(
        store, omega=omega, features=features, stride=stride
    )


class TestBuildSlidingIndex:
    def test_indexes_every_offset(self):
        index = make_sliding([100, 50])
        # (100 - 8 + 1) + (50 - 8 + 1) sliding windows.
        assert len(index.tree) == 93 + 43
        index.tree.check_invariants()

    def test_bloom_contains_every_offset_key(self):
        index = make_sliding([60])
        for offset in range(60 - 8 + 1):
            assert index.bloom.might_contain((0, offset))

    def test_stride_subsamples(self):
        dense = make_sliding([100])
        coarse = make_sliding([100], stride=4)
        assert len(coarse.tree) < len(dense.tree)

    def test_bad_stride(self):
        with pytest.raises(ConfigurationError):
            make_sliding([50], stride=0)

    def test_seg_len(self):
        assert make_sliding([50]).seg_len == 2


class TestPsmSearch:
    def test_bloom_calls_grow_with_join_width(self):
        index = make_sliding([600], omega=8)
        engine = PsmEngine(index)
        config = EngineConfig(k=3, rho=1)
        narrow = engine.search(
            index.store.peek_subsequence(0, 10, 16).copy(), config
        )
        wide = engine.search(
            index.store.peek_subsequence(0, 10, 40).copy(), config
        )
        # 2-way join vs 5-way join: signature probes must blow up.
        assert wide.stats.bloom_calls > 2 * narrow.stats.bloom_calls

    def test_budget_guard(self):
        index = make_sliding([600], omega=8)
        engine = PsmEngine(index, max_heap_pops=10)
        with pytest.raises(BudgetExceededError):
            engine.search(
                index.store.peek_subsequence(0, 0, 32).copy(),
                EngineConfig(k=3, rho=1),
            )

    def test_budget_graceful_stop(self):
        index = make_sliding([600], omega=8)
        engine = PsmEngine(
            index, max_heap_pops=10, budget_action="stop"
        )
        result = engine.search(
            index.store.peek_subsequence(0, 0, 32).copy(),
            EngineConfig(k=3, rho=1),
        )
        assert result.stats.budget_exhausted == 1
        assert result.stats.heap_pops <= 11

    def test_unexhausted_budget_stays_exact(self):
        index = make_sliding([300], omega=8)
        query = index.store.peek_subsequence(0, 40, 16).copy()
        config = EngineConfig(k=3, rho=1)
        exact = PsmEngine(index).search(query, config)
        budgeted = PsmEngine(
            index, max_heap_pops=10_000_000, budget_action="stop"
        ).search(query, config)
        assert budgeted.stats.budget_exhausted == 0
        assert [m.key() for m in budgeted.matches] == [
            m.key() for m in exact.matches
        ]

    def test_invalid_budget_action(self):
        index = make_sliding([100], omega=8)
        with pytest.raises(ConfigurationError):
            PsmEngine(index, budget_action="explode")

    def test_candidate_starts_at_arbitrary_offsets(self):
        # PSM over the sliding index must find candidates that are not
        # aligned to the disjoint-window grid.
        index = make_sliding([400], omega=8)
        engine = PsmEngine(index)
        query = index.store.peek_subsequence(0, 133, 16).copy()
        result = engine.search(query, EngineConfig(k=1, rho=1))
        assert result.matches[0].start == 133
        assert result.matches[0].distance == pytest.approx(0.0, abs=1e-9)
