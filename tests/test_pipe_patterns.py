"""Sanity checks on the PIPE pattern injections (Experiment 2's fuel).

The Figure 13 reproduction only works if the injected signatures are
(a) genuinely different from the carrier and (b) *visible to the
index*: wider than twice the benchmark warping width, so the envelope
cannot swallow them (see `repro/data/generators.py`).
"""

import numpy as np
import pytest

from repro.core.envelope import query_envelope
from repro.core.lower_bounds import lb_keogh_pow
from repro.data import load_dataset
from repro.data.generators import (
    _PIPE_PATTERN_LENGTH,
    _pipe_bend,
    _pipe_tee,
    _pipe_valve,
)


@pytest.fixture(scope="module")
def pipe():
    return load_dataset("PIPE", size=60_000, seed=3)


class TestInjections:
    def test_all_families_injected(self, pipe):
        assert set(pipe.markers) == {"BEND", "VALVE", "TEE"}
        for offsets in pipe.markers.values():
            assert len(offsets) >= 3
            assert offsets == sorted(offsets)

    def test_patterns_deviate_from_carrier(self, pipe):
        values = pipe.values
        carrier_std = np.std(values[:1000])
        for family, offsets in pipe.markers.items():
            for offset in offsets[:3]:
                segment = values[offset : offset + _PIPE_PATTERN_LENGTH]
                assert np.max(np.abs(segment)) > 2.0 * carrier_std, family

    def test_patterns_are_index_visible(self, pipe):
        """An injected pattern's envelope must discriminate against the
        plain carrier at the benchmark warping width."""
        rho = int(0.05 * _PIPE_PATTERN_LENGTH)
        for family, offsets in pipe.markers.items():
            offset = offsets[0]
            pattern = pipe.values[offset : offset + _PIPE_PATTERN_LENGTH]
            envelope = query_envelope(pattern, rho)
            # A carrier stretch far from any marker.
            all_offsets = sorted(
                off for offs in pipe.markers.values() for off in offs
            )
            gaps = [
                (b - a, a)
                for a, b in zip(all_offsets, all_offsets[1:])
                if b - a > 3 * _PIPE_PATTERN_LENGTH
            ]
            assert gaps, "need a clean carrier stretch"
            carrier_at = gaps[0][1] + int(1.5 * _PIPE_PATTERN_LENGTH)
            carrier = pipe.values[
                carrier_at : carrier_at + _PIPE_PATTERN_LENGTH
            ]
            assert lb_keogh_pow(envelope, carrier) > 1.0, (
                f"{family} signature is invisible to LB_Keogh"
            )


class TestPatternShapes:
    def test_valve_pulses_survive_envelope_widening(self):
        # Every elevated run must be wider than 2*rho at the benchmark
        # scale (rho = 5% of 192 ~ 9), or the envelope swallows it.
        rng = np.random.default_rng(0)
        pattern = _pipe_valve(rng)
        elevated = np.abs(pattern) > 1.5
        runs = []
        length = 0
        for flag in elevated:
            if flag:
                length += 1
            elif length:
                runs.append(length)
                length = 0
        if length:
            runs.append(length)
        assert runs and max(runs) >= 20

    def test_bend_is_smooth_and_wide(self):
        rng = np.random.default_rng(0)
        pattern = _pipe_bend(rng)
        assert pattern.max() > 3.0
        above_half = np.sum(pattern > pattern.max() / 2)
        assert above_half > 30  # a wide bump, not a spike

    def test_tee_has_level_shift(self):
        rng = np.random.default_rng(0)
        pattern = _pipe_tee(rng)
        first = pattern[: _PIPE_PATTERN_LENGTH // 4].mean()
        last = pattern[-_PIPE_PATTERN_LENGTH // 4 :].mean()
        assert abs(last - first) > 2.0
