"""SeqScan block-boundary and vectorization tests.

SeqScan evaluates LB_Keogh in vectorized blocks over a sliding-window
view; these tests pin the block plumbing (boundaries, short tails,
threshold re-checks) against a straightforward scalar scan.
"""

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.core.envelope import query_envelope
from repro.core.lower_bounds import lb_keogh_pow
from repro.engines import seqscan
from tests.conftest import engine_distances, gold_topk, make_walk


def build(n, seed=3):
    db = SubsequenceDatabase(omega=16, features=4)
    db.insert(0, make_walk(n, seed=seed))
    db.build()
    return db


class TestBlockBoundaries:
    @pytest.mark.parametrize(
        "offsets_around_block",
        [seqscan._BLOCK - 1, seqscan._BLOCK, seqscan._BLOCK + 1],
    )
    def test_exact_across_block_edges(self, offsets_around_block):
        # Data sized so the number of offsets straddles the block size.
        length = 48
        db = build(offsets_around_block + length - 1)
        query = db.store.peek_subsequence(0, 7, length).copy()
        gold = gold_topk(db, query, k=3, rho=2)
        result = db.search(query, k=3, rho=2, method="seqscan")
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)
        assert result.stats.candidates == offsets_around_block

    def test_tiny_data_single_offset(self):
        db = build(48)
        query = db.store.peek_subsequence(0, 0, 48).copy()
        result = db.search(query, k=1, rho=2, method="seqscan")
        assert result.stats.candidates == 1
        assert result.matches[0].distance == 0.0


class TestVectorizedKeoghAgreesWithScalar:
    def test_block_keogh_matches_reference(self):
        rng = np.random.default_rng(9)
        values = rng.standard_normal(400).cumsum()
        query = values[100:148].copy()
        envelope = query_envelope(query, 3)
        windows = np.lib.stride_tricks.sliding_window_view(values, 48)
        gaps = np.maximum(
            windows - envelope.upper, envelope.lower - windows
        )
        np.maximum(gaps, 0.0, out=gaps)
        vectorized = np.einsum("ij,ij->i", gaps, gaps)
        for offset in range(0, windows.shape[0], 37):
            scalar = lb_keogh_pow(envelope, windows[offset])
            assert vectorized[offset] == pytest.approx(scalar)


class TestOtherNormPath:
    def test_p_one_block_path(self):
        db = SubsequenceDatabase(omega=16, features=4, p=1.0)
        db.insert(0, make_walk(500, seed=4))
        db.build()
        query = db.store.peek_subsequence(0, 100, 48).copy()
        from repro.core.reference import brute_force_topk

        gold = [
            round(m.distance, 6)
            for m in brute_force_topk(db.store, query, 3, rho=2, p=1.0)
        ]
        result = db.search(query, k=3, rho=2, method="seqscan")
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)
