"""Tests for the optional extensions: window-group distance, streaming
iterator, and STR-vs-insert index builds."""

import numpy as np
import pytest

from repro import SubsequenceDatabase
from repro.core.reference import brute_force_topk
from repro.index.builder import build_index
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore
from tests.conftest import engine_distances, gold_topk, make_walk


class TestWindowGroupDistance:
    def test_exactness(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 444, 48).copy()
        gold = gold_topk(walk_db, query, k=5, rho=2)
        result = walk_db.search(query, k=5, rho=2, method="hlmj-wg")
        assert engine_distances(result) == pytest.approx(gold, abs=1e-6)

    def test_prunes_more_than_plain_hlmj(self, walk_db):
        query = walk_db.store.peek_subsequence(0, 444, 48).copy()
        plain = walk_db.search(query, k=5, rho=2, method="hlmj").stats
        tight = walk_db.search(query, k=5, rho=2, method="hlmj-wg").stats
        assert tight.candidates <= plain.candidates
        assert tight.window_group_evaluations > 0
        assert plain.window_group_evaluations == 0

    def test_engine_name(self, walk_db):
        from repro.engines.hlmj import HlmjEngine

        assert HlmjEngine(walk_db.index).name == "HLMJ"
        assert (
            HlmjEngine(walk_db.index, use_window_group=True).name
            == "HLMJ-WG"
        )

    def test_window_point_table_covers_all_windows(self, walk_db):
        table = walk_db.index.window_point_table()
        assert len(table) == walk_db.index.num_indexed_windows
        # Cached: same object on second call.
        assert walk_db.index.window_point_table() is table


class TestIterMatches:
    def test_streams_exact_topk_in_order(self, walk_db):
        query = walk_db.store.peek_subsequence(1, 200, 48).copy()
        gold = gold_topk(walk_db, query, k=7, rho=2)
        streamed = [
            round(m.distance, 6)
            for m in walk_db.iter_matches(query, k=7, rho=2)
        ]
        assert streamed == pytest.approx(gold, abs=1e-6)

    def test_early_abandonment_is_cheap(self, walk_db):
        query = walk_db.store.peek_subsequence(1, 200, 48).copy()
        walk_db.reset_cache()
        generator = walk_db.iter_matches(query, k=50, rho=2)
        next(generator)
        generator.close()
        partial_reads = walk_db.pager.stats.physical_reads
        walk_db.reset_cache()
        list(walk_db.iter_matches(query, k=50, rho=2))
        full_reads = walk_db.pager.stats.physical_reads
        assert partial_reads < full_reads

    def test_requires_built_index(self):
        db = SubsequenceDatabase(omega=16, features=4)
        db.insert(0, make_walk(200, seed=1))
        with pytest.raises(Exception):
            next(db.iter_matches(make_walk(48, seed=2)))

    @pytest.mark.parametrize("scheduling", ["max-delta", "cost-aware"])
    def test_scheduling_variants(self, walk_db, scheduling):
        query = walk_db.store.peek_subsequence(0, 999, 48).copy()
        gold = gold_topk(walk_db, query, k=3, rho=2)
        streamed = [
            round(m.distance, 6)
            for m in walk_db.iter_matches(
                query, k=3, rho=2, scheduling=scheduling
            )
        ]
        assert streamed == pytest.approx(gold, abs=1e-6)


class TestBulkVersusInsertBuilds:
    def test_same_search_results(self):
        rng = np.random.default_rng(17)
        values = rng.standard_normal(1500).cumsum()

        def make_store():
            pager = Pager(page_size=1024)
            buffer = BufferPool(pager, capacity_pages=16)
            store = SequenceStore(pager, buffer)
            store.add_sequence(0, values)
            return store

        bulk = build_index(make_store(), omega=16, features=4, bulk=True)
        incremental = build_index(
            make_store(), omega=16, features=4, bulk=False
        )
        bulk.tree.check_invariants()
        incremental.tree.check_invariants()
        assert len(bulk.tree) == len(incremental.tree)
        bulk_records = sorted(
            e.record for e in bulk.tree.iter_leaf_entries()
        )
        incremental_records = sorted(
            e.record for e in incremental.tree.iter_leaf_entries()
        )
        assert bulk_records == incremental_records


class TestInputValidation:
    def test_nan_sequences_rejected(self):
        from repro.exceptions import PageError

        db = SubsequenceDatabase(omega=16, features=4)
        bad = make_walk(100, seed=1)
        bad[50] = np.nan
        with pytest.raises(PageError):
            db.insert(0, bad)

    def test_infinite_values_rejected(self):
        from repro.exceptions import PageError

        db = SubsequenceDatabase(omega=16, features=4)
        bad = make_walk(100, seed=1)
        bad[0] = np.inf
        with pytest.raises(PageError):
            db.insert(0, bad)
