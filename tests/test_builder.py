"""Unit tests for DualMatch index construction (repro.index.builder)."""

import numpy as np
import pytest

from repro.core.paa import paa
from repro.exceptions import ConfigurationError
from repro.index.builder import build_index
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore


def make_store(lengths, seed=0, page_size=512):
    pager = Pager(page_size=page_size)
    buffer = BufferPool(pager, capacity_pages=8)
    store = SequenceStore(pager, buffer)
    rng = np.random.default_rng(seed)
    for sid, length in enumerate(lengths):
        store.add_sequence(sid, rng.standard_normal(length).cumsum())
    return store


class TestBuildIndex:
    def test_window_count(self):
        store = make_store([100, 64, 63])
        index = build_index(store, omega=16, features=4)
        # 100//16 + 64//16 + 63//16 = 6 + 4 + 3.
        assert index.num_indexed_windows == 13
        index.tree.check_invariants()

    def test_leaf_points_are_window_paa(self):
        store = make_store([64])
        index = build_index(store, omega=16, features=4)
        for entry in index.tree.iter_leaf_entries():
            record = entry.record
            window = store.peek_subsequence(
                record.sid, record.window_index * 16, 16
            )
            np.testing.assert_allclose(entry.low, paa(window, 4))

    def test_window_values_accessor(self):
        store = make_store([64])
        index = build_index(store, omega=16, features=4)
        record = next(iter(index.tree.iter_leaf_entries())).record
        values = index.window_values(record)
        assert values.size == 16

    def test_seg_len(self):
        store = make_store([64])
        index = build_index(store, omega=16, features=4)
        assert index.seg_len == 4

    def test_describe_fields(self):
        store = make_store([200, 200])
        index = build_index(store, omega=16, features=4)
        info = index.describe()
        assert info["sequences"] == 2
        assert info["indexed_windows"] == 24
        assert info["tree_height"] >= 1
        assert info["total_values"] == 400

    def test_invalid_omega(self):
        store = make_store([64])
        with pytest.raises(ConfigurationError):
            build_index(store, omega=0, features=4)

    def test_omega_must_divide_by_features(self):
        store = make_store([64])
        with pytest.raises(ConfigurationError):
            build_index(store, omega=10, features=4)

    def test_sequence_shorter_than_window_contributes_nothing(self):
        store = make_store([8, 64])
        index = build_index(store, omega=16, features=4)
        sids = {
            entry.record.sid for entry in index.tree.iter_leaf_entries()
        }
        assert sids == {1}
