"""Unit tests for RU-COST's density machinery (repro.engines.cost_density)."""

import math

import pytest

from repro.engines.cost_density import (
    CostAwareDensityScheduler,
    CostDensityConfig,
)
from repro.exceptions import ConfigurationError


class TestConfig:
    def test_paper_defaults(self):
        config = CostDensityConfig()
        assert config.alpha == 1.0
        assert config.beta == 0.0
        assert config.lookahead_h is None  # blocking factor
        assert config.selective_expansion

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostDensityConfig(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            CostDensityConfig(lookahead_h=0)
        with pytest.raises(ConfigurationError):
            CostDensityConfig(max_expansions_per_select=-1)


class TestEstimateHthDistance:
    estimate = staticmethod(
        CostAwareDensityScheduler._estimate_hth_distance
    )

    def test_uniform_single_range(self):
        # 10 leaves uniform on [0, 10]: the 5th sits at distance 5.
        assert self.estimate([(0.0, 10.0, 10.0)], 5) == pytest.approx(5.0)

    def test_point_masses(self):
        # 3 leaves exactly at 2.0; h=2 reached at 2.0.
        assert self.estimate([(2.0, 2.0, 3.0)], 2) == pytest.approx(2.0)

    def test_mixture(self):
        ranges = [(0.0, 0.0, 1.0), (1.0, 3.0, 4.0)]
        # 1 point at 0, then uniform density 2/unit on [1,3]; h=3 needs
        # 2 more units of mass -> reached at 2.0.
        assert self.estimate(ranges, 3) == pytest.approx(2.0)

    def test_h_beyond_total_mass_returns_last_endpoint(self):
        assert self.estimate([(0.0, 4.0, 2.0)], 100) == pytest.approx(4.0)

    def test_empty_ranges(self):
        assert self.estimate([], 5) == math.inf

    def test_unbounded_range_treated_as_point_mass(self):
        assert self.estimate([(1.5, math.inf, 10.0)], 5) == pytest.approx(
            1.5
        )


class TestDensityKeyOrdering:
    def test_zero_density_ties_break_on_denominator(self):
        # The paper: among zero-density queues pick the smallest
        # denominator.  Keys are (density, denominator) tuples.
        sparse_key = (0.0, 5.0)
        tight_key = (0.0, 1.0)
        assert tight_key < sparse_key

    def test_nonzero_density_dominates(self):
        assert (0.0, 100.0) < (0.5, 0.1)


class TestSchedulerOnRealQueues(object):
    """Exercise density computation through a real RU-COST search."""

    def test_lb_never_exceeds_exact(self, walk_db):
        """Lemma 7, checked empirically on live queues."""
        from repro.core.windows import QueryWindowSet
        from repro.engines.base import CandidateEvaluator, EngineConfig
        from repro.engines.queues import WindowQueue
        from repro.core.metrics import QueryStats

        query = walk_db.store.peek_subsequence(0, 500, 48).copy()
        window_set = QueryWindowSet.from_query(
            query, omega=16, features=4, rho=2
        )
        stats = QueryStats()
        queues = [
            WindowQueue(
                window,
                walk_db.index.tree,
                walk_db.index.seg_len,
                2.0,
                stats,
            )
            for window in window_set.classes[0]
        ]
        scheduler = CostAwareDensityScheduler(
            store=walk_db.store,
            query_length=48,
            omega=16,
            blocking_factor=walk_db.index.tree.blocking_factor,
            p=2.0,
            config=CostDensityConfig(lookahead_h=4),
            cap_for=lambda _queue: math.inf,
        )
        # Resolve each queue somewhat, then compare the bound pair.
        for queue in queues:
            for _ in range(3):
                queue.expand_first_node()
        for queue in queues:
            lb = scheduler._lb_cdens(queue, 4)
            exact = scheduler._exact_cdens(queue, 4)
            assert lb <= exact

    def test_select_returns_live_queue(self, walk_db):
        from repro.core.windows import QueryWindowSet
        from repro.engines.queues import WindowQueue
        from repro.core.metrics import QueryStats

        query = walk_db.store.peek_subsequence(0, 900, 48).copy()
        window_set = QueryWindowSet.from_query(
            query, omega=16, features=4, rho=2
        )
        stats = QueryStats()
        queues = [
            WindowQueue(
                window,
                walk_db.index.tree,
                walk_db.index.seg_len,
                2.0,
                stats,
            )
            for window in window_set.classes[1]
        ]
        scheduler = CostAwareDensityScheduler(
            store=walk_db.store,
            query_length=48,
            omega=16,
            blocking_factor=8,
            p=2.0,
            config=CostDensityConfig(),
            cap_for=lambda _queue: math.inf,
        )
        chosen = scheduler.select(queues)
        assert chosen in queues
        assert not chosen.is_empty

    def test_select_requires_live_queue(self, walk_db):
        scheduler = CostAwareDensityScheduler(
            store=walk_db.store,
            query_length=48,
            omega=16,
            blocking_factor=8,
            p=2.0,
            config=CostDensityConfig(),
            cap_for=lambda _queue: math.inf,
        )
        with pytest.raises(ConfigurationError):
            scheduler.select([])
