"""Unit tests for the deferred retrieval buffer (repro.storage.deferred)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.storage.deferred import CandidateRequest, DeferredRetrievalBuffer


def request(sid, start, lb=0.0):
    return CandidateRequest(sid=sid, start=start, length=4, lower_bound=lb)


class TestCapacity:
    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            DeferredRetrievalBuffer(0)

    def test_is_full(self):
        buf = DeferredRetrievalBuffer(2)
        buf.add(request(0, 0))
        assert not buf.is_full
        buf.add(request(0, 1))
        assert buf.is_full

    def test_capacity_for_database_follows_half_percent_rule(self):
        # 1 MB database at 0.5% -> 5243 bytes -> 327 sixteen-byte slots.
        assert DeferredRetrievalBuffer.capacity_for_database(2**20) == 327

    def test_capacity_floor_is_one(self):
        assert DeferredRetrievalBuffer.capacity_for_database(100) == 1

    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            DeferredRetrievalBuffer.capacity_for_database(1000, fraction=0)


class TestDrain:
    def test_storage_order(self):
        buf = DeferredRetrievalBuffer(10)
        buf.add(request(1, 50))
        buf.add(request(0, 99))
        buf.add(request(0, 3))
        buf.add(request(1, 2))
        drained = [(r.sid, r.start) for r in buf.drain()]
        assert drained == [(0, 3), (0, 99), (1, 2), (1, 50)]

    def test_drain_empties_buffer(self):
        buf = DeferredRetrievalBuffer(10)
        buf.add(request(0, 0))
        list(buf.drain())
        assert len(buf) == 0

    def test_threshold_skips_stale_requests(self):
        buf = DeferredRetrievalBuffer(10)
        buf.add(request(0, 0, lb=1.0))
        buf.add(request(0, 1, lb=9.0))
        drained = list(buf.drain(threshold=5.0))
        assert [r.start for r in drained] == [0]
        assert buf.stats.requests_skipped == 1

    def test_no_threshold_drains_everything(self):
        buf = DeferredRetrievalBuffer(10)
        buf.add(request(0, 0, lb=100.0))
        assert len(list(buf.drain())) == 1

    def test_stats_accumulate(self):
        buf = DeferredRetrievalBuffer(10)
        buf.add(request(0, 0))
        buf.add(request(0, 1))
        list(buf.drain())
        buf.add(request(0, 2))
        list(buf.drain())
        assert buf.stats.requests_added == 3
        assert buf.stats.flushes == 2
        assert buf.stats.requests_drained == 3


def test_request_sort_key():
    assert request(2, 5).sort_key == (2, 5)
