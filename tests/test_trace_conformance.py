"""Trace <-> stats conformance: spans must agree with the cost model.

The observability plane is only trustworthy if it counts what the
paper counts.  These tests run every golden engine config from
``tests/test_engines_stats.py`` with tracing *enabled* and assert:

* the number of ``buffer.fetch`` spans equals the pinned NUM_IO
  (``stats.page_accesses``) exactly — two independent mechanisms,
  the span recorder and the pager's physical-read counter, observing
  the same call site;
* the span tree is well-formed (every span closed, children nested
  inside parents) and strictly monotonic on a ``FakeClock``;
* every golden counter and result digest is unchanged by tracing —
  the instrumented paths are behaviour-identical.
"""

import pytest

from repro.core.clock import FakeClock
from repro.engines.range_search import RangeSearchEngine
from repro.control import Deadline, ExecutionControl
from repro.obs import Tracer
from repro.obs.tracer import validate_span_tree

from tests.conftest import (
    build_golden_db,
    build_golden_psm_db,
    query_from,
)
from tests.test_engines_stats import (
    GOLDEN_COUNTERS,
    GOLDEN_DISTANCES,
    GOLDEN_MATCHES,
    GOLDEN_PSM_DISTANCES,
    GOLDEN_PSM_MATCHES,
    assert_golden,
)

RANKED_LABELS = [
    "seqscan", "hlmj", "hlmj-d", "hlmj-wg", "hlmj-wg-d",
    "ru", "ru-d", "ru-cost", "ru-cost-d",
]


def make_tracer() -> Tracer:
    # auto_advance makes every clock read distinct, so monotonicity is
    # a structural property of the instrumentation, not the host clock.
    return Tracer(enabled=True, clock=FakeClock(auto_advance=1e-6))


@pytest.fixture(scope="module")
def traced_db():
    return build_golden_db(tracer=make_tracer())


@pytest.fixture(scope="module")
def traced_psm_db():
    return build_golden_psm_db(tracer=make_tracer())


def run_golden(db, label):
    """Run one golden ranked config on a cold cache with a fresh trace."""
    deferred = label.endswith("-d")
    method = label[:-2] if deferred else label
    query = query_from(db, 640, 48)
    db.reset_cache()
    db.tracer.reset()
    return db.search(query, k=5, rho=2, method=method, deferred=deferred)


def assert_conformant(profile, expected_num_io):
    assert profile is not None
    assert profile.span_count("buffer.fetch") == expected_num_io
    assert profile.stats.page_accesses == expected_num_io
    assert validate_span_tree(profile.span) == []


class TestNumIoConformance:
    @pytest.mark.parametrize("label", RANKED_LABELS)
    def test_fetch_spans_equal_pinned_num_io(self, traced_db, label):
        result = run_golden(traced_db, label)
        assert_conformant(
            result.profile, GOLDEN_COUNTERS[label]["page_accesses"]
        )

    def test_range_search(self, traced_db):
        query = query_from(traced_db, 640, 48)
        traced_db.reset_cache()
        traced_db.tracer.reset()
        result = RangeSearchEngine(traced_db.index).search(
            query,
            epsilon=2.5,
            rho=2,
            control=ExecutionControl(tracer=traced_db.tracer),
        )
        assert_conformant(
            result.profile, GOLDEN_COUNTERS["range"]["page_accesses"]
        )

    def test_psm(self, traced_psm_db):
        query = query_from(traced_psm_db, 200, 32)
        traced_psm_db.reset_cache()
        traced_psm_db.tracer.reset()
        result = traced_psm_db.search(query, k=3, rho=1, method="psm")
        assert_conformant(
            result.profile, GOLDEN_COUNTERS["psm"]["page_accesses"]
        )

    def test_match_stream(self, traced_db):
        query = query_from(traced_db, 640, 48)
        traced_db.reset_cache()
        traced_db.tracer.reset()
        stream = traced_db.iter_matches(query, k=5, rho=2)
        matches = list(stream)
        assert len(matches) == 5
        profile = stream.profile
        assert_conformant(profile, profile.stats.page_accesses)
        assert profile.span.name == "engine.search"
        assert profile.span.attrs["engine"] == "RU-STREAM"


class TestGoldensUnchangedUnderTracing:
    """Tracing ON must not move a single counter or result digest."""

    @pytest.mark.parametrize("label", RANKED_LABELS)
    def test_ranked_goldens(self, traced_db, label):
        result = run_golden(traced_db, label)
        assert_golden(result, label, GOLDEN_DISTANCES, GOLDEN_MATCHES)

    def test_psm_goldens(self, traced_psm_db):
        query = query_from(traced_psm_db, 200, 32)
        traced_psm_db.reset_cache()
        traced_psm_db.tracer.reset()
        result = traced_psm_db.search(query, k=3, rho=1, method="psm")
        assert_golden(
            result, "psm", GOLDEN_PSM_DISTANCES, GOLDEN_PSM_MATCHES
        )


class TestSpanTreeShape:
    def test_strictly_monotonic_timestamps(self, traced_db):
        result = run_golden(traced_db, "ru-cost")
        root = result.profile.span
        times = []
        for span in root.iter_tree():
            assert span.end is not None
            assert span.end > span.start
            times.append(span.start)
            times.append(span.end)
        # Every enter/exit tick is a distinct FakeClock reading.
        assert len(set(times)) == len(times)
        assert min(times) == root.start
        assert max(times) == root.end
        for span in root.iter_tree():
            for child in span.children:
                assert child.start > span.start
                assert child.end < span.end

    def test_engine_phases_under_root(self, traced_db):
        result = run_golden(traced_db, "ru")
        names = [c.name for c in result.profile.span.children]
        assert names == ["engine.run", "engine.finalize"]

    def test_fetch_spans_carry_page_attrs(self, traced_db):
        result = run_golden(traced_db, "hlmj")
        fetches = [
            s
            for s in result.profile.span.iter_tree()
            if s.name == "buffer.fetch"
        ]
        assert fetches
        for span in fetches:
            assert isinstance(span.attrs["page"], int)
            assert isinstance(span.attrs["kind"], str)

    def test_metrics_delta_matches_buffer_stats(self, traced_db):
        result = run_golden(traced_db, "ru-cost")
        counters = result.profile.metrics.counters
        stats = result.stats
        # Logical reads = buffer hits + misses, and the per-kind fetch
        # counters sum to the physical reads the spans count.
        assert (
            counters["buffer.hit"] + counters["buffer.miss"]
            == stats.logical_reads
        )
        fetch_total = sum(
            value
            for name, value in counters.items()
            if name.startswith("page.fetch.")
        )
        assert fetch_total == stats.page_accesses


class TestControlPlaneEvents:
    def test_checkpoints_surface_as_events(self, traced_db):
        query = query_from(traced_db, 640, 48)
        traced_db.reset_cache()
        traced_db.tracer.reset()
        result = traced_db.search(
            query, k=5, rho=2, method="ru-cost",
            deadline=Deadline.after(3600.0),
        )
        events = [
            event.name
            for span in result.profile.span.iter_tree()
            for event in span.events
        ]
        assert "control.checkpoint" in events

    def test_unlimited_queries_emit_no_checkpoint_events(self, traced_db):
        result = run_golden(traced_db, "ru-cost")
        events = [
            event.name
            for span in result.profile.span.iter_tree()
            for event in span.events
        ]
        assert "control.checkpoint" not in events
