"""Small-surface tests: exports, config validation, report helpers."""

import pytest

from repro.engines.base import EngineConfig, SearchResult
from repro.exceptions import ConfigurationError


class TestPublicExports:
    def test_package_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_all_resolves(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_engines_all_resolves(self):
        import repro.engines as engines

        for name in engines.__all__:
            assert getattr(engines, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig(k=5, rho=2)
        assert not config.deferred
        assert config.deferred_fraction == 0.005
        assert config.p == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0, "rho": 1},
            {"k": 1, "rho": -1},
            {"k": 1, "rho": 1, "deferred_fraction": 0.0},
            {"k": 1, "rho": 1, "deferred_fraction": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            EngineConfig(**kwargs)

    def test_frozen(self):
        config = EngineConfig(k=1, rho=1)
        with pytest.raises(Exception):
            config.k = 2


class TestSearchResult:
    def test_distances_property(self):
        from repro.core.metrics import QueryStats
        from repro.core.results import Match

        result = SearchResult(
            matches=[
                Match(distance=1.0, sid=0, start=0, length=4),
                Match(distance=2.0, sid=0, start=9, length=4),
            ],
            stats=QueryStats(),
        )
        assert result.distances == [1.0, 2.0]


class TestWorkloadResult:
    def test_metric_lookup(self):
        from repro.bench.harness import WorkloadResult

        result = WorkloadResult(
            label="X",
            queries=1,
            candidates=10.0,
            page_accesses=5.0,
            wall_time_s=0.1,
            modeled_time_s=0.2,
            extras={"bloom_calls": 7.0},
        )
        assert result.metric("candidates") == 10.0
        assert result.metric("bloom_calls") == 7.0
        with pytest.raises(KeyError):
            result.metric("nonexistent")


class TestDatasetSizing:
    def test_scaled_size_floor(self):
        from repro.data.datasets import scaled_size

        # Even at absurdly small scales sizes stay index-worthy.
        assert scaled_size("STOCK", 1e-9) >= 8_192

    def test_default_scale_ordering(self):
        from repro.data.datasets import DATASET_NAMES, scaled_size

        sizes = {name: scaled_size(name) for name in DATASET_NAMES}
        assert sizes["PIPE"] == max(sizes.values())


class TestEngineNames:
    def test_ranked_union_variant_names(self, walk_db):
        from repro.engines.ranked_union import RankedUnionEngine

        assert (
            RankedUnionEngine(walk_db.index, scheduling="global-min").name
            == "RU[global-min]"
        )
        assert (
            RankedUnionEngine(walk_db.index, scheduling="round-robin").name
            == "RU[round-robin]"
        )
