"""Tests for GeneralMatch windowing (the data-stride generalization).

``data_stride = omega`` is DualMatch (the paper's configuration);
``data_stride = 1`` indexes every sliding data window (FRM-style).  All
strides must remain exact, and the structural properties — class count,
coverage, index size — must follow the derivation in
:mod:`repro.core.windows`.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SubsequenceDatabase
from repro.core.lower_bounds import min_disjoint_windows
from repro.core.reference import brute_force_topk
from repro.core.windows import QueryWindowSet, candidate_start
from repro.exceptions import ConfigurationError, QueryTooShortError
from tests.conftest import make_walk

STRIDES = [1, 2, 4, 8, 16]  # omega = 16 in these tests


def build_db(stride, n=1200, seed=40):
    db = SubsequenceDatabase(omega=16, features=4, data_stride=stride)
    db.insert(0, make_walk(n, seed=seed))
    db.build()
    return db


class TestStructure:
    @pytest.mark.parametrize("stride", STRIDES)
    def test_index_size_scales_inversely_with_stride(self, stride):
        db = build_db(stride)
        expected = (1200 - 16) // stride + 1
        assert db.index.num_indexed_windows == expected

    @pytest.mark.parametrize("stride", [1, 2, 4, 8])
    def test_class_count_equals_stride(self, stride):
        ws = QueryWindowSet.from_query(
            make_walk(60, seed=1), omega=16, features=4, rho=2,
            data_stride=stride,
        )
        assert ws.num_classes == stride
        for r, cls in enumerate(ws.classes):
            assert all(w.sliding_offset % 16 == r for w in cls)

    def test_stride_must_divide_omega(self):
        with pytest.raises(QueryTooShortError):
            QueryWindowSet.from_query(
                make_walk(60, seed=1), omega=16, features=4, rho=2,
                data_stride=3,
            )
        with pytest.raises(ConfigurationError):
            SubsequenceDatabase(omega=16, features=4, data_stride=5).insert(
                0, make_walk(100, seed=0)
            ) or build_db(5)

    def test_shorter_queries_allowed_with_small_strides(self):
        # Len(Q) >= omega + J - 1: stride 2 admits length 17.
        ws = QueryWindowSet.from_query(
            make_walk(17, seed=1), omega=16, features=4, rho=1,
            data_stride=2,
        )
        assert ws.num_classes == 2
        with pytest.raises(QueryTooShortError):
            QueryWindowSet.from_query(
                make_walk(17, seed=1), omega=16, features=4, rho=1,
                data_stride=16,
            )

    def test_coverage_every_offset_exactly_one_class(self):
        omega, stride, length, data_length = 16, 4, 48, 400
        reachable = {}
        num_grid = (data_length - omega) // stride + 1
        for r in range(stride):
            offsets = [
                r + t * omega for t in range((length - omega - r) // omega + 1)
            ]
            for m in range(num_grid):
                for offset in offsets:
                    start = candidate_start(m, offset, stride)
                    if 0 <= start <= data_length - length:
                        reachable.setdefault(start, set()).add(r)
        assert set(reachable) == set(range(data_length - length + 1))
        assert all(len(classes) == 1 for classes in reachable.values())

    def test_min_windows_formula_reduces_to_paper_at_dualmatch(self):
        assert min_disjoint_windows(384, 64, 64) == 5
        assert min_disjoint_windows(384, 64) == 5
        # Smaller strides can only help (weakly more guaranteed windows).
        assert min_disjoint_windows(384, 64, 1) >= 5


class TestExactness:
    @pytest.mark.parametrize("stride", [1, 4, 16])
    @pytest.mark.parametrize("method", ["hlmj", "hlmj-wg", "ru", "ru-cost"])
    def test_engines_exact_at_every_stride(self, stride, method):
        db = build_db(stride)
        query = db.store.peek_subsequence(0, 333, 48).copy()
        gold = [
            round(m.distance, 6)
            for m in brute_force_topk(db.store, query, 5, rho=2)
        ]
        result = db.search(query, k=5, rho=2, method=method)
        got = [round(m.distance, 6) for m in result.matches]
        assert got == pytest.approx(gold, abs=1e-6)

    @pytest.mark.parametrize("stride", [2, 8])
    def test_range_search_exact_at_stride(self, stride):
        from repro.engines.range_search import brute_force_range

        db = build_db(stride)
        query = db.store.peek_subsequence(0, 600, 48).copy()
        gold = sorted(
            m.key() for m in brute_force_range(db.store, query, 4.0, rho=2)
        )
        got = sorted(
            m.key()
            for m in db.range_search(query, epsilon=4.0, rho=2).matches
        )
        assert got == gold

    def test_smaller_stride_prunes_at_least_as_well(self):
        # More classes with more windows each -> bounds at least as
        # tight; candidates should not blow up when stride shrinks.
        query_seed = 41
        counts = {}
        for stride in (16, 4):
            db = build_db(stride, seed=query_seed)
            query = db.store.peek_subsequence(0, 500, 48).copy()
            counts[stride] = db.search(
                query, k=5, rho=2, method="ru"
            ).stats.candidates
        assert counts[4] <= counts[16] * 1.5


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    stride=st.sampled_from([1, 2, 4, 8]),
    k=st.integers(1, 5),
)
def test_generalmatch_property_exactness(seed, stride, k):
    rng = np.random.default_rng(seed)
    db = SubsequenceDatabase(omega=8, features=4, data_stride=stride)
    db.insert(0, rng.standard_normal(250).cumsum())
    db.build()
    length = int(rng.integers(8 + stride - 1, 40))
    query = rng.standard_normal(length).cumsum()
    gold = [
        round(m.distance, 6)
        for m in brute_force_topk(db.store, query, k, rho=1)
    ]
    got = [
        round(m.distance, 6)
        for m in db.search(query, k=k, rho=1, method="ru-cost").matches
    ]
    assert got == pytest.approx(gold, abs=1e-6)
