"""Legacy setuptools shim.

pyproject.toml is the build definition; this file exists so that
``python setup.py develop`` works on machines without the ``wheel``
package (pip's isolated builds need network access to fetch it).
"""

from setuptools import setup

setup()
