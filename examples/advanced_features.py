"""Tour of the library's extensions beyond the paper's core algorithm.

* streaming top-k through the extended iterator model,
* range (epsilon) matching,
* multi-scale (variable-length) matching,
* GeneralMatch data strides,
* save/load persistence.

Run:  python examples/advanced_features.py
"""

import tempfile

import numpy as np

from repro import SubsequenceDatabase
from repro.core.scaling import resample


def main() -> None:
    rng = np.random.default_rng(2)
    base_motif = rng.standard_normal(96).cumsum()
    data = np.concatenate(
        [
            rng.standard_normal(8000).cumsum(),
            base_motif,
            rng.standard_normal(6000).cumsum(),
            resample(base_motif, 192),  # a time-stretched 2x copy
            rng.standard_normal(4000).cumsum(),
        ]
    )

    db = SubsequenceDatabase(omega=32, features=4)
    db.insert(0, data)
    db.build()

    # --- streaming: results arrive as their rank is settled ----------
    print("streaming top-5 (first results arrive early):")
    for rank, match in enumerate(db.iter_matches(base_motif, k=5), 1):
        print(
            f"  #{rank}: [{match.start}:{match.end}) "
            f"d={match.distance:.3f}"
        )

    # --- range matching: everything within epsilon --------------------
    hits = db.range_search(base_motif, epsilon=2.0)
    print(f"\nrange search (eps=2.0): {len(hits.matches)} subsequences")

    # --- multi-scale: find the stretched copy too ---------------------
    result = db.search_scaled(base_motif, k=4, scales=(1.0, 2.0))
    print("\nmulti-scale search (normalized distances):")
    for match in result.matches:
        print(
            f"  len={match.length:>3d} [{match.start}:{match.end}) "
            f"d/step={match.distance:.4f}"
        )

    # --- GeneralMatch stride: denser index, tighter classes -----------
    fine = SubsequenceDatabase(omega=32, features=4, data_stride=8)
    fine.insert(0, data)
    fine.build()
    coarse_stats = db.search(base_motif, k=5).stats
    fine_stats = fine.search(base_motif, k=5).stats
    print(
        f"\nGeneralMatch: stride 32 (DualMatch) -> "
        f"{db.index.num_indexed_windows} windows, "
        f"{coarse_stats.candidates} candidates; stride 8 -> "
        f"{fine.index.num_indexed_windows} windows, "
        f"{fine_stats.candidates} candidates"
    )

    # --- persistence: page-exact round trip ----------------------------
    with tempfile.TemporaryDirectory() as tmp:
        db.save(tmp)
        loaded = SubsequenceDatabase.load(tmp)
        again = loaded.search(base_motif, k=1)
        print(
            f"\nreloaded database finds the motif at "
            f"{again.matches[0].start} "
            f"(distance {again.matches[0].distance:.6f})"
        )


if __name__ == "__main__":
    main()
