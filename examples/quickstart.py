"""Quickstart: index a time series and run a ranked subsequence query.

Builds a database over a synthetic random walk, extracts a query from
it, and retrieves the top-5 nearest subsequences under banded DTW with
the paper's RU-COST engine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SubsequenceDatabase


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Load data: one long sequence (multiple sequences work too).
    values = rng.standard_normal(50_000).cumsum()
    db = SubsequenceDatabase(omega=32, features=4, buffer_fraction=0.05)
    db.insert(0, values)
    db.build()
    print("index:", db.describe())

    # 2. Query: any sequence at least 2*omega-1 long.  Here we take a
    #    subsequence of the data and perturb it, so the true location
    #    should come back first.
    true_start = 31_337
    query = values[true_start : true_start + 192].copy()
    query += 0.05 * rng.standard_normal(query.size)

    # 3. Search: top-5 under DTW with the default 5% warping width.
    result = db.search(query, k=5, method="ru-cost", deferred=True)

    print("\ntop-5 matches:")
    for rank, match in enumerate(result.matches, start=1):
        marker = "  <-- planted" if match.start == true_start else ""
        print(
            f"  {rank}. sid={match.sid} [{match.start}:{match.end}) "
            f"distance={match.distance:.4f}{marker}"
        )

    stats = result.stats
    print(
        f"\ncost: {stats.candidates} candidates retrieved, "
        f"{stats.page_accesses} page accesses, "
        f"{stats.heap_pops} queue pops, "
        f"{stats.wall_time_s * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
