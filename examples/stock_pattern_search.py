"""Find historical price patterns similar to a recent window.

A classic chartist workflow: take the most recent trading window and
ask "when did the market last move like this?"  DTW absorbs small
timing differences between the patterns; the ranked-union index makes
the search touch a small fraction of the history.

The example also contrasts all engines on the same query, printing the
paper's three metrics for each.

Run:  python examples/stock_pattern_search.py
"""

from repro import SubsequenceDatabase
from repro.data import load_dataset


def main() -> None:
    stock = load_dataset("STOCK", size=60_000, seed=3)
    prices = stock.values

    db = SubsequenceDatabase(omega=32, features=4, buffer_fraction=0.05)
    db.insert(0, prices)
    db.build()
    print(f"indexed {stock.size:,} daily prices")

    # The "recent" pattern: the last 128 observations.
    query = prices[-128:].copy()

    # Over-fetch, then drop the query's own window and overlapping
    # shifts of the same episode so five *distinct* periods remain.
    result = db.search(query, k=60, method="ru-cost", deferred=True)
    print("\nmost similar distinct historical periods (RU-COST):")
    kept = []
    for match in result.matches:  # best first
        if match.end > stock.size - query.size:  # the query window itself
            continue
        if any(abs(match.start - other) < query.size for other in kept):
            continue
        kept.append(match.start)
        print(
            f"  days [{match.start:>6d}..{match.end:>6d})  "
            f"DTW distance {match.distance:8.4f}"
        )
        if len(kept) == 5:
            break

    print("\nengine comparison on the same query (k=5):")
    print(
        f"{'engine':>12s} {'candidates':>12s} {'page accesses':>14s} "
        f"{'pops':>10s} {'ms':>9s}"
    )
    for method in ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost"):
        db.reset_cache()
        stats = db.search(
            query, k=5, method=method, deferred=method != "seqscan"
        ).stats
        print(
            f"{method:>12s} {stats.candidates:>12,d} "
            f"{stats.page_accesses:>14,d} {stats.heap_pops:>10,d} "
            f"{stats.wall_time_s * 1000:>9.1f}"
        )
    print(
        "\n(the PSM baseline is omitted here — its n-way join needs its"
        "\nown sliding-window index and minutes of state enumeration;"
        "\nsee benchmarks/test_fig18_psm_comparison.py)"
    )


if __name__ == "__main__":
    main()
