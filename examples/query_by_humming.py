"""Query-by-humming: locate a melody from a sloppy rendition.

The paper motivates DTW with query-by-humming [24]: a hummed melody
preserves the pitch contour but drifts in timing.  This example indexes
a synthetic music pitch track, distorts one phrase the way a hum would
(time-warped, slightly off-key, noisy), and shows that

* banded DTW still ranks the true phrase first, while
* the same search under plain Euclidean alignment (``rho = 0``) can
  misrank it — the robustness that motivates the whole system.

Run:  python examples/query_by_humming.py
"""

import numpy as np

from repro import SubsequenceDatabase
from repro.data import load_dataset


def hum(phrase: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Simulate humming: local tempo warping + detune + noise."""
    n = phrase.size
    # Random monotone time warp: resample along a jittered time axis.
    steps = rng.random(n) + 0.5
    warped_axis = np.cumsum(steps)
    warped_axis = (warped_axis - warped_axis[0]) / (
        warped_axis[-1] - warped_axis[0]
    ) * (n - 1)
    warped = np.interp(np.arange(n), warped_axis, phrase)
    detune = 0.3 * rng.standard_normal()  # constant pitch offset
    return warped + detune + 0.1 * rng.standard_normal(n)


def main() -> None:
    rng = np.random.default_rng(11)
    music = load_dataset("MUSIC", size=80_000, seed=5)

    db = SubsequenceDatabase(omega=32, features=4)
    db.insert(0, music.values)
    db.build()
    print(f"indexed {music.size:,} pitch samples")

    phrase_start = 40_960
    phrase = music.values[phrase_start : phrase_start + 160].copy()
    hummed = hum(phrase, rng)

    for rho, label in ((8, "DTW (rho = 5%)"), (0, "Euclidean (rho = 0)")):
        result = db.search(hummed, k=3, rho=rho, method="ru-cost")
        best = result.matches[0]
        hit = abs(best.start - phrase_start) <= 32
        print(f"\n{label}:")
        for match in result.matches:
            print(
                f"  [{match.start:>6d}..{match.end:>6d})  "
                f"distance {match.distance:8.3f}"
            )
        print(
            "  -> found the hummed phrase"
            if hit
            else "  -> missed it (alignment too rigid)"
        )


if __name__ == "__main__":
    main()
