"""Pipeline inspection: the workload where HLMJ falls over.

PIPE-like data is almost perfectly periodic — every window of the
carrier signal collapses into a few dense clusters of the index — with
rare irregular signatures (bends, valves, tee junctions) in between.  A
query cut around such a signature has *mixed* windows: some map into
the dense clusters and flood HLMJ's single global priority queue, while
the discriminative sparse windows starve (Figure 2 of the paper).

This example finds all occurrences of a valve signature and prints how
much work each engine did — the ranked-union engines are orders of
magnitude cheaper (Experiment 2 / Figure 13).

Run:  python examples/pipeline_inspection.py
"""

from repro import SubsequenceDatabase
from repro.data import load_dataset
from repro.data.queries import pattern_queries


def main() -> None:
    pipe = load_dataset("PIPE", size=100_000, seed=2)
    print(
        f"inspection record: {pipe.size:,} samples; injected signatures:",
        {family: len(offsets) for family, offsets in pipe.markers.items()},
    )

    db = SubsequenceDatabase(omega=32, features=4, buffer_fraction=0.05)
    db.insert(0, pipe.values)
    db.build()

    family = "TEE"
    query = pattern_queries(pipe, family, length=192, count=1, seed=4)[0]
    sites = len(pipe.markers[family])
    print(
        f"\nsearching for {family.lower()}-like sites "
        f"({sites} were injected)..."
    )

    # Top-k returns overlapping shifts of the same site, so over-fetch
    # and keep the best match per non-overlapping site.
    result = db.search(query, k=8 * sites, method="ru-cost", deferred=True)
    found = []
    for match in result.matches:  # best first
        if all(abs(match.start - kept) >= 96 for kept in found):
            found.append(match.start)
        if len(found) == sites:
            break
    print("  distinct match sites:", sorted(found))
    print("  true injections at: ", pipe.markers[family])

    print("\nwork per engine for the same query (k=25):")
    print(f"{'engine':>12s} {'candidates':>12s} {'page accesses':>14s}")
    for method in ("hlmj", "ru", "ru-cost"):
        db.reset_cache()
        stats = db.search(query, k=25, method=method, deferred=True).stats
        print(
            f"{method:>12s} {stats.candidates:>12,d} "
            f"{stats.page_accesses:>14,d}"
        )
    print(
        "\nHLMJ (and even plain RU) retrieve orders of magnitude more"
        "\ncandidates: their schedules chew through the dense carrier"
        "\nwindows before the sparse signature windows can raise the"
        "\nlower bound — RU-COST consumes the sparse queues first."
    )


if __name__ == "__main__":
    main()
