"""Chaos / metamorphic exactness harness (``python -m repro chaos``).

Every guarantee this library makes is a *relation* between runs — an
engine agrees with brute force, a degraded run under-reports but never
lies, a partial result's certificate is sound — which makes the whole
stack checkable metamorphically: generate seeded random databases and
queries, run randomized-but-reproducible combinations of fault
schedules x budgets x deadlines x cancellation across all engines, and
cross-check the relations against SeqScan-equivalent ground truth
(:func:`repro.core.reference.brute_force_topk`).

Scenarios
---------
``parity``
    No faults, no limits: every engine must agree with brute force
    exactly, and a run under an *unlimited* :class:`ExecutionControl`
    must be byte-identical (top-k and ``NUM_IO``) to a run with no
    control at all — the control plane must cost nothing when unused.
``budget-pages`` / ``budget-candidates`` / ``deadline`` / ``cancel``
    A limit that may trip mid-query.  Completed runs must be exact;
    interrupted runs must return a :class:`~repro.engines.base.
    PartialResult` whose certificate is *sound*: no ground-truth top-k
    member strictly below the certified bar may be missing from the
    partial answer, every reported distance must be the true distance,
    and ranked prefixes may never beat brute force.
``faults-transient``
    Injected transient read failures within the retry budget: the run
    must recover and stay *exact* (faults are invisible to results).
``faults-degrade``
    Permanently corrupted data pages under ``on_fault="degrade"``:
    results must be well-formed, honestly flagged, and every reported
    distance must still be a true distance (degradation may omit,
    never fabricate).
``circuit``
    A persistently failing page region behind a circuit breaker: the
    query must complete degraded, and once the breaker opens it must
    reject fetches instead of hammering the device.

All randomness flows from ``random.Random(f"{seed}:{iteration}")`` and
``numpy`` generators seeded from it, so a failing iteration replays
exactly from its printed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.api import SubsequenceDatabase
from repro.control import CancellationToken, Deadline, QueryBudget
from repro.core.clock import FakeClock
from repro.core.reference import brute_force_topk
from repro.core.results import Match
from repro.engines.base import PartialResult, SearchResult
from repro.storage.buffer import RetryPolicy
from repro.storage.circuit import CircuitBreaker
from repro.storage.faults import (
    CORRUPT,
    TRANSIENT,
    FaultInjector,
    FaultSpec,
)
from repro.storage.page import PageKind

#: Distance slack for float comparisons (DTW sums differ across
#: evaluation orders by strictly less than this on these data sizes).
_EPS = 1e-6

SCENARIOS = (
    "parity",
    "budget-pages",
    "budget-candidates",
    "deadline",
    "cancel",
    "faults-transient",
    "faults-degrade",
    "circuit",
)

_ENGINES = ("seqscan", "hlmj", "ru", "ru-cost")


@dataclass
class ChaosFailure:
    """One violated invariant, with enough context to replay it."""

    iteration: int
    scenario: str
    engine: str
    message: str

    def __str__(self) -> str:
        return (
            f"iteration {self.iteration} [{self.scenario}/{self.engine}]: "
            f"{self.message}"
        )


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` campaign."""

    seed: int
    iterations: int = 0
    #: Invariant checks evaluated (each engine x relation counts one).
    checks: int = 0
    #: Queries that returned a PartialResult (interrupt paths covered).
    partials: int = 0
    scenario_counts: Dict[str, int] = field(default_factory=dict)
    failures: List[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


class _Iteration:
    """One seeded database + query + ground truth, shared across engines."""

    def __init__(self, seed: int, iteration: int) -> None:
        self.iteration = iteration
        self.rng = random.Random(f"{seed}:{iteration}")
        self.scenario = self.rng.choice(SCENARIOS)
        self.omega = self.rng.choice((8, 16))
        self.with_psm = self.rng.random() < 0.25
        self.np_rng = np.random.default_rng(
            [seed & 0x7FFFFFFF, iteration, 0xC4A05]
        )

    def build_db(self, **db_kwargs: object) -> SubsequenceDatabase:
        db = SubsequenceDatabase(
            omega=self.omega,
            features=4,
            page_size=1024,
            buffer_fraction=0.1,
            **db_kwargs,  # type: ignore[arg-type]
        )
        injector = db.fault_injector
        if injector is not None:
            injector.enabled = False  # keep the build phase clean
        for sid in range(2):
            length = int(self.np_rng.integers(280, 700))
            db.insert(sid, self.np_rng.standard_normal(length).cumsum())
        db.build(psm=self.with_psm)
        if injector is not None:
            injector.enabled = True
        return db

    def make_query(self, db: SubsequenceDatabase) -> np.ndarray:
        min_len = 2 * self.omega - 1
        length = int(self.rng.randint(min_len, min_len + 2 * self.omega))
        # Round down to a multiple of omega so PSM's disjoint join
        # windows tile the query exactly; still >= min_len.
        length = max(min_len, (length // self.omega) * self.omega)
        if self.rng.random() < 0.5:
            sid = self.rng.choice(list(db.store.sequence_ids()))
            start = self.rng.randint(0, db.store.length(sid) - length)
            return db.store.peek_subsequence(sid, start, length).copy()
        return self.np_rng.standard_normal(length).cumsum()

    def engines(self) -> Tuple[str, ...]:
        if self.with_psm:
            return _ENGINES + ("psm",)
        return _ENGINES


def _distance_table(gold: List[Match]) -> Dict[Tuple[int, int], float]:
    return {(match.sid, match.start): match.distance for match in gold}


def _check_reported_distances(
    result: SearchResult, truth: Dict[Tuple[int, int], float]
) -> Optional[str]:
    """Every reported match must be a real subsequence at its true
    distance — no run, however degraded or interrupted, may fabricate."""
    for match in result.matches:
        true_distance = truth.get((match.sid, match.start))
        if true_distance is None:
            return (
                f"match ({match.sid},{match.start}) does not exist in "
                f"ground truth"
            )
        if abs(match.distance - true_distance) > _EPS:
            return (
                f"match ({match.sid},{match.start}) reported "
                f"{match.distance:.9f}, true {true_distance:.9f}"
            )
    for first, second in zip(result.matches, result.matches[1:]):
        if second.distance < first.distance - _EPS:
            return "matches are not sorted best-first"
    return None


def _check_prefix(
    result: SearchResult, gold: List[Match]
) -> Optional[str]:
    """The i-th best reported distance can never beat the i-th best
    true distance (reported distances are true, so beating brute force
    is impossible for an honest run)."""
    for position, match in enumerate(result.matches):
        if position < len(gold):
            if match.distance < gold[position].distance - _EPS:
                return (
                    f"rank {position} reports {match.distance:.9f}, "
                    f"better than brute force "
                    f"{gold[position].distance:.9f}"
                )
    return None


def _check_exact(
    result: SearchResult, gold: List[Match], k: int
) -> Optional[str]:
    """Top-k distances must equal brute force exactly (ties by value)."""
    expected = [round(match.distance, 6) for match in gold[:k]]
    got = [round(match.distance, 6) for match in result.matches]
    if got != expected:
        return f"top-k distances {got} != brute force {expected}"
    return None


def _check_certificate(
    partial: PartialResult, gold: List[Match], k: int
) -> Optional[str]:
    """Certificate soundness (the heart of the harness).

    The contract: any candidate missing from the partial answer has
    true distance >= min(certificate, k-th reported distance).  So
    every ground-truth top-k member strictly below that bar must be
    present.  Members at or beyond the bar may legitimately be missing
    (they were unexamined, or displaced only by ties).
    """
    bar = partial.certificate
    if len(partial.matches) >= k:
        bar = min(bar, partial.matches[-1].distance)
    reported = {(match.sid, match.start) for match in partial.matches}
    for gold_match in gold[:k]:
        if gold_match.distance >= bar - _EPS:
            continue
        if (gold_match.sid, gold_match.start) not in reported:
            return (
                f"gold match ({gold_match.sid},{gold_match.start}) at "
                f"{gold_match.distance:.9f} is below the certified bar "
                f"{bar:.9f} but missing from the partial result "
                f"(reason={partial.reason!r}, "
                f"certificate={partial.certificate:.9f})"
            )
    return None


def run_chaos(
    seed: int = 0,
    iterations: int = 100,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the chaos campaign and return its report."""
    report = ChaosReport(seed=seed)

    def record(
        it: _Iteration, engine: str, message: Optional[str]
    ) -> None:
        report.checks += 1
        if message is not None:
            report.failures.append(
                ChaosFailure(
                    iteration=it.iteration,
                    scenario=it.scenario,
                    engine=engine,
                    message=message,
                )
            )

    for iteration in range(iterations):
        it = _Iteration(seed, iteration)
        report.iterations += 1
        report.scenario_counts[it.scenario] = (
            report.scenario_counts.get(it.scenario, 0) + 1
        )
        if progress is not None:
            progress(f"iteration {iteration}: {it.scenario}")
        _run_iteration(it, report, record)
    return report


def _run_iteration(
    it: _Iteration,
    report: ChaosReport,
    record: Callable[[_Iteration, str, Optional[str]], None],
) -> None:
    k = it.rng.randint(1, 8)
    scenario = it.scenario

    if scenario == "faults-transient":
        # Per-page fault budget stays below the retry attempt budget,
        # so every injected failure is recoverable and results must be
        # exact.
        injector = FaultInjector(seed=it.rng.randrange(2**31))
        injector.add(
            FaultSpec(
                fault=TRANSIENT,
                probability=it.rng.uniform(0.05, 0.3),
                max_per_page=2,
            )
        )
        db = it.build_db(
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=4),
        )
    elif scenario == "faults-degrade":
        injector = FaultInjector(seed=it.rng.randrange(2**31))
        injector.add(
            FaultSpec(
                fault=CORRUPT,
                page_kinds=frozenset({PageKind.DATA}),
                probability=1.0,
                max_triggers=it.rng.randint(1, 3),
            )
        )
        db = it.build_db(fault_injector=injector)
    elif scenario == "circuit":
        injector = FaultInjector(seed=it.rng.randrange(2**31))
        injector.add(
            FaultSpec(
                fault=TRANSIENT,
                page_kinds=frozenset({PageKind.DATA}),
                probability=0.8,
            )
        )
        breaker = CircuitBreaker(
            failure_threshold=0.5,
            window=8,
            min_samples=4,
            reset_timeout_s=10_000.0,  # stays open for the whole query
            clock=FakeClock(),
        )
        db = it.build_db(
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2),
            circuit_breaker=breaker,
        )
    else:
        db = it.build_db()

    query = it.make_query(db)
    rho = max(1, len(query) // 20)
    gold = brute_force_topk(db.store, query, k=10**6, rho=rho, p=db.p)
    truth = _distance_table(gold)
    deferred_ok = it.rng.random() < 0.4

    for engine in it.engines():
        deferred = deferred_ok and engine not in ("seqscan", "psm")
        kwargs: Dict[str, object] = {
            "k": k,
            "rho": rho,
            "method": engine,
            "deferred": deferred,
        }
        db.reset_cache()

        if scenario == "parity":
            result = db.search(query, **kwargs)  # type: ignore[arg-type]
            record(it, engine, _check_exact(result, gold, k))
            record(
                it,
                engine,
                "parity run is unexpectedly partial"
                if isinstance(result, PartialResult)
                else None,
            )
            # The control plane must be invisible when unlimited:
            # identical top-k and identical NUM_IO from a cold cache.
            db.reset_cache()
            controlled = db.search(
                query,
                budget=QueryBudget(),
                **kwargs,  # type: ignore[arg-type]
            )
            same = [m.distance for m in controlled.matches] == [
                m.distance for m in result.matches
            ] and (
                controlled.stats.page_accesses
                == result.stats.page_accesses
            )
            record(
                it,
                engine,
                None
                if same
                else (
                    f"unlimited-control run diverged: "
                    f"{controlled.stats.page_accesses} pages vs "
                    f"{result.stats.page_accesses}"
                ),
            )
            continue

        if scenario == "budget-pages":
            kwargs["budget"] = QueryBudget(
                max_page_accesses=it.rng.randint(0, 40)
            )
        elif scenario == "budget-candidates":
            kwargs["budget"] = QueryBudget(
                max_candidates=it.rng.randint(0, 60)
            )
        elif scenario == "deadline":
            clock = FakeClock(auto_advance=0.001)
            kwargs["deadline"] = Deadline.after(
                it.rng.uniform(0.0, 0.2), clock=clock
            )
        elif scenario == "cancel":
            kwargs["token"] = CancellationToken(
                cancel_after_checks=it.rng.randint(0, 200)
            )
        elif scenario in ("faults-degrade", "circuit"):
            kwargs["on_fault"] = "degrade"

        result = db.search(query, **kwargs)  # type: ignore[arg-type]
        record(it, engine, _check_reported_distances(result, truth))
        record(it, engine, _check_prefix(result, gold))

        if isinstance(result, PartialResult):
            report.partials += 1
            record(it, engine, _check_certificate(result, gold, k))
            record(
                it,
                engine,
                None
                if result.reason
                else "partial result carries no reason",
            )
        elif scenario in (
            "budget-pages",
            "budget-candidates",
            "deadline",
            "cancel",
            "faults-transient",
        ):
            # The limit never tripped (or every fault was retried
            # away): the run must then be exact.
            record(it, engine, _check_exact(result, gold, k))

        if scenario == "faults-degrade":
            fired = db.fault_injector is not None and (
                db.fault_injector.stats.corruptions > 0
            )
            record(
                it,
                engine,
                None
                if (not fired or result.degraded or not result.matches
                    or _check_exact(result, gold, k) is None)
                else "faults fired but result is neither exact nor "
                "flagged degraded",
            )

    if scenario == "circuit":
        breaker = db.circuit_breaker
        assert breaker is not None
        if breaker.stats.opens > 0 and breaker.stats.rejections == 0:
            record(
                it,
                "circuit",
                "breaker opened but never rejected a fetch",
            )
        else:
            record(it, "circuit", None)


# ----------------------------------------------------------------------
# Ingest / crash-recovery chaos (``repro chaos --suite ingest``)
# ----------------------------------------------------------------------

_INGEST_ENGINES = ("seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost")


@dataclass
class _IngestOp:
    """One planned mutation (pre-validated against the evolving sid set)."""

    op: str  # "append" | "extend" | "delete"
    sid: int
    values: Optional[np.ndarray] = None


class _IngestPlan:
    """A seeded base database plus a session/checkpoint schedule.

    The same plan is executed three times per iteration: a *dry run*
    (counting crash-point invocations and recording commit LSNs), a
    *crash run* (dying at one seeded crash point), and — after
    recovering the crash run — a WAL-less *oracle* applying exactly the
    sessions whose commits survived.  Byte-identical results between
    the recovered database and the oracle at every crash point is the
    committed-prefix guarantee.
    """

    def __init__(self, seed: int, iteration: int) -> None:
        self.iteration = iteration
        self.rng = random.Random(f"{seed}:ingest:{iteration}")
        self.omega = self.rng.choice((8, 16))
        self.with_psm = self.rng.random() < 0.25
        self.np_rng = np.random.default_rng(
            [seed & 0x7FFFFFFF, iteration, 0x1463E57]
        )
        self.base = [
            self.np_rng.standard_normal(
                int(self.np_rng.integers(280, 700))
            ).cumsum()
            for _ in range(2)
        ]
        # Plan sessions against a simulated sid set so every op is valid
        # when executed (ingest pre-validates before WAL-logging).
        live = {0, 1}
        next_sid = 2
        self.sessions: List[List[_IngestOp]] = []
        self.checkpoint_after: List[bool] = []
        for _ in range(self.rng.randint(2, 4)):
            ops: List[_IngestOp] = []
            for _ in range(self.rng.randint(1, 3)):
                choices = ["append"]
                if live:
                    choices.append("extend")
                if len(live) > 1:
                    choices.append("delete")
                kind = self.rng.choice(choices)
                if kind == "append":
                    values = self.np_rng.standard_normal(
                        int(self.np_rng.integers(40, 200))
                    ).cumsum()
                    ops.append(_IngestOp("append", next_sid, values))
                    live.add(next_sid)
                    next_sid += 1
                elif kind == "extend":
                    sid = self.rng.choice(sorted(live))
                    values = self.np_rng.standard_normal(
                        int(self.np_rng.integers(10, 100))
                    ).cumsum()
                    ops.append(_IngestOp("extend", sid, values))
                else:
                    sid = self.rng.choice(sorted(live))
                    ops.append(_IngestOp("delete", sid))
                    live.discard(sid)
            self.sessions.append(ops)
            self.checkpoint_after.append(self.rng.random() < 0.4)

    def build_base(self) -> SubsequenceDatabase:
        db = SubsequenceDatabase(
            omega=self.omega,
            features=4,
            page_size=1024,
            buffer_fraction=0.1,
        )
        for sid, values in enumerate(self.base):
            db.insert(sid, values)
        db.build(psm=self.with_psm)
        return db

    def run_sessions(
        self,
        db: SubsequenceDatabase,
        first: int = 0,
        last: Optional[int] = None,
        checkpoints: bool = True,
    ) -> List[Optional[int]]:
        """Execute sessions ``[first, last)``; returns their commit LSNs."""
        commit_lsns: List[Optional[int]] = []
        stop = len(self.sessions) if last is None else last
        for position in range(first, stop):
            with db.ingest() as session:
                for op in self.sessions[position]:
                    if op.op == "append":
                        session.append(op.sid, op.values)
                    elif op.op == "extend":
                        session.extend(op.sid, op.values)
                    else:
                        session.delete(op.sid)
            commit_lsns.append(session.commit_lsn)
            if checkpoints and self.checkpoint_after[position]:
                db.checkpoint()
        return commit_lsns

    def make_query(self) -> np.ndarray:
        length = 2 * self.omega
        return self.np_rng.standard_normal(length).cumsum()

    def engines(self) -> Tuple[str, ...]:
        if self.with_psm:
            return _INGEST_ENGINES + ("psm",)
        return _INGEST_ENGINES


def _search_fingerprint(
    db: SubsequenceDatabase, query: np.ndarray, k: int, engine: str
) -> List[Tuple[int, int, float, int]]:
    """Exact (sid, start, distance, NUM_IO) fingerprint of one search."""
    db.reset_cache()
    result = db.search(query, k=k, method=engine)
    return [
        (match.sid, match.start, match.distance, result.stats.page_accesses)
        for match in result.matches
    ]


def run_ingest_chaos(
    seed: int = 0,
    iterations: int = 100,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Crash-recovery chaos: die at a seeded WAL/checkpoint step, recover,
    and demand byte-identical equality with a never-crashed oracle.

    Per iteration: a dry run of the ingest plan counts every crash-point
    invocation ``S`` and records each session's commit LSN; a fresh
    crash run dies at crash point ``c ~ U[0, S)`` (with a torn partial
    frame half the time); :func:`repro.ingest.recover_database` rolls
    the durable root forward; the recovered LSN must be exactly a
    committed-session boundary (committed-prefix property); and every
    engine's top-k — matches, distances, *and* page-access counts — must
    equal a WAL-less oracle that applied exactly the surviving sessions.
    The remaining sessions are then applied to both databases and the
    comparison repeats, proving the recovered database ingests on.
    """
    import shutil
    import tempfile

    from repro.ingest import recover_database
    from repro.ingest import create_durable
    from repro.storage.wal import SimulatedCrash

    report = ChaosReport(seed=seed)

    def record(plan: _IngestPlan, scenario: str, engine: str,
               message: Optional[str]) -> None:
        report.checks += 1
        if message is not None:
            report.failures.append(
                ChaosFailure(
                    iteration=plan.iteration,
                    scenario=scenario,
                    engine=engine,
                    message=message,
                )
            )

    for iteration in range(iterations):
        plan = _IngestPlan(seed, iteration)
        report.iterations += 1
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
        try:
            _run_ingest_iteration(
                plan, report, record, workdir,
                create_durable, recover_database, SimulatedCrash,
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        if progress is not None:
            progress(f"iteration {iteration}: ingest")
    return report


def _run_ingest_iteration(
    plan: "_IngestPlan",
    report: ChaosReport,
    record: Callable[["_IngestPlan", str, str, Optional[str]], None],
    workdir: str,
    create_durable: Callable,
    recover_database: Callable,
    SimulatedCrash: type,
) -> None:
    import os

    # -- dry run: count crash-point invocations, learn commit LSNs ----
    dry_root = os.path.join(workdir, "dry")
    dry_db = plan.build_base()
    dry_wal = create_durable(dry_db, dry_root, sync=False)
    try:
        steps = 0

        def counting_hook(point: str) -> None:
            nonlocal steps
            steps += 1

        dry_wal.crash_hook = counting_hook
        commit_lsns = plan.run_sessions(dry_db)
        total_steps = steps
    finally:
        dry_wal.close()
    if total_steps == 0:  # pragma: no cover — plans always log something
        return

    # -- crash run: same plan, fresh root, die at step c ---------------
    crash_step = plan.rng.randrange(total_steps)
    torn = plan.rng.random() < 0.5
    crash_root = os.path.join(workdir, "crash")
    crash_db = plan.build_base()
    # The crash handle is deliberately never closed: it stands in for a
    # process that died mid-write, and close() would flush/fsync state
    # the "crash" is supposed to lose.
    crash_wal = create_durable(crash_db, crash_root, sync=False)  # repro: ignore[RS011]
    fired = {"point": None}
    count = {"n": 0}

    def crashing_hook(point: str) -> None:
        count["n"] += 1
        if count["n"] - 1 == crash_step:
            fired["point"] = point
            raise SimulatedCrash(
                point, torn_fraction=0.5 if torn else None
            )

    crash_wal.crash_hook = crashing_hook
    try:
        plan.run_sessions(crash_db)
    except SimulatedCrash:
        pass
    scenario = f"crash@{fired['point'] or 'end'}"
    report.scenario_counts[scenario] = (
        report.scenario_counts.get(scenario, 0) + 1
    )

    # -- recover and check the committed-prefix property ---------------
    recovered, recovery = recover_database(
        crash_root, psm=plan.with_psm, sync=False
    )
    effective = recovery.effective_lsn
    committed = [lsn for lsn in commit_lsns if lsn is not None]
    if effective != 0 and effective not in committed:
        record(
            plan, scenario, "recovery",
            f"effective LSN {effective} is not a session commit "
            f"boundary {committed}",
        )
        return
    record(plan, scenario, "recovery", None)
    survivors = sum(1 for lsn in committed if lsn <= effective)

    integrity = recovered.verify_integrity()
    record(
        plan, scenario, "scrub",
        None if integrity["ok"] else f"recovered database fails scrub: "
        f"{integrity}",
    )

    # -- oracle: never crashed, applied exactly the surviving sessions -
    oracle = plan.build_base()
    plan.run_sessions(oracle, first=0, last=survivors, checkpoints=False)

    query = plan.make_query()
    k = plan.rng.randint(1, 8)
    for engine in plan.engines():
        got = _search_fingerprint(recovered, query, k, engine)
        want = _search_fingerprint(oracle, query, k, engine)
        record(
            plan, scenario, engine,
            None if got == want else (
                f"post-recovery results diverge from oracle after "
                f"{survivors}/{len(committed)} sessions: {got} != {want}"
            ),
        )

    # -- the recovered database must ingest on ------------------------
    if survivors < len(plan.sessions):
        plan.run_sessions(
            recovered, first=survivors, checkpoints=False
        )
        plan.run_sessions(oracle, first=survivors, checkpoints=False)
        for engine in plan.engines():
            got = _search_fingerprint(recovered, query, k, engine)
            want = _search_fingerprint(oracle, query, k, engine)
            record(
                plan, scenario, f"{engine}+resume",
                None if got == want else (
                    f"post-resume results diverge from oracle: "
                    f"{got} != {want}"
                ),
            )


# ----------------------------------------------------------------------
# Service chaos (``repro chaos --suite serve``)
# ----------------------------------------------------------------------

SERVE_SCENARIOS = (
    "calm",
    "overload",
    "faults",
    "deadline",
    "cancel",
    "shutdown",
)

#: Wall-clock bound on any single response; exceeding it is recorded as
#: a hang (the campaign's zero-hang guarantee).
_SERVE_HANG_S = 30.0

#: Overload reasons a serve campaign may legitimately produce.
_SERVE_REASONS = frozenset(
    {
        "queue-full",
        "queue-shed",
        "tenant-rate-limit",
        "tenant-circuit-open",
        "shutdown",
    }
)


class _ServeIteration(_Iteration):
    """One seeded service campaign iteration (own seed stream)."""

    def __init__(self, seed: int, iteration: int) -> None:
        self.iteration = iteration
        self.rng = random.Random(f"{seed}:serve:{iteration}")
        self.scenario = self.rng.choice(SERVE_SCENARIOS)
        self.omega = self.rng.choice((8, 16))
        self.with_psm = False
        self.np_rng = np.random.default_rng(
            [seed & 0x7FFFFFFF, iteration, 0x5E12E]
        )


def run_serve_chaos(
    seed: int = 0,
    iterations: int = 100,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Many-client chaos against :class:`repro.serve.service.QueryService`.

    Per iteration: a seeded database plus a pool of concurrent client
    threads (>= 8) drive mixed k-NN / range / streaming requests through
    an in-process service while the scenario injects adversity —
    overload (tiny queue, tight tenant rate limits, mixed QoS), corrupt
    storage pages, racing deadlines on a fake clock, client-side
    cancellation, or a shutdown mid-flight.  Every outcome is checked
    against the single-query oracle:

    * a successful response must be exact (calm path) or an honestly
      flagged degraded/partial answer whose reported distances are true
      and whose certificate is sound (:func:`_check_certificate`);
    * every rejection must be a typed
      :class:`~repro.exceptions.ServiceOverloadedError` with a known
      reason and a non-negative retry-after (when present);
    * every submitted request must resolve within ``_SERVE_HANG_S``
      wall-clock seconds — zero crashes, zero hangs, zero silent drops.
    """
    import threading as _threading
    from concurrent.futures import TimeoutError as _FutureTimeout

    from repro.exceptions import ReproError, ServiceOverloadedError
    from repro.serve.protocol import QueryRequest
    from repro.serve.service import QueryService, ServiceConfig
    from repro.serve.tenants import QosClass, TenantPolicy, TenantRegistry

    report = ChaosReport(seed=seed)

    def record(
        it: _ServeIteration, label: str, message: Optional[str]
    ) -> None:
        report.checks += 1
        if message is not None:
            report.failures.append(
                ChaosFailure(
                    iteration=it.iteration,
                    scenario=it.scenario,
                    engine=label,
                    message=message,
                )
            )

    for iteration in range(iterations):
        it = _ServeIteration(seed, iteration)
        report.iterations += 1
        report.scenario_counts[it.scenario] = (
            report.scenario_counts.get(it.scenario, 0) + 1
        )
        if progress is not None:
            progress(f"serve iteration {iteration}: {it.scenario}")
        _run_serve_iteration(
            it,
            report,
            record,
            threading=_threading,
            FutureTimeout=_FutureTimeout,
            ReproError=ReproError,
            ServiceOverloadedError=ServiceOverloadedError,
            QueryRequest=QueryRequest,
            QueryService=QueryService,
            ServiceConfig=ServiceConfig,
            QosClass=QosClass,
            TenantPolicy=TenantPolicy,
            TenantRegistry=TenantRegistry,
        )
    return report


def _run_serve_iteration(
    it: "_ServeIteration",
    report: ChaosReport,
    record: Callable[["_ServeIteration", str, Optional[str]], None],
    *,
    threading,
    FutureTimeout,
    ReproError,
    ServiceOverloadedError,
    QueryRequest,
    QueryService,
    ServiceConfig,
    QosClass,
    TenantPolicy,
    TenantRegistry,
) -> None:
    scenario = it.scenario

    if scenario == "faults":
        injector = FaultInjector(seed=it.rng.randrange(2**31))
        injector.add(
            FaultSpec(
                fault=CORRUPT,
                page_kinds=frozenset({PageKind.DATA}),
                probability=1.0,
                max_triggers=it.rng.randint(1, 3),
            )
        )
        db = it.build_db(fault_injector=injector)
    else:
        db = it.build_db()

    clock = None
    if scenario == "deadline":
        clock = FakeClock(auto_advance=0.001)

    clients = 8
    requests_per_client = 2 if scenario != "overload" else 5
    if scenario == "overload":
        config = ServiceConfig(
            workers=2,
            queue_capacity=3,
            max_concurrent=2,
            retry_after_hint_s=0.05,
        )
    else:
        config = ServiceConfig(workers=4, queue_capacity=64)

    tenants = TenantRegistry(clock=clock)
    qos_cycle = (QosClass.INTERACTIVE, QosClass.STANDARD, QosClass.BATCH)
    for index in range(clients):
        rate = 4.0 if scenario == "overload" and index == 0 else 500.0
        burst = 2.0 if scenario == "overload" and index == 0 else 100.0
        tenants.set_policy(
            f"tenant-{index}",
            TenantPolicy(
                qos=qos_cycle[index % len(qos_cycle)],
                rate=rate,
                burst=burst,
                breaker_reset_s=10.0,
            ),
        )

    # Shared query pool: few distinct queries keep the brute-force
    # oracle affordable while every client still races the same data.
    queries = []
    for _ in range(3):
        query = it.make_query(db)
        rho = max(1, len(query) // 20)
        gold = brute_force_topk(db.store, query, k=10**6, rho=rho, p=db.p)
        queries.append((query, rho, gold, _distance_table(gold)))

    service = QueryService(db, config, tenants=tenants, clock=clock)
    service.start()
    outcomes: List[Tuple[str, object]] = []
    outcome_lock = threading.Lock()
    barrier = threading.Barrier(clients)
    stop_submitting = threading.Event()

    def client_loop(index: int) -> None:
        rng = random.Random(f"{it.rng.random()}:{index}")
        try:
            barrier.wait(timeout=_SERVE_HANG_S)
        except threading.BrokenBarrierError:
            return
        for turn in range(requests_per_client):
            if stop_submitting.is_set():
                break
            query, rho, gold, truth = queries[
                (index + turn) % len(queries)
            ]
            kind = rng.choice(("knn", "knn", "stream"))
            k = rng.randint(1, 6)
            timeout_s = None
            if it.scenario == "deadline":
                timeout_s = rng.uniform(0.01, 0.4)
            request = QueryRequest(
                kind=kind,
                query=tuple(float(v) for v in query),
                tenant=f"tenant-{index}",
                request_id=(index, turn),
                k=k,
                method=rng.choice(_ENGINES),
                rho=rho,
                timeout_s=timeout_s,
                on_fault="degrade" if it.scenario == "faults" else "raise",
            )
            label = f"{kind}/{request.method}"
            try:
                pending = service.submit(request)
                if it.scenario == "cancel" and rng.random() < 0.6:
                    pending.cancel()
                response = pending.result(timeout=_SERVE_HANG_S)
                outcome = ("response", (label, k, gold, truth, response))
            except FutureTimeout:
                outcome = ("hang", label)
            except ServiceOverloadedError as error:
                outcome = ("overload", (label, error))
            except ReproError as error:
                outcome = ("error", (label, error))
            except BaseException as error:  # noqa: BLE001
                outcome = ("crash", (label, error))
            with outcome_lock:
                outcomes.append(outcome)

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    if it.scenario == "shutdown":
        # Let some requests land, then yank the service mid-flight.
        deadline = it.rng.uniform(0.0, 0.02)
        threading.Event().wait(deadline)
        service.shutdown(drain=it.rng.random() < 0.5, timeout=_SERVE_HANG_S)
        stop_submitting.set()
    for thread in threads:
        thread.join(timeout=_SERVE_HANG_S)
    hung = [thread for thread in threads if thread.is_alive()]
    if it.scenario != "shutdown":
        service.shutdown(drain=True, timeout=_SERVE_HANG_S)

    record(
        it,
        "service",
        None if not hung else f"{len(hung)} client thread(s) hung",
    )

    for status, payload in outcomes:
        if status == "hang":
            record(it, str(payload), "request exceeded the hang bound")
        elif status == "crash":
            label, error = payload  # type: ignore[misc]
            record(
                it,
                str(label),
                f"untyped crash escaped the service: {error!r}",
            )
        elif status == "overload":
            label, error = payload  # type: ignore[misc]
            bad_reason = error.reason not in _SERVE_REASONS
            bad_retry = (
                error.retry_after_s is not None and error.retry_after_s < 0
            )
            record(
                it,
                str(label),
                None
                if not bad_reason and not bad_retry
                else (
                    f"malformed overload rejection: reason="
                    f"{error.reason!r} retry_after={error.retry_after_s!r}"
                ),
            )
        elif status == "error":
            label, error = payload  # type: ignore[misc]
            # Typed library errors are legitimate only on the faults
            # path (a corrupt page under on_fault="raise" would be one,
            # but serve chaos always degrades there).
            record(
                it,
                str(label),
                f"unexpected typed error: {type(error).__name__}: {error}",
            )
        else:
            label, k, gold, truth, response = payload  # type: ignore[misc]
            result = response.result
            record(it, str(label), _check_reported_distances(result, truth))
            record(it, str(label), _check_prefix(result, gold))
            if isinstance(result, PartialResult):
                report.partials += 1
                record(it, str(label), _check_certificate(result, gold, k))
                record(
                    it,
                    str(label),
                    None
                    if result.reason
                    else "partial result carries no reason",
                )
            elif not result.degraded and response.degradation_tier == 0:
                record(it, str(label), _check_exact(result, gold, k))


# ---------------------------------------------------------------------------
# Sharded-execution chaos (python -m repro chaos --suite shard)
# ---------------------------------------------------------------------------

SHARD_SCENARIOS = (
    "parity",
    "shard-crash",
    "shard-transient",
    "shard-corrupt",
    "budget",
    "deadline",
)


class _ShardIteration(_Iteration):
    """One seeded sharded-vs-oracle iteration (own seed stream)."""

    def __init__(self, seed: int, iteration: int) -> None:
        self.iteration = iteration
        self.rng = random.Random(f"{seed}:shard:{iteration}")
        self.scenario = self.rng.choice(SHARD_SCENARIOS)
        self.omega = self.rng.choice((8, 16))
        self.with_psm = False
        self.np_rng = np.random.default_rng(
            [seed & 0x7FFFFFFF, iteration, 0x54A8D]
        )
        self.num_shards = self.rng.randint(2, 4)
        self.policy = self.rng.choice(("hash", "range"))

    def build_pair(
        self,
        fault_injectors: Optional[Dict[int, FaultInjector]] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        """An unsharded fault-free oracle plus its sharded twin."""
        from repro.shard import ShardedDatabase

        oracle = SubsequenceDatabase(
            omega=self.omega,
            features=4,
            page_size=1024,
            buffer_fraction=0.1,
        )
        sdb = ShardedDatabase(
            num_shards=self.num_shards,
            policy=self.policy,
            executor="serial",
            omega=self.omega,
            features=4,
            page_size=1024,
            buffer_fraction=0.1,
            fault_injectors=fault_injectors,
            retry_policy=retry_policy,
        )
        for injector in (fault_injectors or {}).values():
            injector.enabled = False  # keep the build phase clean
        for sid in range(3):
            length = int(self.np_rng.integers(250, 550))
            values = self.np_rng.standard_normal(length).cumsum()
            oracle.insert(sid, values)
            sdb.insert(sid, values)
        oracle.build()
        sdb.build()
        for injector in (fault_injectors or {}).values():
            injector.enabled = True
        return oracle, sdb


def _shard_injectors(
    it: "_ShardIteration", fault: object, **spec_kwargs: object
) -> Dict[int, FaultInjector]:
    """Fault injectors for a random non-empty subset of shards."""
    injectors: Dict[int, FaultInjector] = {}
    while not injectors:
        for shard in range(it.num_shards):
            if it.rng.random() < 0.6:
                injector = FaultInjector(seed=it.rng.randrange(2**31))
                injector.add(
                    FaultSpec(
                        fault=fault,  # type: ignore[arg-type]
                        page_kinds=frozenset({PageKind.DATA}),
                        **spec_kwargs,  # type: ignore[arg-type]
                    )
                )
                injectors[shard] = injector
    return injectors


def run_shard_chaos(
    seed: int = 0,
    iterations: int = 100,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Sharded execution vs the single-process oracle, under adversity.

    Per iteration: identical data goes into an unsharded oracle and a
    2-4 shard :class:`~repro.shard.ShardedDatabase` (random policy),
    then the scenario attacks the sharded side only —

    ``parity``
        No faults: every engine's merged answer and the merged stream
        must equal brute force exactly, and merged ``NUM_IO`` must be
        the exact sum of the per-shard counters.
    ``shard-crash``
        One shard fails wholesale (worker loss).  Under ``degrade`` the
        survivors must answer: the result must be a
        :class:`~repro.engines.base.PartialResult` carrying the
        (vacuous but honest) certificate ``0.0``, every reported
        distance must be true, and the answer must be *exact for the
        surviving shards* — brute force restricted to alive sequences.
        Under ``raise`` the crash must propagate as ``StorageError``.
    ``shard-transient`` / ``shard-corrupt``
        Per-shard fault schedules on a random subset of shards.
        Transient faults within the retry budget must stay invisible
        (exact answers); corrupt pages under ``degrade`` may omit but
        never fabricate and never beat brute force.
    ``budget`` / ``deadline``
        Per-shard budgets or a shared fake-clock deadline interrupt a
        data-dependent subset of shards mid-merge; interrupted runs
        must return certified partials (:func:`_check_certificate`).
    """
    report = ChaosReport(seed=seed)

    def record(
        it: _Iteration, engine: str, message: Optional[str]
    ) -> None:
        report.checks += 1
        if message is not None:
            report.failures.append(
                ChaosFailure(
                    iteration=it.iteration,
                    scenario=it.scenario,
                    engine=engine,
                    message=message,
                )
            )

    for iteration in range(iterations):
        it = _ShardIteration(seed, iteration)
        report.iterations += 1
        report.scenario_counts[it.scenario] = (
            report.scenario_counts.get(it.scenario, 0) + 1
        )
        if progress is not None:
            progress(f"shard iteration {iteration}: {it.scenario}")
        _run_shard_iteration(it, report, record)
    return report


def _num_io_message(result: object) -> Optional[str]:
    merged = result.stats.page_accesses  # type: ignore[attr-defined]
    parts = sum(
        stats.page_accesses
        for stats in result.shard_stats.values()  # type: ignore[attr-defined]
    )
    if merged != parts:
        return f"merged NUM_IO {merged} != per-shard sum {parts}"
    return None


def _run_shard_iteration(
    it: "_ShardIteration",
    report: ChaosReport,
    record: Callable[["_ShardIteration", str, Optional[str]], None],
) -> None:
    from repro.exceptions import StorageError
    from repro.shard import REASON_SHARD_LOST

    k = it.rng.randint(1, 8)
    scenario = it.scenario

    injectors: Optional[Dict[int, FaultInjector]] = None
    retry: Optional[RetryPolicy] = None
    if scenario == "shard-transient":
        injectors = _shard_injectors(
            it,
            TRANSIENT,
            probability=it.rng.uniform(0.05, 0.3),
            max_per_page=2,
        )
        retry = RetryPolicy(max_attempts=4)
    elif scenario == "shard-corrupt":
        injectors = _shard_injectors(
            it,
            CORRUPT,
            probability=1.0,
            max_triggers=it.rng.randint(1, 2),
        )

    oracle, sdb = it.build_pair(
        fault_injectors=injectors, retry_policy=retry
    )
    try:
        query = it.make_query(oracle)
        rho = max(1, len(query) // 20)
        gold = brute_force_topk(
            oracle.store, query, k=10**6, rho=rho, p=oracle.p
        )
        truth = _distance_table(gold)

        if scenario == "parity":
            for engine in _ENGINES:
                result = sdb.search(query, k=k, rho=rho, method=engine)
                record(it, engine, _check_exact(result, gold, k))
                record(it, engine, _num_io_message(result))
                record(
                    it,
                    engine,
                    "parity run is unexpectedly partial"
                    if isinstance(result, PartialResult)
                    else None,
                )
            stream = sdb.iter_matches(query, k=k, rho=rho)
            emitted = list(stream)
            got = [round(m.distance, 6) for m in emitted]
            want = [round(m.distance, 6) for m in gold[:k]]
            record(
                it,
                "stream",
                None if got == want else f"stream {got} != {want}",
            )
            keys = [(m.distance, m.sid, m.start) for m in emitted]
            record(
                it,
                "stream",
                None
                if keys == sorted(keys)
                else "stream emission is not nondecreasing",
            )
            return

        if scenario == "shard-crash":
            assert sdb.shards is not None
            victim = it.rng.choice(sorted(sdb.shards))
            sdb.inject_shard_failure(victim)
            engine = it.rng.choice(_ENGINES)

            try:
                sdb.search(query, k=k, rho=rho, method=engine)
                record(it, engine, "crashed shard did not raise")
            except StorageError:
                record(it, engine, None)

            result = sdb.search(
                query, k=k, rho=rho, method=engine, on_fault="degrade"
            )
            report.partials += 1
            record(
                it,
                engine,
                None
                if isinstance(result, PartialResult)
                else "lost shard did not produce a PartialResult",
            )
            if isinstance(result, PartialResult):
                record(
                    it,
                    engine,
                    None
                    if result.certificate == 0.0
                    else (
                        f"lost shard certificate is "
                        f"{result.certificate!r}, not the vacuous 0.0"
                    ),
                )
                record(
                    it,
                    engine,
                    None
                    if REASON_SHARD_LOST in result.reason
                    else f"reason {result.reason!r} does not flag the loss",
                )
                record(it, engine, _check_certificate(result, gold, k))
            record(
                it,
                engine,
                None
                if result.degraded
                else "lost shard result is not flagged degraded",
            )
            record(it, engine, _check_reported_distances(result, truth))
            # The survivors completed normally, so the answer must be
            # exact for the sequences they hold.
            alive = {
                sid
                for sid, shard in sdb.plan.assignment.items()
                if shard != victim
            }
            alive_gold = [m for m in gold if m.sid in alive]
            record(it, engine, _check_exact(result, alive_gold, k))
            return

        if scenario in ("shard-transient", "shard-corrupt"):
            on_fault = (
                "raise" if scenario == "shard-transient" else "degrade"
            )
            for engine in ("hlmj", "ru", "ru-cost"):
                sdb.reset_cache()
                result = sdb.search(
                    query, k=k, rho=rho, method=engine, on_fault=on_fault
                )
                if scenario == "shard-transient":
                    # Recoverable faults must be invisible.
                    record(it, engine, _check_exact(result, gold, k))
                else:
                    record(
                        it, engine, _check_reported_distances(result, truth)
                    )
                    record(it, engine, _check_prefix(result, gold))
                    if isinstance(result, PartialResult):
                        report.partials += 1
                        record(
                            it, engine, _check_certificate(result, gold, k)
                        )
                    elif not result.degraded:
                        record(it, engine, _check_exact(result, gold, k))
            return

        # budget / deadline: interruption of a data-dependent shard
        # subset; certified partials or exact completions only.
        engine = it.rng.choice(("hlmj", "ru", "ru-cost"))
        kwargs: Dict[str, object] = {"k": k, "rho": rho, "method": engine}
        if scenario == "budget":
            if it.rng.random() < 0.5:
                kwargs["budget"] = QueryBudget(
                    max_page_accesses=it.rng.randint(0, 40)
                )
            else:
                kwargs["budget"] = QueryBudget(
                    max_candidates=it.rng.randint(0, 60)
                )
        else:
            clock = FakeClock(auto_advance=0.001)
            kwargs["deadline"] = Deadline.after(
                it.rng.uniform(0.0, 0.2), clock=clock
            )
        result = sdb.search(query, **kwargs)  # type: ignore[arg-type]
        record(it, engine, _check_reported_distances(result, truth))
        record(it, engine, _check_prefix(result, gold))
        if isinstance(result, PartialResult):
            report.partials += 1
            record(it, engine, _check_certificate(result, gold, k))
            record(
                it,
                engine,
                None
                if result.reason
                else "partial result carries no reason",
            )
            record(it, engine, _num_io_message(result))
        else:
            record(it, engine, _check_exact(result, gold, k))

        # The same interruption applied mid-merge to the streaming
        # path: the emitted prefix must stay ranked and certified.
        stream_kwargs = {
            key: value for key, value in kwargs.items() if key != "method"
        }
        stream = sdb.iter_matches(
            query, **stream_kwargs  # type: ignore[arg-type]
        )
        emitted = list(stream)
        keys = [(m.distance, m.sid, m.start) for m in emitted]
        record(
            it,
            "stream",
            None
            if keys == sorted(keys)
            else "interrupted stream emission is not nondecreasing",
        )
        if stream.interrupted:
            report.partials += 1
            shim = PartialResult(
                matches=emitted,
                stats=stream.stats,  # type: ignore[arg-type]
                reason=stream.reason,
                certificate=(
                    min(stream.certificate, emitted[-1].distance)
                    if emitted
                    else 0.0
                ),
            )
            record(it, "stream", _check_certificate(shim, gold, k))
    finally:
        sdb.close()
