"""DualMatch index construction.

The indexing side of the paper's framework (Section 3.1, following
DualMatch [17]): every data sequence is cut into **disjoint** windows of
size ``omega``; each window is PAA-transformed into an ``f``-dimensional
point and stored as a leaf entry ``(P(s_m), sid, m)`` of the R*-tree.

:class:`DualMatchIndex` bundles the tree with the windowing parameters and
the sequence store, which is everything an engine needs to run a query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.paa import paa, segment_length
from repro.exceptions import ConfigurationError
from repro.index.rstar import LeafRecord, RStarTree
from repro.storage.sequences import SequenceStore


@dataclass
class DualMatchIndex:
    """An R*-tree over PAA points of disjoint data windows.

    Attributes
    ----------
    tree:
        The R*-tree; leaf records are ``(sid, window_index)``.
    store:
        The paged sequence store the leaf records point back into.
    omega:
        Disjoint/sliding window size.
    features:
        PAA dimensionality ``f``.
    p:
        Norm order used for all distances.
    """

    tree: RStarTree
    store: SequenceStore
    omega: int
    features: int
    p: float = 2.0
    #: GeneralMatch data-window stride ``J`` (``omega`` = DualMatch).
    data_stride: Optional[int] = None
    _window_points: Optional[Dict[Tuple[int, int], np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.data_stride is None:
            self.data_stride = self.omega
        if self.data_stride < 1 or self.omega % self.data_stride != 0:
            raise ConfigurationError(
                f"data_stride {self.data_stride} must divide omega "
                f"{self.omega}"
            )

    def window_point_table(self) -> Dict[Tuple[int, int], np.ndarray]:
        """In-memory map ``(sid, window_index) -> PAA point``.

        HLMJ's *window-group distance* [12] needs random access to the
        transformed windows of a candidate's disjoint windows.  The
        original system keeps the transformed windows alongside the
        index; we mirror that with a lazily built table (no page I/O is
        charged — it is the same data the index leaves hold, resident
        as in the authors' implementation).
        """
        if self._window_points is None:
            self._window_points = {
                (entry.record.sid, entry.record.window_index): entry.low
                for entry in self.tree.iter_leaf_entries()
            }
        return self._window_points

    def note_window(self, record: LeafRecord, point: np.ndarray) -> None:
        """Record a newly indexed window in the lazy point table.

        Called by the ingest path after inserting a leaf entry so that a
        previously materialised :meth:`window_point_table` stays in sync
        (a ``None`` table will simply be rebuilt from the tree on first
        use, so nothing to do then).
        """
        if self._window_points is not None:
            self._window_points[
                (record.sid, record.window_index)
            ] = np.asarray(point, dtype=np.float64)

    def forget_sequence(self, sid: int) -> None:
        """Drop every cached window point of one sequence (on delete)."""
        if self._window_points is not None:
            for key in [k for k in self._window_points if k[0] == sid]:
                del self._window_points[key]

    @property
    def seg_len(self) -> int:
        """Raw values per PAA dimension (``omega / f``)."""
        return segment_length(self.omega, self.features)

    @property
    def num_indexed_windows(self) -> int:
        return len(self.tree)

    def window_values(self, record: LeafRecord) -> np.ndarray:
        """Raw values of the disjoint window a leaf record points at.

        Offline read (no I/O) — used by tests and diagnostics only; query
        engines never touch raw windows, they retrieve full candidates.
        """
        return self.store.peek_subsequence(
            record.sid, record.window_index * self.data_stride, self.omega
        )

    def describe(self) -> Dict[str, float]:
        """Index shape summary for reports (Table 2-style)."""
        return {
            "sequences": self.store.num_sequences,
            "total_values": self.store.total_values,
            "data_pages": self.store.total_data_pages,
            "indexed_windows": self.num_indexed_windows,
            "index_nodes": self.tree.node_count(),
            "tree_height": self.tree.height,
            "fanout": self.tree.max_entries,
        }


def build_index(
    store: SequenceStore,
    omega: int,
    features: int,
    p: float = 2.0,
    max_entries: Optional[int] = None,
    bulk: bool = True,
    data_stride: Optional[int] = None,
) -> DualMatchIndex:
    """Index every complete grid window of every stored sequence.

    ``data_stride`` (GeneralMatch's ``J``, default ``omega``) places
    data windows at every multiple of ``J``; it must divide ``omega``.
    ``J == omega`` is the paper's DualMatch configuration; smaller
    strides trade a larger index for tighter per-class bounds.

    Construction runs offline: sequence values are read without I/O
    accounting (the paper excludes index build from query metrics), but
    node page allocations and writes are still counted by the pager.

    ``bulk=True`` (default) packs the tree with Sort-Tile-Recursive;
    ``bulk=False`` exercises the one-at-a-time R* insertion path.
    """
    if omega < 1:
        raise ConfigurationError(f"omega must be >= 1, got {omega}")
    stride = omega if data_stride is None else data_stride
    if stride < 1 or omega % stride != 0:
        raise ConfigurationError(
            f"data_stride {stride} must divide omega {omega}"
        )
    segment_length(omega, features)  # validates the pairing
    # The tree shares the store's pager and buffer so that query-time
    # node reads and data reads compete for the same buffer pool, as on
    # the paper's single-disk testbed.
    tree = RStarTree(
        pager=store.pager,
        buffer=store.buffer,
        dimensions=features,
        max_entries=max_entries,
    )
    points = []
    records = []
    for sid, values in store.iter_sequences():
        if values.size < omega:
            continue
        num_windows = (values.size - omega) // stride + 1
        for window_index in range(num_windows):
            start = window_index * stride
            window = values[start : start + omega]
            points.append(paa(window, features))
            records.append(LeafRecord(sid=sid, window_index=window_index))
    if bulk and points:
        tree.bulk_load(points, records)
    else:
        for point, record in zip(points, records):
            tree.insert(point, record)
    return DualMatchIndex(
        tree=tree,
        store=store,
        omega=omega,
        features=features,
        p=p,
        data_stride=stride,
    )
