"""Bloom filter used by the PSM baseline's join signatures.

Xin et al. [22] screen candidate join states with signatures kept in a
bloom filter; the SIGMOD'11 paper reports that computing those signatures
requires prohibitive numbers of bloom filter calls once more than three
indexes are joined.  The filter counts every :meth:`might_contain`
invocation so the benchmarks can reproduce that blow-up (Experiment 6).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.exceptions import ConfigurationError

_SEEDS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9)


class BloomFilter:
    """A counting-instrumented bloom filter over hashable keys.

    Parameters
    ----------
    num_bits:
        Size of the bit array.  Rounded up to at least 64.
    num_hashes:
        Number of hash probes per key (1–3 supported; 3 default).
    """

    def __init__(self, num_bits: int, num_hashes: int = 3) -> None:
        if num_bits < 1:
            raise ConfigurationError(f"num_bits must be >= 1, got {num_bits}")
        if not 1 <= num_hashes <= len(_SEEDS):
            raise ConfigurationError(
                f"num_hashes must be in [1, {len(_SEEDS)}], got {num_hashes}"
            )
        self._num_bits = max(64, num_bits)
        self._num_hashes = num_hashes
        self._bits = 0
        self.items_added = 0
        self.probe_calls = 0

    @property
    def num_bits(self) -> int:
        return self._num_bits

    def _positions(self, key: Hashable) -> Iterable[int]:
        base = hash(key) & 0xFFFFFFFFFFFFFFFF
        for seed in _SEEDS[: self._num_hashes]:
            mixed = (base ^ seed) * 0x2545F4914F6CDD1D
            mixed &= 0xFFFFFFFFFFFFFFFF
            yield mixed % self._num_bits

    def add(self, key: Hashable) -> None:
        """Insert a key."""
        for position in self._positions(key):
            self._bits |= 1 << position
        self.items_added += 1

    def might_contain(self, key: Hashable) -> bool:
        """Probabilistic membership probe (counted).

        Returns ``False`` only when the key was definitely never added.
        """
        self.probe_calls += 1
        for position in self._positions(key):
            if not (self._bits >> position) & 1:
                return False
        return True

    def to_state(self) -> dict:
        """JSON-serializable snapshot (persisted with PSM's sliding index).

        Key hashing is deterministic for the integer-tuple keys PSM
        uses (``PYTHONHASHSEED`` only perturbs str/bytes hashing), so a
        restored filter answers probes identically across processes.
        """
        return {
            "num_bits": self._num_bits,
            "num_hashes": self._num_hashes,
            "bits_hex": format(self._bits, "x"),
            "items_added": self.items_added,
        }

    @classmethod
    def from_state(cls, state: dict) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_state` output."""
        bloom = cls(
            num_bits=int(state["num_bits"]),
            num_hashes=int(state["num_hashes"]),
        )
        bloom._bits = int(state["bits_hex"], 16)
        bloom.items_added = int(state.get("items_added", 0))
        return bloom

    @classmethod
    def with_capacity(cls, expected_items: int, bits_per_item: int = 10) -> "BloomFilter":
        """Size a filter for an expected item count (~1 % FPR at 10 bpi)."""
        if expected_items < 1:
            raise ConfigurationError(
                f"expected_items must be >= 1, got {expected_items}"
            )
        return cls(num_bits=expected_items * bits_per_item)
