"""A from-scratch R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990).

The paper stores each disjoint data window, PAA-transformed into an
``f``-dimensional point, as a leaf entry of an R*-tree whose nodes occupy
one disk page each.  This implementation follows the published R*
heuristics:

* **ChooseSubtree** — minimum overlap enlargement at the level above the
  leaves, minimum area enlargement higher up (ties on area, then fan-in).
* **Split** — axis chosen by minimum total margin over the candidate
  distributions; distribution chosen by minimum overlap, then area.
* **Forced reinsertion** — on first overflow per level per insertion, the
  30 % of entries farthest from the node center are removed and
  re-inserted, improving packing.

Nodes live in pages of the shared :class:`~repro.storage.pager.Pager`;
query-time node reads go through the buffer pool (counted), while build
runs offline through :meth:`Pager.peek` (the paper also excludes index
construction from its query metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, IndexError_
from repro.index import geometry
from repro.index.geometry import Rect
from repro.obs.tracer import Tracer
from repro.storage.buffer import BufferPool
from repro.storage.page import PageKind, index_entries_per_page
from repro.storage.pager import Pager

REINSERT_FRACTION = 0.3
MIN_FILL_FRACTION = 0.4


class LeafRecord(NamedTuple):
    """Payload of a leaf entry: which disjoint window the point encodes."""

    sid: int
    window_index: int


@dataclass
class Entry:
    """One slot of a node: an MBR plus either a child page or a record."""

    low: np.ndarray
    high: np.ndarray
    child_page: Optional[int] = None
    record: Optional[LeafRecord] = None

    @property
    def rect(self) -> Rect:
        return self.low, self.high

    @property
    def is_leaf_entry(self) -> bool:
        return self.record is not None


@dataclass
class RStarNode:
    """A tree node; ``level`` 0 means leaf."""

    level: int
    entries: List[Entry] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        if not self.entries:
            raise IndexError_("cannot take the MBR of an empty node")
        return geometry.union_all(entry.rect for entry in self.entries)


class RStarTree:
    """R*-tree over ``dimensions``-dimensional points.

    Parameters
    ----------
    pager:
        Shared page store; every node occupies one page.
    buffer:
        Buffer pool used for counted query-time node reads.
    dimensions:
        Dimensionality of indexed points (the PAA feature count ``f``).
    max_entries:
        Node fan-out.  Defaults to the page-geometry fan-out
        (:func:`~repro.storage.page.index_entries_per_page`), which the
        paper calls the *blocking factor*.
    """

    def __init__(
        self,
        pager: Pager,
        buffer: BufferPool,
        dimensions: int,
        max_entries: Optional[int] = None,
    ) -> None:
        if dimensions < 1:
            raise ConfigurationError(
                f"dimensions must be >= 1, got {dimensions}"
            )
        self._pager = pager
        self._buffer = buffer
        self.dimensions = dimensions
        self.max_entries = (
            index_entries_per_page(dimensions, pager.page_size)
            if max_entries is None
            else max_entries
        )
        if self.max_entries < 4:
            raise ConfigurationError(
                f"max_entries must be >= 4, got {self.max_entries}"
            )
        self.min_entries = max(2, int(self.max_entries * MIN_FILL_FRACTION))
        self._size = 0
        root = RStarNode(level=0)
        # Offline construction (pre-seal, pre-WAL by definition).
        self.root_page = self._pager.allocate(PageKind.INDEX_LEAF, root)  # repro: ignore[RS009]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def blocking_factor(self) -> int:
        """Entries per index page — RU-COST's default lookahead ``h``."""
        return self.max_entries

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        return self._peek(self.root_page).level + 1

    @property
    def tracer(self) -> "Tracer":
        """The buffer pool's tracer (one observability plane per store)."""
        return self._buffer.tracer

    def read_node(self, page_id: int) -> RStarNode:
        """Query-time node read through the buffer pool (counted I/O).

        The ``index.probe`` span is read off the buffer pool's tracer so
        a tracer attached after construction (``db.set_tracer``) still
        covers every probe; any ``buffer.fetch`` the probe misses into
        nests inside it.
        """
        tracer = self._buffer.tracer
        if tracer.enabled:
            with tracer.span("index.probe", page=page_id):
                return self._buffer.get(page_id)
        return self._buffer.get(page_id)

    def _peek(self, page_id: int) -> RStarNode:
        """Offline node read (no I/O accounting) for build paths."""
        return self._pager.peek(page_id)

    def _write_back(self, page_id: int) -> None:
        """Persist an in-place node mutation on a *sealed* pager.

        During offline build the pager is unsealed and checksums do not
        exist yet, so this is a no-op there (keeping build-time write
        counters byte-identical to the pre-ingest library).  After
        ``seal()`` every node mutation must write through so the page's
        checksum stays current — otherwise the next verified read would
        report phantom corruption.
        """
        if self._pager.sealed:
            # Structure maintenance beneath insert()/delete(); the
            # mutation intent is WAL-logged at the IngestSession layer.
            self._pager.write(page_id, self._peek(page_id))  # repro: ignore[RS009]

    def _free_page(self, page_id: int) -> None:
        """Release a condensed-away node page (and its buffer frame)."""
        self._buffer.invalidate(page_id)
        # Structure maintenance beneath delete(); WAL-logged upstream.
        self._pager.free(page_id)  # repro: ignore[RS009]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float], record: LeafRecord) -> None:
        """Insert one point with its record (R* insert with reinsertion)."""
        array = np.ascontiguousarray(point, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise IndexError_(
                f"point shape {array.shape} does not match index "
                f"dimensionality ({self.dimensions},)"
            )
        entry = Entry(low=array, high=array, record=record)
        self._insert_entry(entry, target_level=0, reinserted_levels=set())
        self._size += 1

    def _insert_entry(
        self, entry: Entry, target_level: int, reinserted_levels: Set[int]
    ) -> None:
        path = self._choose_path(entry.rect, target_level)
        node_page = path[-1]
        node = self._peek(node_page)
        node.entries.append(entry)
        self._write_back(node_page)
        self._handle_overflow(path, reinserted_levels)

    def _choose_path(self, rect: Rect, target_level: int) -> List[int]:
        """Page ids from the root down to the chosen node at target level."""
        path = [self.root_page]
        node = self._peek(self.root_page)
        while node.level > target_level:
            chosen = self._choose_subtree(node, rect)
            path.append(chosen.child_page)  # type: ignore[arg-type]
            node = self._peek(chosen.child_page)  # type: ignore[arg-type]
        return path

    #: R*'s published optimisation: evaluate overlap enlargement only for
    #: the entries with the smallest area enlargement.
    _OVERLAP_CANDIDATES = 32

    def _choose_subtree(self, node: RStarNode, rect: Rect) -> Entry:
        lows = np.stack([entry.low for entry in node.entries])
        highs = np.stack([entry.high for entry in node.entries])
        grown_lows = np.minimum(lows, rect[0])
        grown_highs = np.maximum(highs, rect[1])
        areas = np.prod(highs - lows, axis=1)
        enlargements = np.prod(grown_highs - grown_lows, axis=1) - areas

        if node.level > 1:
            # Minimise area enlargement; break ties on smaller area.
            order = np.lexsort((areas, enlargements))
            return node.entries[int(order[0])]

        # Children are leaves: minimise overlap enlargement among the
        # least-enlarging candidates, breaking ties on enlargement, area.
        candidate_order = np.lexsort((areas, enlargements))
        candidates = candidate_order[: self._OVERLAP_CANDIDATES]
        best_index = int(candidates[0])
        best_key = None
        for raw_index in candidates:
            index = int(raw_index)
            before = self._total_overlap(
                lows[index], highs[index], lows, highs, index
            )
            after = self._total_overlap(
                grown_lows[index], grown_highs[index], lows, highs, index
            )
            key = (
                after - before,
                float(enlargements[index]),
                float(areas[index]),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return node.entries[best_index]

    @staticmethod
    def _total_overlap(
        low: np.ndarray,
        high: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        skip_index: int,
    ) -> float:
        inter_low = np.maximum(low, lows)
        inter_high = np.minimum(high, highs)
        sides = np.clip(inter_high - inter_low, 0.0, None)
        volumes = np.prod(sides, axis=1)
        return float(np.sum(volumes) - volumes[skip_index])

    def _handle_overflow(
        self, path: List[int], reinserted_levels: Set[int]
    ) -> None:
        """Walk the path bottom-up, splitting or reinserting overflowed
        nodes and refreshing ancestor MBRs."""
        for depth in range(len(path) - 1, -1, -1):
            node_page = path[depth]
            node = self._peek(node_page)
            if len(node.entries) > self.max_entries:
                is_root = node_page == self.root_page
                if not is_root and node.level not in reinserted_levels:
                    reinserted_levels.add(node.level)
                    self._reinsert(node_page, path[:depth], reinserted_levels)
                else:
                    self._split(node_page, path[:depth])
            if depth > 0:
                self._refresh_parent_mbr(path[depth - 1], node_page)

    def _refresh_parent_mbr(self, parent_page: int, child_page: int) -> None:
        parent = self._peek(parent_page)
        child = self._peek(child_page)
        if not child.entries:
            return
        low, high = child.mbr()
        for entry in parent.entries:
            if entry.child_page == child_page:
                entry.low = low
                entry.high = high
                self._write_back(parent_page)
                return

    def _reinsert(
        self,
        node_page: int,
        ancestor_path: List[int],
        reinserted_levels: Set[int],
    ) -> None:
        node = self._peek(node_page)
        node_rect = node.mbr()
        count = max(1, int(len(node.entries) * REINSERT_FRACTION))
        # Farthest-from-center entries leave the node ("far reinsert").
        node.entries.sort(
            key=lambda entry: geometry.center_distance_sq(
                entry.rect, node_rect
            )
        )
        evicted = node.entries[-count:]
        del node.entries[-count:]
        # Structure maintenance beneath insert(); WAL-logged upstream.
        self._pager.write(node_page, node)  # repro: ignore[RS009]
        # Refresh ancestors before reinserting so choose-subtree sees
        # tightened MBRs.
        for depth in range(len(ancestor_path) - 1, -1, -1):
            child = (
                ancestor_path[depth + 1]
                if depth + 1 < len(ancestor_path)
                else node_page
            )
            self._refresh_parent_mbr(ancestor_path[depth], child)
        for entry in evicted:
            self._insert_entry(entry, node.level, reinserted_levels)

    def _split(self, node_page: int, ancestor_path: List[int]) -> None:
        node = self._peek(node_page)
        group_a, group_b = self._choose_split(node.entries)
        node.entries = group_a
        sibling = RStarNode(level=node.level, entries=group_b)
        kind = PageKind.INDEX_LEAF if node.is_leaf else PageKind.INDEX_INTERNAL
        # Structure maintenance beneath insert(); WAL-logged upstream.
        sibling_page = self._pager.allocate(kind, sibling)  # repro: ignore[RS009]
        self._pager.write(node_page, node)  # repro: ignore[RS009]
        if node_page == self.root_page:
            new_root = RStarNode(level=node.level + 1)
            low_a, high_a = node.mbr()
            low_b, high_b = sibling.mbr()
            new_root.entries = [
                Entry(low=low_a, high=high_a, child_page=node_page),
                Entry(low=low_b, high=high_b, child_page=sibling_page),
            ]
            self.root_page = self._pager.allocate(  # repro: ignore[RS009]
                PageKind.INDEX_INTERNAL, new_root
            )
            return
        parent_page = ancestor_path[-1]
        parent = self._peek(parent_page)
        low_b, high_b = sibling.mbr()
        parent.entries.append(
            Entry(low=low_b, high=high_b, child_page=sibling_page)
        )
        self._refresh_parent_mbr(parent_page, node_page)
        # Parent overflow, if any, is handled by the caller's bottom-up walk.

    def _choose_split(
        self, entries: List[Entry]
    ) -> Tuple[List[Entry], List[Entry]]:
        """R* split: margin-minimal axis, then overlap-minimal distribution.

        All candidate distributions along an ordering share prefix/suffix
        MBRs, so they are evaluated with running min/max scans instead of
        repeated unions.
        """
        m = self.min_entries
        lows = np.stack([entry.low for entry in entries])
        highs = np.stack([entry.high for entry in entries])
        count = len(entries)

        best_axis = 0
        best_axis_margin = None
        for axis in range(self.dimensions):
            margin_sum = 0.0
            for ordering in self._axis_orderings(lows, highs, axis):
                margin_sum += self._ordering_margin_sum(
                    lows[ordering], highs[ordering], m
                )
            if best_axis_margin is None or margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis = axis

        best_key = None
        best_split: Optional[Tuple[np.ndarray, int]] = None
        for ordering in self._axis_orderings(lows, highs, best_axis):
            ordered_lows = lows[ordering]
            ordered_highs = highs[ordering]
            prefix_low, prefix_high, suffix_low, suffix_high = (
                self._running_mbrs(ordered_lows, ordered_highs)
            )
            for split_at in range(m, count - m + 1):
                rect_a = (prefix_low[split_at - 1], prefix_high[split_at - 1])
                rect_b = (suffix_low[split_at], suffix_high[split_at])
                key = (
                    geometry.overlap_area(rect_a, rect_b),
                    geometry.area(rect_a) + geometry.area(rect_b),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_split = (ordering, split_at)
        assert best_split is not None
        ordering, split_at = best_split
        group_a = [entries[int(i)] for i in ordering[:split_at]]
        group_b = [entries[int(i)] for i in ordering[split_at:]]
        return group_a, group_b

    @staticmethod
    def _axis_orderings(
        lows: np.ndarray, highs: np.ndarray, axis: int
    ) -> List[np.ndarray]:
        return [np.argsort(lows[:, axis]), np.argsort(highs[:, axis])]

    @classmethod
    def _ordering_margin_sum(
        cls, ordered_lows: np.ndarray, ordered_highs: np.ndarray, m: int
    ) -> float:
        count = ordered_lows.shape[0]
        prefix_low, prefix_high, suffix_low, suffix_high = cls._running_mbrs(
            ordered_lows, ordered_highs
        )
        total = 0.0
        for split_at in range(m, count - m + 1):
            total += float(
                np.sum(prefix_high[split_at - 1] - prefix_low[split_at - 1])
            )
            total += float(np.sum(suffix_high[split_at] - suffix_low[split_at]))
        return total

    @staticmethod
    def _running_mbrs(
        ordered_lows: np.ndarray, ordered_highs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Prefix and suffix running MBRs along one ordering."""
        prefix_low = np.minimum.accumulate(ordered_lows, axis=0)
        prefix_high = np.maximum.accumulate(ordered_highs, axis=0)
        suffix_low = np.minimum.accumulate(ordered_lows[::-1], axis=0)[::-1]
        suffix_high = np.maximum.accumulate(ordered_highs[::-1], axis=0)[::-1]
        return prefix_low, prefix_high, suffix_low, suffix_high

    # ------------------------------------------------------------------
    # Deletion (classic R-tree CondenseTree with R* reinsertion)
    # ------------------------------------------------------------------

    def delete(self, point: Sequence[float], record: LeafRecord) -> bool:
        """Remove one leaf record; returns ``False`` when absent.

        Follows Guttman's delete: locate the leaf holding the record,
        remove the entry, then **CondenseTree** — ancestors that fall
        below the minimum fill are eliminated bottom-up, their surviving
        entries re-inserted at their original level (via the R* insert
        path, so reinsertion may trigger splits/forced reinserts), and
        an internal root left with a single child collapses, shrinking
        the tree.  Condensed-away node pages are freed.
        """
        array = np.ascontiguousarray(point, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise IndexError_(
                f"point shape {array.shape} does not match index "
                f"dimensionality ({self.dimensions},)"
            )
        path = self._find_leaf(self.root_page, array, record)
        if path is None:
            return False
        leaf_page = path[-1]
        leaf = self._peek(leaf_page)
        leaf.entries = [
            entry
            for entry in leaf.entries
            if not (
                entry.record == record and np.array_equal(entry.low, array)
            )
        ]
        self._write_back(leaf_page)
        self._condense(path)
        self._shrink_root()
        self._size -= 1
        return True

    def _find_leaf(
        self, page_id: int, array: np.ndarray, record: LeafRecord
    ) -> Optional[List[int]]:
        """Root-to-leaf page path of the entry holding ``record``."""
        node = self._peek(page_id)
        if node.is_leaf:
            for entry in node.entries:
                if entry.record == record and np.array_equal(
                    entry.low, array
                ):
                    return [page_id]
            return None
        for entry in node.entries:
            low, high = entry.rect
            if np.all(low <= array) and np.all(array <= high):
                below = self._find_leaf(entry.child_page, array, record)  # type: ignore[arg-type]
                if below is not None:
                    return [page_id, *below]
        return None

    def _condense(self, path: List[int]) -> None:
        """Eliminate underfull nodes bottom-up, reinserting orphans."""
        orphans: List[Tuple[int, List[Entry]]] = []
        for depth in range(len(path) - 1, 0, -1):
            node_page = path[depth]
            parent_page = path[depth - 1]
            node = self._peek(node_page)
            if len(node.entries) < self.min_entries:
                parent = self._peek(parent_page)
                parent.entries = [
                    entry
                    for entry in parent.entries
                    if entry.child_page != node_page
                ]
                self._write_back(parent_page)
                if node.entries:
                    orphans.append((node.level, list(node.entries)))
                self._free_page(node_page)
            else:
                self._refresh_parent_mbr(parent_page, node_page)
        reinserted: Set[int] = set()
        for level, entries in orphans:
            for entry in entries:
                self._insert_entry(
                    entry, target_level=level, reinserted_levels=reinserted
                )

    def _shrink_root(self) -> None:
        """Collapse an internal root down to its single surviving child."""
        while True:
            root = self._peek(self.root_page)
            if root.is_leaf:
                return
            if len(root.entries) == 1:
                child_page = root.entries[0].child_page
                old_root = self.root_page
                self.root_page = child_page  # type: ignore[assignment]
                self._free_page(old_root)
                continue
            if not root.entries:
                # Every subtree condensed away: become an empty leaf.
                root.level = 0
                self._write_back(self.root_page)
            return

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------

    def bulk_load(
        self,
        points: Sequence[Sequence[float]],
        records: Sequence[LeafRecord],
    ) -> None:
        """Build the tree from scratch with STR packing.

        Sort-Tile-Recursive (Leutenegger et al.) sorts points into
        spatial tiles and packs them into full leaves, then builds the
        upper levels bottom-up.  Orders of magnitude faster than
        repeated insertion for large static loads (the paper builds its
        indexes offline too) and produces well-clustered nodes.

        Only valid on an empty tree.
        """
        if self._size:
            raise IndexError_("bulk_load requires an empty tree")
        array = np.ascontiguousarray(points, dtype=np.float64)
        if array.ndim != 2 or array.shape[1] != self.dimensions:
            raise IndexError_(
                f"points shape {array.shape} does not match index "
                f"dimensionality {self.dimensions}"
            )
        if array.shape[0] != len(records):
            raise IndexError_(
                f"{array.shape[0]} points but {len(records)} records"
            )
        if array.shape[0] == 0:
            return
        order = self._str_order(array)
        leaf_pages: List[int] = []
        for chunk in self._balanced_chunks(order.tolist()):
            entries = [
                Entry(
                    low=array[index],
                    high=array[index],
                    record=records[index],
                )
                for index in chunk
            ]
            node = RStarNode(level=0, entries=entries)
            # Offline bulk load (pre-seal, pre-WAL by definition).
            leaf_pages.append(self._pager.allocate(PageKind.INDEX_LEAF, node))  # repro: ignore[RS009]
        self._size = array.shape[0]

        level = 0
        pages = leaf_pages
        while len(pages) > 1:
            level += 1
            parents: List[int] = []
            for chunk in self._balanced_chunks(pages):
                entries = []
                for child_page in chunk:
                    low, high = self._peek(child_page).mbr()
                    entries.append(
                        Entry(low=low, high=high, child_page=child_page)
                    )
                node = RStarNode(level=level, entries=entries)
                parents.append(
                    self._pager.allocate(PageKind.INDEX_INTERNAL, node)  # repro: ignore[RS009]
                )
            pages = parents
        self.root_page = pages[0]

    def _str_order(self, array: np.ndarray) -> np.ndarray:
        """Point permutation following the STR tiling."""
        count = array.shape[0]
        num_leaves = max(1, -(-count // self.max_entries))
        order = np.arange(count)

        def tile(indices: np.ndarray, dim: int) -> List[np.ndarray]:
            if dim == self.dimensions - 1:
                return [indices[np.argsort(array[indices, dim])]]
            remaining = self.dimensions - dim
            leaves_here = max(1, -(-indices.size // self.max_entries))
            slabs = max(1, round(leaves_here ** (1.0 / remaining)))
            ordered = indices[np.argsort(array[indices, dim])]
            slab_size = -(-ordered.size // slabs)
            pieces: List[np.ndarray] = []
            for start in range(0, ordered.size, slab_size):
                pieces.extend(
                    tile(ordered[start : start + slab_size], dim + 1)
                )
            return pieces

        if num_leaves == 1:
            return order
        return np.concatenate(tile(order, 0))

    def _balanced_chunks(self, items: List) -> List[List]:
        """Split into chunks of at most ``max_entries``, keeping the
        last chunk at least ``min_entries`` long by rebalancing."""
        capacity = self.max_entries
        chunks = [
            items[start : start + capacity]
            for start in range(0, len(items), capacity)
        ]
        if len(chunks) > 1 and len(chunks[-1]) < self.min_entries:
            needed = self.min_entries - len(chunks[-1])
            chunks[-1] = chunks[-2][-needed:] + chunks[-1]
            chunks[-2] = chunks[-2][:-needed]
        return chunks

    # ------------------------------------------------------------------
    # Offline traversals (tests, stats)
    # ------------------------------------------------------------------

    def iter_leaf_entries(self) -> Iterator[Entry]:
        """Yield every leaf entry without I/O accounting."""
        stack = [self.root_page]
        while stack:
            node = self._peek(stack.pop())
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(
                    entry.child_page
                    for entry in node.entries
                    if entry.child_page is not None
                )

    def node_count(self) -> int:
        """Total number of nodes (offline walk)."""
        count = 0
        stack = [self.root_page]
        while stack:
            node = self._peek(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(
                    entry.child_page
                    for entry in node.entries
                    if entry.child_page is not None
                )
        return count

    def check_invariants(self) -> None:
        """Validate structure: MBR containment, fill factors, levels.

        Raises :class:`IndexError_` on the first violation.  Used heavily
        by unit and property tests.
        """
        root = self._peek(self.root_page)
        self._check_node(self.root_page, root, is_root=True)

    def _check_node(
        self, page_id: int, node: RStarNode, is_root: bool
    ) -> None:
        if not is_root and len(node.entries) < self.min_entries:
            raise IndexError_(
                f"node {page_id} underfull: {len(node.entries)} < "
                f"{self.min_entries}"
            )
        if len(node.entries) > self.max_entries:
            raise IndexError_(
                f"node {page_id} overfull: {len(node.entries)} > "
                f"{self.max_entries}"
            )
        if is_root and not node.is_leaf and len(node.entries) < 2:
            raise IndexError_("internal root must have >= 2 entries")
        for entry in node.entries:
            if node.is_leaf:
                if entry.record is None or entry.child_page is not None:
                    raise IndexError_(
                        f"leaf node {page_id} holds a non-record entry"
                    )
                continue
            if entry.child_page is None:
                raise IndexError_(
                    f"internal node {page_id} holds a record entry"
                )
            child = self._peek(entry.child_page)
            if child.level != node.level - 1:
                raise IndexError_(
                    f"level mismatch: node {page_id} level {node.level} -> "
                    f"child {entry.child_page} level {child.level}"
                )
            child_low, child_high = child.mbr()
            if np.any(child_low < entry.low) or np.any(
                child_high > entry.high
            ):
                raise IndexError_(
                    f"entry MBR of node {page_id} does not contain child "
                    f"{entry.child_page}"
                )
            self._check_node(entry.child_page, child, is_root=False)
