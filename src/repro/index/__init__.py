"""Index substrate.

* :mod:`repro.index.geometry` — MBR arithmetic shared by the tree and the
  engines' MINDIST computations.
* :mod:`repro.index.rstar` — a from-scratch R*-tree (Beckmann et al.):
  choose-subtree by overlap enlargement, margin-driven split axis, forced
  reinsertion.  One node per page; traversals are counted through the
  buffer pool.
* :mod:`repro.index.builder` — DualMatch index construction: disjoint data
  windows, PAA transform, insertion into the tree.
* :mod:`repro.index.bloom` — the bloom filter used by the PSM baseline's
  join signatures.
"""

from repro.index.bloom import BloomFilter
from repro.index.builder import DualMatchIndex, build_index
from repro.index.rstar import LeafRecord, RStarNode, RStarTree

__all__ = [
    "BloomFilter",
    "RStarTree",
    "RStarNode",
    "LeafRecord",
    "DualMatchIndex",
    "build_index",
]
