"""Minimum bounding rectangle arithmetic.

Rectangles are plain ``(low, high)`` pairs of 1-D float64 numpy arrays;
keeping them unboxed keeps the R*-tree's split heuristics cheap.  All
functions are pure.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.exceptions import UsageError

Rect = Tuple[np.ndarray, np.ndarray]


def rect_of_point(point: np.ndarray) -> Rect:
    """Degenerate rectangle covering a single point."""
    return point, point


def union(a: Rect, b: Rect) -> Rect:
    """Smallest rectangle covering both inputs."""
    return np.minimum(a[0], b[0]), np.maximum(a[1], b[1])


def union_all(rects: Iterable[Rect]) -> Rect:
    """Smallest rectangle covering every input (at least one required)."""
    iterator = iter(rects)
    try:
        low, high = next(iterator)
    except StopIteration:
        raise UsageError(
            "union_all needs at least one rectangle"
        ) from None
    low = low.copy()
    high = high.copy()
    for other_low, other_high in iterator:
        np.minimum(low, other_low, out=low)
        np.maximum(high, other_high, out=high)
    return low, high


def area(rect: Rect) -> float:
    """Product of side lengths (0 for degenerate rectangles)."""
    return float(np.prod(rect[1] - rect[0]))


def margin(rect: Rect) -> float:
    """Sum of side lengths — the R* split criterion's "perimeter"."""
    return float(np.sum(rect[1] - rect[0]))


def enlargement(rect: Rect, addition: Rect) -> float:
    """Area growth of ``rect`` needed to also cover ``addition``."""
    grown_low = np.minimum(rect[0], addition[0])
    grown_high = np.maximum(rect[1], addition[1])
    return float(np.prod(grown_high - grown_low)) - area(rect)


def overlap_area(a: Rect, b: Rect) -> float:
    """Area of the intersection (0 when disjoint)."""
    low = np.maximum(a[0], b[0])
    high = np.minimum(a[1], b[1])
    sides = high - low
    if np.any(sides <= 0.0):
        return 0.0
    return float(np.prod(sides))


def center(rect: Rect) -> np.ndarray:
    """Geometric center of a rectangle."""
    return (rect[0] + rect[1]) * 0.5


def center_distance_sq(a: Rect, b: Rect) -> float:
    """Squared distance between rectangle centers (reinsert ordering)."""
    gap = center(a) - center(b)
    return float(np.dot(gap, gap))


def contains_point(rect: Rect, point: np.ndarray) -> bool:
    """Whether ``point`` lies inside ``rect`` (inclusive)."""
    return bool(np.all(rect[0] <= point) and np.all(point <= rect[1]))


def mindist_point_sq(rect: Rect, point: np.ndarray) -> float:
    """Squared Euclidean MINDIST from a point to a rectangle.

    Generic k-NN helper (distinct from the envelope-aware
    :func:`repro.core.lower_bounds.mindist_pow` the engines use).
    """
    below = rect[0] - point
    above = point - rect[1]
    gaps = np.maximum(np.maximum(below, above), 0.0)
    return float(np.dot(gaps, gaps))
