"""Page-based storage substrate.

The paper measures algorithms primarily by the number of disk page
accesses, so the storage layer is built around explicit pages:

* :mod:`repro.storage.page` — page identity, kinds, and geometry helpers
  (how many values / index entries fit in one page).
* :mod:`repro.storage.pager` — the physical page store with read/write
  counters (the simulated disk).
* :mod:`repro.storage.buffer` — an LRU buffer pool with a page-residence
  bitmap (used by RU-COST's ``NUM_IO`` estimator).
* :mod:`repro.storage.sequences` — a heap file of time-series values,
  packed into pages, with subsequence retrieval through the buffer pool.
* :mod:`repro.storage.deferred` — the deferred retrieval mechanism of
  Han et al. [12] that batches random subsequence requests into
  quasi-sequential sweeps.
* :mod:`repro.storage.integrity` — CRC32 checksum helpers shared by the
  pager (per-page) and the persistence layer (whole-file).
* :mod:`repro.storage.faults` — the deterministic fault-injection
  harness (:class:`FaultInjector` + :class:`FaultyPager`).
"""

from repro.storage.buffer import BufferPool, RetryPolicy
from repro.storage.deferred import CandidateRequest, DeferredRetrievalBuffer
from repro.storage.faults import FaultInjector, FaultSpec, FaultyPager
from repro.storage.integrity import (
    bytes_checksum,
    file_checksum,
    payload_checksum,
)
from repro.storage.page import (
    PAGE_SIZE_DEFAULT,
    PageKind,
    index_entries_per_page,
    values_per_page,
)
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceStore

__all__ = [
    "PAGE_SIZE_DEFAULT",
    "PageKind",
    "values_per_page",
    "index_entries_per_page",
    "Pager",
    "BufferPool",
    "RetryPolicy",
    "SequenceStore",
    "CandidateRequest",
    "DeferredRetrievalBuffer",
    "FaultInjector",
    "FaultSpec",
    "FaultyPager",
    "payload_checksum",
    "file_checksum",
    "bytes_checksum",
]
