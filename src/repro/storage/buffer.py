"""LRU buffer pool with a page-residence bitmap.

The paper's experimental setup uses an LRU buffer whose size is a
percentage of the database (Table 3: 1 %–10 %, default 5 %).  RU-COST
additionally needs a cheap way to ask "is this page currently buffered?"
without disturbing recency — the paper allocates a bitmap over pages for
exactly this purpose (Section 4, ``NUM_IO``).  :meth:`BufferPool.resident`
is that bitmap probe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from types import TracebackType
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Type

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
)
from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import BufferPoolError, ConfigurationError, TransientIOError
from repro.obs.tracer import NULL_TRACER
from repro.storage.pager import Pager

if TYPE_CHECKING:
    from repro.storage.circuit import CircuitBreaker


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for *transient* read failures.

    Consulted by :meth:`BufferPool.fetch`: a read raising
    :class:`~repro.exceptions.TransientIOError` is retried up to
    ``max_attempts`` total attempts, sleeping ``backoff_s`` before the
    first retry and multiplying the delay by ``multiplier`` after each.
    Permanent failures (:class:`~repro.exceptions.CorruptPageError` and
    every other :class:`~repro.exceptions.StorageError`) are never
    retried — re-reading a corrupt page cannot succeed.

    The default backoff is zero so the simulated-disk benchmarks and
    tests stay deterministic in time; a real deployment would configure
    ``backoff_s`` to its device's recovery latency.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )


@dataclass
class BufferStats:
    """Hit/miss counters for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Transient read failures recovered by retrying (RetryPolicy hits).
    retries: int = 0

    @property
    def logical_reads(self) -> int:
        """Total page requests served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served without physical I/O."""
        total = self.logical_reads
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.retries = 0


class PagePin:
    """Guard holding one page resident; release via ``with`` or
    :meth:`release` (idempotent).  RS011 checks that pins taken outside
    a ``with`` are released on every path out of the taking function.
    """

    __slots__ = ("_pool", "page_id", "_released")

    def __init__(self, pool: "BufferPool", page_id: int) -> None:
        self._pool = pool
        self.page_id = page_id
        self._released = False

    def release(self) -> None:
        """Drop this pin (safe to call more than once)."""
        if not self._released:
            self._released = True
            self._pool.unpin(self.page_id)

    def __enter__(self) -> "PagePin":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()


@shared_across_queries
@guarded_by("_lock", "_frames", "_capacity", "_pins", "stats")
class BufferPool:
    """A fixed-capacity LRU cache of pages in front of a :class:`Pager`.

    Thread-safety contract (machine-checked by RS010/RS012): instances
    are shared across in-flight queries once the serve layer lands, so
    every touch of the frame table, pin table, capacity, and hit/miss
    stats happens under ``_lock`` (an ``RLock``; uncontended today —
    single-query paths pay one uncontested acquire per page request).
    A cache miss performs the physical read while holding the lock,
    serializing concurrent misses; sharding the pool is ROADMAP work,
    not this layer's problem.

    Parameters
    ----------
    pager:
        The physical page store.
    capacity_pages:
        Maximum number of resident pages.  Must be at least 1.
    retry_policy:
        Bounds retries of transient read failures (defaults to three
        attempts with no backoff).
    clock:
        Injectable time source used for retry backoff sleeps (defaults
        to the real monotonic clock; tests inject a
        :class:`~repro.core.clock.FakeClock` so backoff never blocks).
    circuit_breaker:
        Optional :class:`~repro.storage.circuit.CircuitBreaker` gating
        every physical read attempt.  While open, fetches fail fast
        with :class:`~repro.exceptions.CircuitOpenError` instead of
        hammering an unhealthy pager.
    """

    def __init__(
        self,
        pager: Pager,
        capacity_pages: int,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        circuit_breaker: Optional["CircuitBreaker"] = None,
    ) -> None:
        if capacity_pages < 1:
            raise BufferPoolError(
                f"buffer capacity must be >= 1 page, got {capacity_pages}"
            )
        self._pager = pager
        self._capacity = capacity_pages
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._lock = threading.RLock()
        self.retry_policy = retry_policy or RetryPolicy()
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self.circuit_breaker = circuit_breaker
        self.stats = BufferStats()
        #: Observability hook (attribute, not constructor argument, so
        #: the many bare ``BufferPool(pager, n)`` construction sites stay
        #: untouched).  :meth:`repro.api.SubsequenceDatabase.set_tracer`
        #: swaps in an enabled tracer; the disabled default costs one
        #: attribute load + branch per page request.
        self.tracer = NULL_TRACER

    @property
    def pager(self) -> Pager:
        """The physical page store behind this pool."""
        return self._pager

    @property
    def capacity(self) -> int:
        """Configured capacity in pages."""
        with self._lock:
            return self._capacity

    @property
    def num_resident(self) -> int:
        """Number of pages currently buffered."""
        with self._lock:
            return len(self._frames)

    def get(self, page_id: int) -> Any:
        """Return a page payload, faulting it in from the pager on a miss."""
        with self._lock:
            if page_id in self._frames:
                self.stats.hits += 1
                if self.tracer.enabled:
                    self.tracer.metrics.counter("buffer.hit").inc()
                self._frames.move_to_end(page_id)
                return self._frames[page_id]
            self.stats.misses += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter("buffer.miss").inc()
            payload = self.fetch(page_id)
            self._frames[page_id] = payload
            if len(self._frames) > self._capacity:
                self._evict_one()
            return payload

    def fetch(self, page_id: int) -> Any:
        """Physically read a page, retrying transient faults.

        Each :class:`~repro.exceptions.TransientIOError` within the
        retry policy's attempt budget increments ``stats.retries`` and
        retries after the policy's backoff; the last failure propagates.
        Permanent errors (including checksum mismatches) propagate
        immediately.

        When a circuit breaker is attached, every attempt is gated by
        :meth:`~repro.storage.circuit.CircuitBreaker.before_attempt`
        (which raises :class:`~repro.exceptions.CircuitOpenError` while
        the device is quarantined) and every outcome is reported back to
        the breaker.  A trip mid-retry-loop aborts the remaining
        attempts — the breaker's reset timeout, not the retry budget,
        decides when the device is probed again.
        """
        policy = self.retry_policy
        breaker = self.circuit_breaker
        delay = policy.backoff_s
        attempt = 1
        while True:
            if breaker is not None:
                breaker.before_attempt()
            try:
                payload = self._read_attempt(page_id)
            except TransientIOError:
                if breaker is not None:
                    breaker.record_failure()
                if attempt >= policy.max_attempts:
                    raise
                with self._lock:
                    self.stats.retries += 1
                if delay > 0:
                    self._clock.sleep(delay)
                    delay *= policy.multiplier
                attempt += 1
            else:
                if breaker is not None:
                    breaker.record_success()
                return payload

    def _read_attempt(self, page_id: int) -> Any:
        """One physical read, traced as one ``buffer.fetch`` span.

        The span wraps a single pager read *attempt*, so the number of
        ``buffer.fetch`` spans equals the pager's physical-read counter
        — the paper's NUM_IO — even when transient faults force retries
        (a failed attempt both counts a read and records a span, with
        the error name attached).  The trace-conformance suite pins
        this identity against every golden engine config.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._pager.read(page_id)
        kind = self._pager.kind_of(page_id).name.lower()
        tracer.metrics.counter(f"page.fetch.{kind}").inc()
        with tracer.span("buffer.fetch", page=page_id, kind=kind):
            return self._pager.read(page_id)

    def resident(self, page_id: int) -> bool:
        """Bitmap probe: is the page buffered?  Does not touch LRU order.

        RU-COST uses this to count, for a prospective batch of leaf
        entries, how many subsequence pages would actually hit the disk
        (``NUM_IO`` in Definition 7) without performing the reads.
        """
        with self._lock:
            return page_id in self._frames

    def count_non_resident(self, page_ids: Iterable[int]) -> int:
        """Number of *distinct* pages in ``page_ids`` that would miss."""
        with self._lock:
            return sum(
                1 for page_id in set(page_ids) if page_id not in self._frames
            )

    def pin(self, page_id: int) -> PagePin:
        """Fault a page in and hold it resident until the pin releases.

        Counts as a normal page request (hit or miss) for stats and
        NUM_IO.  Pinned pages are skipped by LRU eviction; a pool whose
        resident pages are all pinned may temporarily exceed capacity
        until a pin is released.  Pins nest: a page is evictable again
        once every :class:`PagePin` taken on it has been released.
        """
        with self._lock:
            self.get(page_id)
            self._pins[page_id] = self._pins.get(page_id, 0) + 1
            return PagePin(self, page_id)

    def unpin(self, page_id: int) -> None:
        """Release one pin on a page (no-op when not pinned)."""
        with self._lock:
            count = self._pins.get(page_id, 0)
            if count <= 1:
                self._pins.pop(page_id, None)
            else:
                self._pins[page_id] = count - 1

    def pinned(self, page_id: int) -> bool:
        """Whether at least one pin currently holds the page."""
        with self._lock:
            return self._pins.get(page_id, 0) > 0

    @requires_lock("_lock")
    def _evict_one(self) -> bool:
        """Evict the least-recently-used unpinned page, if any."""
        for page_id in self._frames:
            if self._pins.get(page_id, 0) == 0:
                del self._frames[page_id]
                self.stats.evictions += 1
                return True
        return False  # every resident page is pinned; stay overfull

    def put(self, page_id: int, payload: Any) -> None:
        """Install a payload (write-through), evicting LRU if needed."""
        with self._lock:
            self._pager.write(page_id, payload)
            self._frames[page_id] = payload
            self._frames.move_to_end(page_id)
            if len(self._frames) > self._capacity:
                self._evict_one()

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the pool if resident (used after rebuilds).

        Staleness wins over pinning: a rebuilt page's old payload must
        go even while pinned — the pin keeps the *slot* hot, so the
        next request re-faults fresh bytes.
        """
        with self._lock:
            self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (cold-cache state for a fresh experiment run).

        Pinned pages stay resident — callers holding a
        :class:`PagePin` were promised the page would not vanish.
        """
        with self._lock:
            if not self._pins:
                self._frames.clear()
                return
            for page_id in list(self._frames):
                if self._pins.get(page_id, 0) == 0:
                    del self._frames[page_id]

    def resize(self, capacity_pages: int) -> None:
        """Change capacity, evicting LRU (unpinned) pages if shrinking."""
        if capacity_pages < 1:
            raise BufferPoolError(
                f"buffer capacity must be >= 1 page, got {capacity_pages}"
            )
        with self._lock:
            self._capacity = capacity_pages
            while len(self._frames) > self._capacity:
                if not self._evict_one():
                    break
