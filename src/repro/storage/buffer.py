"""LRU buffer pool with a page-residence bitmap.

The paper's experimental setup uses an LRU buffer whose size is a
percentage of the database (Table 3: 1 %–10 %, default 5 %).  RU-COST
additionally needs a cheap way to ask "is this page currently buffered?"
without disturbing recency — the paper allocates a bitmap over pages for
exactly this purpose (Section 4, ``NUM_IO``).  :meth:`BufferPool.resident`
is that bitmap probe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import BufferPoolError, ConfigurationError, TransientIOError
from repro.obs.tracer import NULL_TRACER
from repro.storage.pager import Pager

if TYPE_CHECKING:
    from repro.storage.circuit import CircuitBreaker


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for *transient* read failures.

    Consulted by :meth:`BufferPool.fetch`: a read raising
    :class:`~repro.exceptions.TransientIOError` is retried up to
    ``max_attempts`` total attempts, sleeping ``backoff_s`` before the
    first retry and multiplying the delay by ``multiplier`` after each.
    Permanent failures (:class:`~repro.exceptions.CorruptPageError` and
    every other :class:`~repro.exceptions.StorageError`) are never
    retried — re-reading a corrupt page cannot succeed.

    The default backoff is zero so the simulated-disk benchmarks and
    tests stay deterministic in time; a real deployment would configure
    ``backoff_s`` to its device's recovery latency.
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )


@dataclass
class BufferStats:
    """Hit/miss counters for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Transient read failures recovered by retrying (RetryPolicy hits).
    retries: int = 0

    @property
    def logical_reads(self) -> int:
        """Total page requests served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served without physical I/O."""
        total = self.logical_reads
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.retries = 0


class BufferPool:
    """A fixed-capacity LRU cache of pages in front of a :class:`Pager`.

    Parameters
    ----------
    pager:
        The physical page store.
    capacity_pages:
        Maximum number of resident pages.  Must be at least 1.
    retry_policy:
        Bounds retries of transient read failures (defaults to three
        attempts with no backoff).
    clock:
        Injectable time source used for retry backoff sleeps (defaults
        to the real monotonic clock; tests inject a
        :class:`~repro.core.clock.FakeClock` so backoff never blocks).
    circuit_breaker:
        Optional :class:`~repro.storage.circuit.CircuitBreaker` gating
        every physical read attempt.  While open, fetches fail fast
        with :class:`~repro.exceptions.CircuitOpenError` instead of
        hammering an unhealthy pager.
    """

    def __init__(
        self,
        pager: Pager,
        capacity_pages: int,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        circuit_breaker: Optional["CircuitBreaker"] = None,
    ) -> None:
        if capacity_pages < 1:
            raise BufferPoolError(
                f"buffer capacity must be >= 1 page, got {capacity_pages}"
            )
        self._pager = pager
        self._capacity = capacity_pages
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self.retry_policy = retry_policy or RetryPolicy()
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self.circuit_breaker = circuit_breaker
        self.stats = BufferStats()
        #: Observability hook (attribute, not constructor argument, so
        #: the many bare ``BufferPool(pager, n)`` construction sites stay
        #: untouched).  :meth:`repro.api.SubsequenceDatabase.set_tracer`
        #: swaps in an enabled tracer; the disabled default costs one
        #: attribute load + branch per page request.
        self.tracer = NULL_TRACER

    @property
    def pager(self) -> Pager:
        """The physical page store behind this pool."""
        return self._pager

    @property
    def capacity(self) -> int:
        """Configured capacity in pages."""
        return self._capacity

    @property
    def num_resident(self) -> int:
        """Number of pages currently buffered."""
        return len(self._frames)

    def get(self, page_id: int) -> Any:
        """Return a page payload, faulting it in from the pager on a miss."""
        if page_id in self._frames:
            self.stats.hits += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter("buffer.hit").inc()
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.stats.misses += 1
        if self.tracer.enabled:
            self.tracer.metrics.counter("buffer.miss").inc()
        payload = self.fetch(page_id)
        self._frames[page_id] = payload
        if len(self._frames) > self._capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
        return payload

    def fetch(self, page_id: int) -> Any:
        """Physically read a page, retrying transient faults.

        Each :class:`~repro.exceptions.TransientIOError` within the
        retry policy's attempt budget increments ``stats.retries`` and
        retries after the policy's backoff; the last failure propagates.
        Permanent errors (including checksum mismatches) propagate
        immediately.

        When a circuit breaker is attached, every attempt is gated by
        :meth:`~repro.storage.circuit.CircuitBreaker.before_attempt`
        (which raises :class:`~repro.exceptions.CircuitOpenError` while
        the device is quarantined) and every outcome is reported back to
        the breaker.  A trip mid-retry-loop aborts the remaining
        attempts — the breaker's reset timeout, not the retry budget,
        decides when the device is probed again.
        """
        policy = self.retry_policy
        breaker = self.circuit_breaker
        delay = policy.backoff_s
        attempt = 1
        while True:
            if breaker is not None:
                breaker.before_attempt()
            try:
                payload = self._read_attempt(page_id)
            except TransientIOError:
                if breaker is not None:
                    breaker.record_failure()
                if attempt >= policy.max_attempts:
                    raise
                self.stats.retries += 1
                if delay > 0:
                    self._clock.sleep(delay)
                    delay *= policy.multiplier
                attempt += 1
            else:
                if breaker is not None:
                    breaker.record_success()
                return payload

    def _read_attempt(self, page_id: int) -> Any:
        """One physical read, traced as one ``buffer.fetch`` span.

        The span wraps a single pager read *attempt*, so the number of
        ``buffer.fetch`` spans equals the pager's physical-read counter
        — the paper's NUM_IO — even when transient faults force retries
        (a failed attempt both counts a read and records a span, with
        the error name attached).  The trace-conformance suite pins
        this identity against every golden engine config.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._pager.read(page_id)
        kind = self._pager.kind_of(page_id).name.lower()
        tracer.metrics.counter(f"page.fetch.{kind}").inc()
        with tracer.span("buffer.fetch", page=page_id, kind=kind):
            return self._pager.read(page_id)

    def resident(self, page_id: int) -> bool:
        """Bitmap probe: is the page buffered?  Does not touch LRU order.

        RU-COST uses this to count, for a prospective batch of leaf
        entries, how many subsequence pages would actually hit the disk
        (``NUM_IO`` in Definition 7) without performing the reads.
        """
        return page_id in self._frames

    def count_non_resident(self, page_ids: Iterable[int]) -> int:
        """Number of *distinct* pages in ``page_ids`` that would miss."""
        return sum(
            1 for page_id in set(page_ids) if page_id not in self._frames
        )

    def put(self, page_id: int, payload: Any) -> None:
        """Install a payload (write-through), evicting LRU if needed."""
        self._pager.write(page_id, payload)
        self._frames[page_id] = payload
        self._frames.move_to_end(page_id)
        if len(self._frames) > self._capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the pool if resident (used after rebuilds)."""
        self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (cold-cache state for a fresh experiment run)."""
        self._frames.clear()

    def resize(self, capacity_pages: int) -> None:
        """Change capacity, evicting LRU pages if shrinking."""
        if capacity_pages < 1:
            raise BufferPoolError(
                f"buffer capacity must be >= 1 page, got {capacity_pages}"
            )
        self._capacity = capacity_pages
        while len(self._frames) > self._capacity:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
