"""Deterministic fault injection for the simulated disk.

The paper's guarantees ("no false dismissals", exact top-k) are proved
over a perfect storage device.  This module makes failure a first-class,
*testable* input instead: a :class:`FaultInjector` holds a seeded
schedule of fault specifications and a :class:`FaultyPager` — a drop-in
:class:`~repro.storage.pager.Pager` — consults it on every physical read
and write.

Four fault kinds are modelled:

``transient``
    The read raises :class:`~repro.exceptions.TransientIOError` (a bus
    hiccup, a lost interrupt).  Retryable: the page itself is intact, so
    :class:`~repro.storage.buffer.BufferPool`'s retry policy recovers it.
``corrupt``
    A bit is flipped inside the stored payload and the recorded checksum
    is left untouched — permanent media corruption.  On a sealed pager
    every subsequent read raises
    :class:`~repro.exceptions.CorruptPageError`.
``torn-write``
    A write persists only a prefix of the payload and skips the checksum
    update — a crash in the middle of a multi-sector write.  Detected
    exactly like corruption on the next read.
``latency``
    The read completes but only after sleeping ``latency_s`` — a slow
    or degraded device, for tail-latency experiments.

Determinism: all randomness flows from one ``random.Random(seed)``, and
specs can pin explicit page ids (``page_ids``) or filter by
:class:`~repro.storage.page.PageKind`, so a failing run replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import ConfigurationError, TransientIOError
from repro.storage.page import PAGE_SIZE_DEFAULT, PageKind
from repro.storage.pager import Pager

TRANSIENT = "transient"
CORRUPT = "corrupt"
TORN_WRITE = "torn-write"
LATENCY = "latency"

_FAULT_KINDS = (TRANSIENT, CORRUPT, TORN_WRITE, LATENCY)
_READ_FAULTS = (TRANSIENT, CORRUPT, LATENCY)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what fails, where, and how often.

    Attributes
    ----------
    fault:
        One of ``"transient"``, ``"corrupt"``, ``"torn-write"``,
        ``"latency"``.
    probability:
        Chance a matching access triggers the fault (1.0 = always).
        Draws come from the injector's seeded generator.
    page_ids:
        Explicit schedule: only these page ids are eligible (``None``
        means every page).
    page_kinds:
        Only pages of these kinds are eligible (``None`` means every
        kind) — e.g. corrupt only ``PageKind.DATA`` pages.
    max_triggers:
        Total firing budget across all pages (``None`` = unlimited).
    max_per_page:
        Firing budget per page.  Defaults to 1 for ``corrupt`` and
        ``torn-write`` (corrupting twice is meaningless) and unlimited
        otherwise.
    latency_s:
        Sleep duration for ``latency`` faults.
    """

    fault: str
    probability: float = 1.0
    page_ids: Optional[FrozenSet[int]] = None
    page_kinds: Optional[FrozenSet[PageKind]] = None
    max_triggers: Optional[int] = None
    max_per_page: Optional[int] = None
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.fault not in _FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.fault!r}; expected one of "
                f"{_FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"latency_s must be >= 0, got {self.latency_s}"
            )
        if self.fault == LATENCY and self.latency_s == 0.0:
            raise ConfigurationError(
                "latency faults need latency_s > 0"
            )
        # Normalise iterables passed instead of frozensets.
        if self.page_ids is not None and not isinstance(
            self.page_ids, frozenset
        ):
            object.__setattr__(self, "page_ids", frozenset(self.page_ids))
        if self.page_kinds is not None and not isinstance(
            self.page_kinds, frozenset
        ):
            object.__setattr__(
                self, "page_kinds", frozenset(self.page_kinds)
            )

    @property
    def per_page_budget(self) -> Optional[int]:
        """Effective per-page cap (destructive faults default to once)."""
        if self.max_per_page is not None:
            return self.max_per_page
        if self.fault in (CORRUPT, TORN_WRITE):
            return 1
        return None


@dataclass
class FaultStats:
    """Counters of faults actually fired."""

    transient_faults: int = 0
    corruptions: int = 0
    torn_writes: int = 0
    latency_injections: int = 0
    latency_total_s: float = 0.0
    corrupted_pages: List[int] = field(default_factory=list)
    torn_pages: List[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            self.transient_faults
            + self.corruptions
            + self.torn_writes
            + self.latency_injections
        )


class FaultInjector:
    """A seeded, deterministic schedule of storage faults.

    Parameters
    ----------
    seed:
        Seeds the single ``random.Random`` used for probability draws
        and bit-position choices; identical seeds and access sequences
        replay identical faults.
    specs:
        Initial fault rules; more can be added with :meth:`add`.
    """

    def __init__(
        self, seed: int = 0, specs: Sequence[FaultSpec] = ()
    ) -> None:
        self._rng = random.Random(seed)
        self.specs: List[FaultSpec] = list(specs)
        self.stats = FaultStats()
        self.enabled = True
        #: (spec index, page id) -> times fired (per-page budgets).
        self._fired_per_page: Dict[Tuple[int, int], int] = {}
        #: spec index -> total times fired (global budgets).
        self._fired_total: Dict[int, int] = {}

    def add(self, spec: FaultSpec) -> "FaultInjector":
        """Append one fault rule (chainable)."""
        self.specs.append(spec)
        return self

    # -- convenience constructors ---------------------------------------

    @classmethod
    def transient_reads(
        cls,
        page_ids: Iterable[int],
        times: int = 1,
        seed: int = 0,
    ) -> "FaultInjector":
        """Fail the first ``times`` reads of each listed page."""
        return cls(
            seed=seed,
            specs=[
                FaultSpec(
                    fault=TRANSIENT,
                    page_ids=frozenset(page_ids),
                    max_per_page=times,
                )
            ],
        )

    @classmethod
    def corrupt_pages(
        cls, page_ids: Iterable[int], seed: int = 0
    ) -> "FaultInjector":
        """Permanently corrupt each listed page on its next read."""
        return cls(
            seed=seed,
            specs=[FaultSpec(fault=CORRUPT, page_ids=frozenset(page_ids))],
        )

    # -- scheduling core -------------------------------------------------

    def _eligible(
        self, spec: FaultSpec, page_id: int, kind: PageKind
    ) -> bool:
        if spec.page_ids is not None and page_id not in spec.page_ids:
            return False
        if spec.page_kinds is not None and kind not in spec.page_kinds:
            return False
        return True

    def _fires(self, spec_index: int, spec: FaultSpec, page_id: int) -> bool:
        if (
            spec.max_triggers is not None
            and self._fired_total.get(spec_index, 0) >= spec.max_triggers
        ):
            return False
        budget = spec.per_page_budget
        key = (spec_index, page_id)
        if budget is not None and self._fired_per_page.get(key, 0) >= budget:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        self._fired_total[spec_index] = self._fired_total.get(spec_index, 0) + 1
        self._fired_per_page[key] = self._fired_per_page.get(key, 0) + 1
        return True

    def read_faults(self, page_id: int, kind: PageKind) -> List[FaultSpec]:
        """Read-path faults firing for this access, in spec order."""
        if not self.enabled:
            return []
        return [
            spec
            for index, spec in enumerate(self.specs)
            if spec.fault in _READ_FAULTS
            and self._eligible(spec, page_id, kind)
            and self._fires(index, spec, page_id)
        ]

    def write_faults(self, page_id: int, kind: PageKind) -> List[FaultSpec]:
        """Write-path faults firing for this access, in spec order."""
        if not self.enabled:
            return []
        return [
            spec
            for index, spec in enumerate(self.specs)
            if spec.fault == TORN_WRITE
            and self._eligible(spec, page_id, kind)
            and self._fires(index, spec, page_id)
        ]

    def choose_bit(self, num_bytes: int) -> Tuple[int, int]:
        """Deterministically pick (byte offset, bit index) to flip."""
        return self._rng.randrange(num_bytes), self._rng.randrange(8)


def _flip_bit(data: bytes, byte_offset: int, bit: int) -> bytes:
    buffer = bytearray(data)
    buffer[byte_offset] ^= 1 << bit
    return bytes(buffer)


def _torn_payload(payload: Any) -> Any:
    """The prefix of a payload that "reached disk" before the crash."""
    if isinstance(payload, np.ndarray):
        return payload[: max(1, payload.shape[0] // 2)]
    entries = getattr(payload, "entries", None)
    if entries is not None:
        import copy

        torn = copy.copy(payload)
        torn.entries = list(entries[: len(entries) // 2])
        return torn
    return None


class FaultyPager(Pager):
    """A :class:`~repro.storage.pager.Pager` whose disk misbehaves.

    Drop-in replacement: identical interface and I/O accounting.  A
    transient failure still counts as one physical read (the attempt
    reached the device); the retried read counts again, so fault runs
    naturally report higher page-access numbers.  With no injector, or
    an injector holding no specs, behaviour and counters are *identical*
    to the plain pager.
    """

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
        verify_mode: str = "always",
    ) -> None:
        super().__init__(page_size=page_size, verify_mode=verify_mode)
        self.injector = injector or FaultInjector()
        #: Latency faults sleep on this clock, so chaos runs can inject
        #: simulated slowness via :class:`~repro.core.clock.FakeClock`
        #: without actually stalling.
        self.clock = clock if clock is not None else MONOTONIC_CLOCK

    def read(self, page_id: int) -> Any:
        self._check(page_id)
        for spec in self.injector.read_faults(page_id, self._kinds[page_id]):
            if spec.fault == LATENCY:
                self.injector.stats.latency_injections += 1
                self.injector.stats.latency_total_s += spec.latency_s
                self.clock.sleep(spec.latency_s)
            elif spec.fault == CORRUPT:
                self._corrupt_payload(page_id)
            elif spec.fault == TRANSIENT:
                self.injector.stats.transient_faults += 1
                self.stats.record_read(page_id)  # the attempt hit the disk
                raise TransientIOError(
                    f"injected transient read failure on page {page_id}"
                )
        return super().read(page_id)

    def write(self, page_id: int, payload: Any) -> None:
        for spec in self.injector.write_faults(page_id, self.kind_of(page_id)):
            if spec.fault == TORN_WRITE:
                self.injector.stats.torn_writes += 1
                self.injector.stats.torn_pages.append(page_id)
                self._check(page_id)
                self.stats.record_write()
                # Persist only a prefix and *skip the checksum update* —
                # the crash happened between the data and checksum
                # sectors, which is exactly what verification catches.
                self._payloads[page_id] = _torn_payload(payload)
                return
        super().write(page_id, payload)

    def _corrupt_payload(self, page_id: int) -> None:
        """Flip one deterministic bit in the stored payload.

        The recorded checksum is left stale on purpose; on a sealed
        pager the very next read raises ``CorruptPageError``.  On an
        unsealed pager the corruption flows through silently — the
        scenario checksumming exists to prevent.
        """
        payload = self._payloads[page_id]
        corrupted = _corrupt(payload, self.injector)
        if corrupted is None:
            return
        self._payloads[page_id] = corrupted
        self.injector.stats.corruptions += 1
        self.injector.stats.corrupted_pages.append(page_id)


def _corrupt(payload: Any, injector: FaultInjector) -> Any:
    """A bit-flipped copy of a payload (``None`` if not corruptible)."""
    if isinstance(payload, np.ndarray):
        raw = payload.tobytes()
        if not raw:
            return None
        offset, bit = injector.choose_bit(len(raw))
        flipped = np.frombuffer(
            _flip_bit(raw, offset, bit), dtype=payload.dtype
        ).reshape(payload.shape)
        flipped.setflags(write=False)
        return flipped
    entries = getattr(payload, "entries", None)
    if entries:
        # Flip a bit in one entry's MBR low corner.  Entry objects are
        # replaced (not mutated) so arrays shared with sibling pages
        # stay intact.
        from repro.index.rstar import Entry

        target = injector._rng.randrange(len(entries))
        entry = entries[target]
        raw = np.ascontiguousarray(entry.low, dtype=np.float64).tobytes()
        offset, bit = injector.choose_bit(len(raw))
        low = np.frombuffer(
            _flip_bit(raw, offset, bit), dtype=np.float64
        ).copy()
        entries[target] = Entry(
            low=low,
            high=entry.high,
            child_page=entry.child_page,
            record=entry.record,
        )
        return payload
    return None
