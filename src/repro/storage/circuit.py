"""Circuit breaker for the physical page-read path.

PR 1 made *individual* transient faults survivable via
:class:`~repro.storage.buffer.RetryPolicy`; this module protects against
a *persistently* unhealthy simulated device.  When the recent failure
rate over physical read attempts crosses a threshold, the breaker opens
and :meth:`CircuitBreaker.before_attempt` rejects fetches immediately
with :class:`~repro.exceptions.CircuitOpenError` — no pager touch, no
retry storm.  After ``reset_timeout_s`` (measured on an injectable
:class:`~repro.control.Clock`) the breaker goes half-open and admits a
limited number of probe reads; a successful probe closes it again, a
failed probe re-opens it for another timeout.

States::

          failure rate >= threshold
    CLOSED ────────────────────────────▶ OPEN
       ▲                                  │ reset_timeout_s elapsed
       │ probe succeeds                   ▼
       └────────────────────────────── HALF_OPEN
                                          │ probe fails
                                          └───────▶ OPEN (timer restarts)

Only :class:`~repro.exceptions.TransientIOError` outcomes count as
failures: corruption is permanent (retrying or tripping cannot help) and
is handled by checksums + the degrade path instead.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
)
from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import CircuitOpenError, ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class CircuitStats:
    """Counters for one :class:`CircuitBreaker`."""

    successes: int = 0
    failures: int = 0
    #: Fetch attempts rejected while the breaker was open.
    rejections: int = 0
    #: CLOSED/HALF_OPEN -> OPEN transitions.
    opens: int = 0
    #: HALF_OPEN -> CLOSED transitions (successful recoveries).
    closes: int = 0
    #: OPEN -> HALF_OPEN transitions (probe windows started).
    probes: int = 0


@shared_across_queries
@guarded_by(
    "_lock",
    "_state",
    "_outcomes",
    "_opened_at",
    "_probe_successes",
    "_probes_in_flight",
    "stats",
)
class CircuitBreaker:
    """Failure-rate circuit breaker over physical page-read outcomes.

    Thread safety: one breaker is shared by every query hitting the same
    pager, and each state transition is a check-then-act sequence
    (read the state / window, then mutate it).  All mutable state is
    therefore guarded by ``_lock``; every public method takes it.  The
    lock is re-entrant so internal transitions
    (:meth:`_maybe_enter_half_open`, :meth:`_trip_open`) can run from
    already-locked callers.

    Parameters
    ----------
    failure_threshold:
        Open when the failure fraction over the sliding outcome window
        reaches this value (``0 < threshold <= 1``).
    window:
        Number of most-recent read outcomes considered.
    min_samples:
        Outcomes required in the window before the rate is trusted —
        prevents one early failure from opening a cold breaker.
    reset_timeout_s:
        Seconds (on ``clock``) the breaker stays open before admitting
        half-open probes.
    half_open_probes:
        Consecutive successful probes required to close from half-open.
    clock:
        Injectable time source (defaults to the real monotonic clock).
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_samples: int = 5,
        reset_timeout_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Optional[Clock] = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError(
                f"failure_threshold must be in (0, 1], got "
                f"{failure_threshold}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if min_samples < 1 or min_samples > window:
            raise ConfigurationError(
                f"min_samples must be in [1, window], got {min_samples}"
            )
        if reset_timeout_s < 0:
            raise ConfigurationError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        if half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_samples = min_samples
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._lock = threading.RLock()
        self.stats = CircuitStats()
        self._state = CLOSED
        #: Sliding window of outcomes: True = failure, False = success.
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._probe_successes = 0
        #: Probes admitted but not yet resolved in the half-open state.
        self._probes_in_flight = 0

    @property
    def state(self) -> str:
        """Current state (resolving any due open -> half-open transition)."""
        with self._lock:
            self._maybe_enter_half_open()
            return self._state

    def failure_rate(self) -> float:
        """Failure fraction over the current outcome window."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    @requires_lock("_lock")
    def _maybe_enter_half_open(self) -> None:
        if self._state != OPEN:
            return
        elapsed = self._clock.monotonic() - self._opened_at
        if elapsed >= self.reset_timeout_s:
            self._state = HALF_OPEN
            self._probe_successes = 0
            self._probes_in_flight = 0
            self.stats.probes += 1

    @requires_lock("_lock")
    def _trip_open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock.monotonic()
        self.stats.opens += 1

    def before_attempt(self) -> None:
        """Gate one physical read attempt.

        Raises :class:`~repro.exceptions.CircuitOpenError` while the
        breaker is open, or when it is half-open and the probe quota is
        already in flight.
        """
        with self._lock:
            self._maybe_enter_half_open()
            if self._state == OPEN:
                self.stats.rejections += 1
                raise CircuitOpenError(
                    f"circuit open (failure rate "
                    f"{self.failure_rate():.0%} over last "
                    f"{len(self._outcomes)} reads); retry after "
                    f"{self.reset_timeout_s} s"
                )
            if self._state == HALF_OPEN:
                if self._probes_in_flight >= self.half_open_probes:
                    self.stats.rejections += 1
                    raise CircuitOpenError(
                        "circuit half-open: probe quota in flight"
                    )
                self._probes_in_flight += 1

    def record_success(self) -> None:
        """Record one successful physical read."""
        with self._lock:
            self.stats.successes += 1
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._state = CLOSED
                    self._outcomes.clear()
                    self.stats.closes += 1
                    return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        """Record one transient physical-read failure."""
        with self._lock:
            self.stats.failures += 1
            self._outcomes.append(True)
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._trip_open()
                return
            if (
                self._state == CLOSED
                and len(self._outcomes) >= self.min_samples
                and self.failure_rate() >= self.failure_threshold
            ):
                self._trip_open()

    def reset(self) -> None:
        """Force the breaker closed and forget all outcomes."""
        with self._lock:
            self._state = CLOSED
            self._outcomes.clear()
            self._probe_successes = 0
            self._probes_in_flight = 0
