"""Paged heap file of time-series values.

A :class:`SequenceStore` lays every data sequence out across fixed-size
data pages (each sequence starts on a fresh page).  Subsequence retrieval
faults the covering pages through the buffer pool, so the physical-read
counters reflect exactly the page accesses the paper measures.

Offsets are **0-based** throughout the library; the paper's 1-based
``S[i:j]`` notation is translated at the documentation level only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import PageError, SequenceNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.page import PageKind, values_per_page
from repro.storage.pager import Pager


@dataclass(frozen=True)
class SequenceMeta:
    """Placement of one sequence in the page file.

    ``pages`` lists the owning page ids in *logical* order: page ``i``
    holds values ``[i * vpp, (i + 1) * vpp)``.  A freshly added
    sequence occupies contiguous pages, but online ``extend_sequence``
    appends pages at the end of an append-only file, so extended
    sequences are generally non-contiguous.
    """

    sid: int
    length: int
    pages: Tuple[int, ...]

    @property
    def first_page(self) -> int:
        """Page id of the first data page (compat accessor)."""
        return self.pages[0] if self.pages else -1

    @property
    def num_pages(self) -> int:
        """Number of data pages the sequence occupies."""
        return len(self.pages)


class SequenceStore:
    """Store and retrieve time-series sequences with page accounting.

    Parameters
    ----------
    pager:
        Physical page store shared with the index.
    buffer:
        Buffer pool that all counted reads go through.
    """

    def __init__(self, pager: Pager, buffer: BufferPool) -> None:
        self._pager = pager
        self._buffer = buffer
        self._values_per_page = values_per_page(pager.page_size)
        self._meta: Dict[int, SequenceMeta] = {}
        self._arrays: Dict[int, np.ndarray] = {}

    @property
    def buffer(self) -> BufferPool:
        """The buffer pool in front of this store."""
        return self._buffer

    @property
    def pager(self) -> Pager:
        """The physical page store."""
        return self._pager

    @property
    def values_per_page(self) -> int:
        """Number of float64 values per data page."""
        return self._values_per_page

    @property
    def num_sequences(self) -> int:
        return len(self._meta)

    @property
    def total_values(self) -> int:
        """Total number of stored values across all sequences."""
        return sum(meta.length for meta in self._meta.values())

    @property
    def total_data_pages(self) -> int:
        """Total number of data pages allocated for sequences."""
        return sum(meta.num_pages for meta in self._meta.values())

    def sequence_ids(self) -> List[int]:
        """All stored sequence ids, in insertion order."""
        return list(self._meta)

    def has_sequence(self, sid: int) -> bool:
        """Whether sequence ``sid`` is currently stored."""
        return sid in self._meta

    @staticmethod
    def _validated(sid: int, values: Sequence[float]) -> np.ndarray:
        array = np.ascontiguousarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise PageError(
                f"sequence {sid} must be one-dimensional, got shape "
                f"{array.shape}"
            )
        if array.size == 0:
            raise PageError(f"sequence {sid} is empty")
        if not np.all(np.isfinite(array)):
            raise PageError(
                f"sequence {sid} contains NaN or infinite values; the "
                f"distance bounds assume finite reals"
            )
        return array

    def add_sequence(
        self,
        sid: int,
        values: Sequence[float],
        session: Optional[object] = None,
    ) -> SequenceMeta:
        """Append a sequence to the store, packing it into data pages.

        ``session`` marks the active :class:`~repro.ingest.IngestSession`
        when called on a built (sealed) database — post-build mutation
        must be WAL-logged so it survives a crash (lint rule RS009).
        Pre-build loading passes ``None``.
        """
        if sid in self._meta:
            raise PageError(f"sequence id {sid} already stored")
        array = self._validated(sid, values)
        array.setflags(write=False)
        pages: List[int] = []
        for offset in range(0, array.size, self._values_per_page):
            chunk = array[offset : offset + self._values_per_page]
            pages.append(self._pager.allocate(PageKind.DATA, chunk))
        meta = SequenceMeta(sid=sid, length=array.size, pages=tuple(pages))
        self._meta[sid] = meta
        self._arrays[sid] = array
        return meta

    def extend_sequence(
        self,
        sid: int,
        values: Sequence[float],
        session: Optional[object] = None,
    ) -> SequenceMeta:
        """Append values to an existing sequence, reusing its last page.

        The partially filled final page (if any) is rewritten in place
        with its page slot topped up; wholly new values go into freshly
        allocated pages at the end of the file.  Every touched page is
        invalidated in the buffer pool so no reader can observe the
        stale payload (mutation invalidates, it does not wait for LRU
        pressure).  ``session`` marks the active ingest session (RS009).
        """
        meta = self._require(sid)
        extra = self._validated(sid, values)
        combined = np.concatenate([self._arrays[sid], extra])
        combined.setflags(write=False)
        vpp = self._values_per_page
        pages = list(meta.pages)
        filled = meta.length % vpp
        if filled:
            # Rewrite the partial last page with its slot now fuller.
            start = (len(pages) - 1) * vpp
            self._pager.write(pages[-1], combined[start : start + vpp])
            self._buffer.invalidate(pages[-1])
        for offset in range(len(pages) * vpp, combined.size, vpp):
            pages.append(
                self._pager.allocate(
                    PageKind.DATA, combined[offset : offset + vpp]
                )
            )
        new_meta = SequenceMeta(
            sid=sid, length=combined.size, pages=tuple(pages)
        )
        self._meta[sid] = new_meta
        self._arrays[sid] = combined
        return new_meta

    def remove_sequence(
        self, sid: int, session: Optional[object] = None
    ) -> SequenceMeta:
        """Drop a sequence, freeing its pages and evicting them from the
        buffer pool.  Returns the removed placement metadata.

        ``session`` marks the active ingest session (RS009).
        """
        meta = self._require(sid)
        for page_id in meta.pages:
            self._buffer.invalidate(page_id)
            self._pager.free(page_id)
        del self._meta[sid]
        del self._arrays[sid]
        return meta

    def _require(self, sid: int) -> SequenceMeta:
        try:
            return self._meta[sid]
        except KeyError:
            raise SequenceNotFoundError(
                f"sequence id {sid} is not in the store"
            ) from None

    def length(self, sid: int) -> int:
        """Length of sequence ``sid``."""
        return self._require(sid).length

    def meta(self, sid: int) -> SequenceMeta:
        """Placement metadata of sequence ``sid``."""
        return self._require(sid)

    def pages_for_range(self, sid: int, start: int, length: int) -> List[int]:
        """Page ids covering ``[start, start+length)`` of sequence ``sid``.

        Pure arithmetic — performs no I/O.  RU-COST's ``NUM_IO`` estimator
        combines this with :meth:`BufferPool.count_non_resident`.
        """
        meta = self._require(sid)
        self._check_range(meta, start, length)
        first = start // self._values_per_page
        last = (start + length - 1) // self._values_per_page
        return list(meta.pages[first : last + 1])

    @staticmethod
    def _check_range(meta: SequenceMeta, start: int, length: int) -> None:
        if length <= 0:
            raise PageError(f"subsequence length must be > 0, got {length}")
        if start < 0 or start + length > meta.length:
            raise PageError(
                f"range [{start}, {start + length}) out of bounds for "
                f"sequence {meta.sid} of length {meta.length}"
            )

    def get_subsequence(self, sid: int, start: int, length: int) -> np.ndarray:
        """Read ``length`` values of ``sid`` beginning at ``start``.

        All covering pages are faulted through the buffer pool so hit/miss
        accounting matches the paper's page-access metric.  Returns a
        read-only view.
        """
        meta = self._require(sid)
        self._check_range(meta, start, length)
        for page_id in self.pages_for_range(sid, start, length):
            self._buffer.get(page_id)
        return self._arrays[sid][start : start + length]

    def read_full_sequence(self, sid: int) -> np.ndarray:
        """Read an entire sequence sequentially through the buffer pool.

        Used by the SeqScan baseline: every data page is requested in file
        order, which with a small buffer degenerates to one physical read
        per page — the constant cost the paper reports for SeqScan.
        """
        meta = self._require(sid)
        for page_id in meta.pages:
            self._buffer.get(page_id)
        return self._arrays[sid]

    def peek_subsequence(self, sid: int, start: int, length: int) -> np.ndarray:
        """Read a subsequence without any I/O accounting.

        Reserved for gold-standard brute-force checks in tests and for
        index construction (which the paper performs offline).
        """
        meta = self._require(sid)
        self._check_range(meta, start, length)
        return self._arrays[sid][start : start + length]

    def peek_full_sequence(self, sid: int) -> np.ndarray:
        """Whole sequence without I/O accounting (offline/index build)."""
        return self._arrays[self._require(sid).sid]

    def iter_sequences(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate ``(sid, values)`` without I/O accounting (offline)."""
        for sid in self._meta:
            yield sid, self._arrays[sid]
