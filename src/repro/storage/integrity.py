"""Checksum helpers shared by the pager and the persistence layer.

Pages are Python objects (numpy slices, R*-tree nodes), not byte
buffers, so integrity protection works on a *canonical byte encoding*
of each payload: the CRC32 of that encoding is stored beside the page
and re-derived on every verified fetch.  The same CRC32 primitive
covers whole files in the on-disk format (``meta.json`` and the two
``.npz`` archives are checksummed into the ``MANIFEST`` sentinel and
``meta.json`` respectively).

CRC32 is deliberate: the threat model is bit rot, torn writes, and
truncation — not adversaries — and the checksum runs on the physical
read path, so it must cost microseconds per 4 KB page.
"""

from __future__ import annotations

import pathlib
import struct
import zlib
from typing import Union

import numpy as np

_NONE_SENTINEL = b"\x00repro:none"
_FILE_CHUNK = 1 << 20


def payload_checksum(payload: object) -> int:
    """CRC32 of a page payload's canonical byte encoding.

    Supports the three payload shapes the pager actually stores —
    ``None`` (freshly allocated), 1-D float64 numpy slices (data pages),
    and R*-tree nodes (duck-typed on ``level``/``entries``) — plus a
    ``repr`` fallback for anything tests stuff into pages.
    """
    if payload is None:
        return zlib.crc32(_NONE_SENTINEL)
    if isinstance(payload, np.ndarray):
        array = np.ascontiguousarray(payload)
        header = f"{array.dtype.str}:{array.shape}".encode()
        return zlib.crc32(array.tobytes(), zlib.crc32(header))
    entries = getattr(payload, "entries", None)
    level = getattr(payload, "level", None)
    if entries is not None and level is not None:
        crc = zlib.crc32(struct.pack("<qq", int(level), len(entries)))
        for entry in entries:
            crc = zlib.crc32(
                np.ascontiguousarray(entry.low, dtype=np.float64).tobytes(),
                crc,
            )
            crc = zlib.crc32(
                np.ascontiguousarray(entry.high, dtype=np.float64).tobytes(),
                crc,
            )
            child = -1 if entry.child_page is None else int(entry.child_page)
            if entry.record is not None:
                sid = int(entry.record.sid)
                window = int(entry.record.window_index)
            else:
                sid = window = -1
            crc = zlib.crc32(struct.pack("<qqq", child, sid, window), crc)
        return crc
    return zlib.crc32(repr(payload).encode())


def file_checksum(path: Union[str, pathlib.Path]) -> int:
    """CRC32 of a whole file, streamed in 1 MB chunks."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_FILE_CHUNK)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def bytes_checksum(data: bytes) -> int:
    """CRC32 of an in-memory byte string (``meta.json`` verification)."""
    return zlib.crc32(data)
