"""The physical page store (simulated disk).

:class:`Pager` owns the mapping from page ids to page payloads and counts
every physical read and write.  All higher layers go through the
:class:`~repro.storage.buffer.BufferPool`, so ``physical_reads`` here is
exactly the paper's "number of page accesses" metric: reads that would hit
the disk because the page was not resident in the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ConfigurationError, CorruptPageError, PageError
from repro.obs.tracer import NULL_TRACER
from repro.storage.integrity import payload_checksum
from repro.storage.page import PAGE_SIZE_DEFAULT, PageKind


#: Forward window (in pages) within which an ascending read is treated
#: as part of one elevator sweep rather than a fresh seek — the access
#: pattern produced by draining the deferred buffer in storage order.
READAHEAD_WINDOW = 32


@dataclass
class PagerStats:
    """Physical I/O counters for one pager."""

    physical_reads: int = 0
    physical_writes: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    _last_read_page: int = field(default=-(READAHEAD_WINDOW + 2), repr=False)

    def record_read(self, page_id: int) -> None:
        """Count one physical read, classifying it as sequential or random.

        A read is *sequential* when it targets a page at or shortly after
        the previously read page (within :data:`READAHEAD_WINDOW`) — the
        pattern produced by full scans and by the deferred retrieval
        mechanism's sorted sweeps, which the paper describes as turning
        "many random accesses into a series of sequential accesses".
        """
        self.physical_reads += 1
        gap = page_id - self._last_read_page
        if 0 < gap <= READAHEAD_WINDOW:
            self.sequential_reads += 1
        else:
            self.random_reads += 1
        self._last_read_page = page_id

    def record_write(self) -> None:
        self.physical_writes += 1

    def reset(self) -> None:
        self.physical_reads = 0
        self.physical_writes = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self._last_read_page = -(READAHEAD_WINDOW + 2)


class Pager:
    """An append-only page allocator with read/write accounting.

    Parameters
    ----------
    page_size:
        Page size in bytes.  Only used for geometry decisions by callers;
        the pager itself stores payloads as Python objects.
    verify_mode:
        ``"always"`` (default) checksum-verifies every sealed read —
        the historical behaviour.  ``"first-touch"`` verifies each page
        only on its *first* sealed read and trusts it afterwards until
        it is written, freed, or the pager is re-sealed.  Zero-copy
        backends use first-touch: their payloads are read-only views of
        an immutable map, so re-hashing every fetch buys nothing, while
        the first touch still catches media corruption introduced
        before the query ran.  Never combined with fault injection
        (injected corruption can land *after* the first read).

    Integrity
    ---------
    Each page carries a CRC32 checksum of its payload's canonical byte
    encoding (:func:`~repro.storage.integrity.payload_checksum`).  Index
    construction mutates node objects in place (it is offline, like the
    paper's excluded build phase), so checksums become authoritative only
    once :meth:`seal` snapshots every page — which
    :meth:`~repro.api.SubsequenceDatabase.build` and ``load()`` both do.
    After sealing, :meth:`write` keeps the affected checksum current and
    every :meth:`read` verifies its payload, raising
    :class:`~repro.exceptions.CorruptPageError` on a mismatch.
    Verification happens on the already-fetched payload and therefore
    never changes the physical read counters.
    """

    #: Accepted ``verify_mode`` values.
    VERIFY_MODES = ("always", "first-touch")

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        verify_mode: str = "always",
    ) -> None:
        if verify_mode not in self.VERIFY_MODES:
            raise ConfigurationError(
                f"verify_mode must be one of {self.VERIFY_MODES}, "
                f"got {verify_mode!r}"
            )
        self.page_size = page_size
        self.verify_mode = verify_mode
        self.stats = PagerStats()
        #: Observability hook; the disabled default costs one branch per
        #: physical read.  ``pager.read`` spans nest inside the buffer
        #: pool's ``buffer.fetch`` spans and isolate device time (e.g.
        #: injected latency faults) from retry/bookkeeping time.
        self.tracer = NULL_TRACER
        self._payloads: List[Any] = []
        self._kinds: List[PageKind] = []
        self._checksums: List[Optional[int]] = []
        self._sealed = False
        #: Pages already verified since the last seal (first-touch mode).
        self._verified: set = set()

    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def num_pages(self) -> int:
        """Total number of allocated pages."""
        return len(self._payloads)

    def allocate(self, kind: PageKind, payload: Any = None) -> int:
        """Allocate a new page and return its id.

        Allocation is counted as a physical write (the page must reach
        "disk" eventually), matching how index build cost would accrue.
        """
        page_id = len(self._payloads)
        self._payloads.append(payload)
        self._kinds.append(kind)
        self._checksums.append(
            payload_checksum(payload) if self._sealed else None
        )
        self.stats.record_write()
        return page_id

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._payloads):
            raise PageError(
                f"page id {page_id} out of range [0, {len(self._payloads)})"
            )

    def read(self, page_id: int) -> Any:
        """Physically read a page payload, counting the access.

        On a sealed pager the payload is checksum-verified; a mismatch
        raises :class:`~repro.exceptions.CorruptPageError`.
        """
        if self.tracer.enabled:
            with self.tracer.span("pager.read", page=page_id):
                return self._read_now(page_id)
        return self._read_now(page_id)

    def _read_now(self, page_id: int) -> Any:
        self._check(page_id)
        self.stats.record_read(page_id)
        payload = self._payloads[page_id]
        expected = self._checksums[page_id]
        if self._sealed and expected is not None:
            if self.verify_mode == "always":
                if payload_checksum(payload) != expected:
                    raise CorruptPageError(
                        f"page {page_id} ({self._kinds[page_id].value}) "
                        f"failed checksum verification"
                    )
            elif page_id not in self._verified:
                if payload_checksum(payload) != expected:
                    raise CorruptPageError(
                        f"page {page_id} ({self._kinds[page_id].value}) "
                        f"failed checksum verification"
                    )
                self._verified.add(page_id)
        return payload

    def write(self, page_id: int, payload: Any) -> None:
        """Physically write a page payload, counting the access."""
        self._check(page_id)
        self.stats.record_write()
        self._payloads[page_id] = payload
        self._verified.discard(page_id)
        if self._sealed:
            self._checksums[page_id] = payload_checksum(payload)

    def free(self, page_id: int) -> None:
        """Retire a page: drop its payload and retag it ``FREE``.

        Used by the ingest path when a sequence is deleted or an index
        node is condensed away.  The page id is never reused (the pager
        stays append-only, so saved layouts remain stable), but the
        payload is released and the page drops out of the ``DATA`` /
        index kind histograms.  Counted as a physical write — the freed
        page's header must reach disk.
        """
        self._check(page_id)
        self.stats.record_write()
        self._payloads[page_id] = None
        self._kinds[page_id] = PageKind.FREE
        self._verified.discard(page_id)
        if self._sealed:
            self._checksums[page_id] = payload_checksum(None)

    def kind_of(self, page_id: int) -> PageKind:
        """Return the :class:`PageKind` recorded at allocation time."""
        self._check(page_id)
        return self._kinds[page_id]

    def peek(self, page_id: int) -> Any:
        """Read a payload *without* counting I/O.

        Reserved for tests and for in-memory restructuring during index
        build, where the paper's algorithms would operate on pinned pages.
        """
        self._check(page_id)
        return self._payloads[page_id]

    def kind_histogram(self) -> Dict[PageKind, int]:
        """Number of allocated pages per kind (for Table 2-style reports)."""
        histogram: Dict[PageKind, int] = {}
        for kind in self._kinds:
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """Whether checksums are authoritative and verified on read."""
        return self._sealed

    def seal(self) -> None:
        """Snapshot every page checksum and enable read verification.

        Called once the page file reaches its query-serving state (end
        of ``build()`` / ``load()``); analogous to checksumming pages at
        flush time in a real engine.  Idempotent.
        """
        self._checksums = [
            payload_checksum(payload) for payload in self._payloads
        ]
        self._verified.clear()
        self._sealed = True

    def close(self) -> None:
        """Release any resources the pager holds.

        The in-memory pager owns nothing beyond Python objects, so this
        is a no-op hook; storage backends holding OS resources (memory
        maps, file descriptors) release them when the owning
        :class:`~repro.storage.backends.StorageBackend` closes.
        Idempotent.
        """

    def checksum_of(self, page_id: int) -> Optional[int]:
        """The stored checksum for a page (``None`` before sealing)."""
        self._check(page_id)
        return self._checksums[page_id]

    def verify_page(self, page_id: int) -> bool:
        """Checksum-check one page without counting I/O.

        Returns ``True`` when the page is clean or has no recorded
        checksum yet (unsealed pager).
        """
        self._check(page_id)
        expected = self._checksums[page_id]
        if expected is None:
            return True
        return payload_checksum(self._payloads[page_id]) == expected

    def verify_all(self) -> List[int]:
        """Page ids failing checksum verification (scrub's page walk)."""
        return [
            page_id
            for page_id in range(len(self._payloads))
            if not self.verify_page(page_id)
        ]
