"""Page identity and geometry.

The storage engine simulates a disk made of fixed-size pages (4 KB by
default, as in the paper's experimental setup).  Pages are not
byte-serialized — payloads are kept as Python objects — but all *capacity*
decisions (how many float64 values fit in a data page, how many R*-tree
entries fit in an index node) are derived from the configured byte size so
that the page-access counts reported by the benchmarks have the same
geometry as the paper's 4 KB-page testbed.
"""

from __future__ import annotations

import enum

from repro.exceptions import ConfigurationError

PAGE_SIZE_DEFAULT = 4096
"""Default page size in bytes (the paper uses 4 KB pages)."""

_FLOAT64_BYTES = 8
_PAGE_HEADER_BYTES = 32
"""Bytes reserved per page for a header (ids, counts, LSN-style fields)."""

_INDEX_ENTRY_OVERHEAD_BYTES = 12
"""Per-entry overhead in an index node: child page id / record id + flags."""


class PageKind(enum.Enum):
    """What a page stores; used for accounting and debugging."""

    DATA = "data"
    INDEX_LEAF = "index_leaf"
    INDEX_INTERNAL = "index_internal"
    FREE = "free"


def _check_page_size(page_size: int) -> None:
    if page_size < 128:
        raise ConfigurationError(
            f"page_size must be at least 128 bytes, got {page_size}"
        )


def values_per_page(page_size: int = PAGE_SIZE_DEFAULT) -> int:
    """Number of float64 time-series values a data page can hold.

    >>> values_per_page(4096)
    508
    """
    _check_page_size(page_size)
    return (page_size - _PAGE_HEADER_BYTES) // _FLOAT64_BYTES


def index_entries_per_page(
    dimensions: int, page_size: int = PAGE_SIZE_DEFAULT
) -> int:
    """Fan-out of an R*-tree node stored in one page.

    Each entry holds a ``dimensions``-dimensional MBR (two float64 vectors)
    plus a child pointer / record id.  This value doubles as the *blocking
    factor* that RU-COST uses for its lookahead ``h`` (Section 4 of the
    paper: "if h is set to the blocking factor of index pages, the overall
    performance is very stable").

    >>> index_entries_per_page(4, 4096)
    53
    """
    _check_page_size(page_size)
    if dimensions < 1:
        raise ConfigurationError(
            f"dimensions must be positive, got {dimensions}"
        )
    entry_bytes = 2 * dimensions * _FLOAT64_BYTES + _INDEX_ENTRY_OVERHEAD_BYTES
    fanout = (page_size - _PAGE_HEADER_BYTES) // entry_bytes
    if fanout < 2:
        raise ConfigurationError(
            f"page_size {page_size} too small for {dimensions}-dimensional "
            f"index entries (fan-out would be {fanout})"
        )
    return fanout
