"""Pluggable storage backends.

The simulated disk has always been one thing: an in-memory
:class:`~repro.storage.pager.Pager` holding page payloads as Python
objects, persisted through the format-v2 directory layout of
:mod:`repro.storage.persistence`.  This module abstracts that choice
behind :class:`StorageBackend` so a database can run its *query-serving
cache* on different substrates while everything above the pager — the
buffer pool, NUM_IO accounting, the R*-tree, every engine — stays
untouched:

``file`` (:class:`FileBackend`)
    The reference backend.  Heap-resident page payloads, checksums
    verified on every sealed read.  Byte-identical to the historical
    behaviour.

``mmap`` (:class:`MmapBackend`)
    Zero-copy data pages.  On :meth:`~StorageBackend.attach` the
    backend writes every stored sequence into one scratch ``values.bin``
    file, memory-maps it read-only, and swaps both the store's
    sequence arrays and every ``DATA`` page payload for read-only numpy
    views into the map.  Page *content* is unchanged, so checksums,
    NUM_IO counts, and query results are bit-identical to the file
    backend; what changes is residency — data pages live in the OS page
    cache and are shared, not copied, across the store and the pager.
    Checksums verify on first touch (see
    ``Pager(verify_mode="first-touch")``) unless a fault injector is
    active, in which case every read verifies, since injected
    corruption may land after a page's first read.

Both backends persist through the *same* format-v2 directory layout:
the backend is a runtime cache policy, not a file format.  A database
saved under one backend loads under the other.

Online ingest degrades gracefully on ``mmap``: extending a sequence
concatenates onto a fresh heap array (the map is immutable), so mutated
sequences simply migrate back to heap pages while untouched ones stay
zero-copy.
"""

from __future__ import annotations

import abc
import mmap
import os
import pathlib
import shutil
import tempfile
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.clock import Clock
from repro.exceptions import ConfigurationError, StorageError
from repro.storage.faults import FaultInjector, FaultyPager
from repro.storage.page import PAGE_SIZE_DEFAULT
from repro.storage.pager import Pager

if TYPE_CHECKING:
    from repro.api import SubsequenceDatabase

#: Accepted string specs for :func:`resolve_backend`.
BACKEND_NAMES = ("file", "mmap")


class StorageBackend(abc.ABC):
    """Where a database's page payloads live at query time.

    One backend instance belongs to exactly one
    :class:`~repro.api.SubsequenceDatabase`; backends hold per-database
    state (scratch files, memory maps), so they are never shared.  The
    lifecycle is::

        pager = backend.open_pager(page_size, injector, clock)
        ...inserts / load...
        backend.attach(db)     # build()/load() call this before seal()
        ...queries...
        backend.close()        # db.close() — release OS resources

    ``attach`` and ``close`` are idempotent.
    """

    #: Spec name, e.g. ``"file"``.
    name: str = ""

    @abc.abstractmethod
    def open_pager(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        fault_injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
    ) -> Pager:
        """Construct the pager this backend serves pages through."""

    def attach(self, db: "SubsequenceDatabase") -> None:
        """Install the backend's cache once the database is built/loaded.

        Called by ``build()`` and ``load()`` immediately *before*
        ``pager.seal()``, so checksums snapshot whatever representation
        the backend installed.  The default is a no-op (heap payloads
        need no installation).
        """

    def close(self) -> None:
        """Release OS resources (maps, scratch files).  Idempotent."""

    def capabilities(self) -> Dict[str, object]:
        """Feature flags for tests and ``describe`` output."""
        return {"zero_copy": False, "verify": "always"}

    def describe(self) -> Dict[str, object]:
        """Human-readable backend summary."""
        summary: Dict[str, object] = {"backend": self.name}
        summary.update(self.capabilities())
        return summary


class FileBackend(StorageBackend):
    """The reference backend: heap payloads, verify-on-every-read."""

    name = "file"

    def open_pager(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        fault_injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
    ) -> Pager:
        if fault_injector is not None:
            return FaultyPager(
                page_size=page_size, injector=fault_injector, clock=clock
            )
        return Pager(page_size=page_size)


class MmapBackend(StorageBackend):
    """Zero-copy data pages backed by a read-only memory map.

    Parameters
    ----------
    scratch_dir:
        Directory to create the per-database scratch directory in.
        Defaults to the system temporary directory.
    """

    name = "mmap"

    def __init__(
        self, scratch_dir: Optional[Union[str, os.PathLike]] = None
    ) -> None:
        self._scratch_parent = (
            None if scratch_dir is None else pathlib.Path(scratch_dir)
        )
        self._scratch: Optional[pathlib.Path] = None
        self._map: Optional[mmap.mmap] = None
        self._base: Optional[np.ndarray] = None
        self._injected = False
        self._db: Optional["SubsequenceDatabase"] = None
        #: sid -> the exact view object installed in the store.
        self._installed_arrays: Dict[int, np.ndarray] = {}
        #: page id -> the exact view object installed in the pager.
        self._installed_payloads: Dict[int, np.ndarray] = {}

    def open_pager(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        fault_injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
    ) -> Pager:
        self._injected = fault_injector is not None
        if fault_injector is not None:
            # Injected corruption replaces payloads at arbitrary later
            # reads; first-touch trust would miss it.
            return FaultyPager(
                page_size=page_size,
                injector=fault_injector,
                clock=clock,
                verify_mode="always",
            )
        return Pager(page_size=page_size, verify_mode="first-touch")

    def capabilities(self) -> Dict[str, object]:
        return {
            "zero_copy": True,
            "verify": "always" if self._injected else "first-touch",
        }

    def describe(self) -> Dict[str, object]:
        summary = super().describe()
        summary["mapped_bytes"] = (
            0 if self._map is None else len(self._map)
        )
        summary["scratch"] = (
            "" if self._scratch is None else str(self._scratch)
        )
        return summary

    # ------------------------------------------------------------------
    # Attach / detach
    # ------------------------------------------------------------------

    def attach(self, db: "SubsequenceDatabase") -> None:
        """Map every stored sequence and swap in zero-copy views.

        Writes ``values.bin`` (all sequences concatenated, insertion
        order), maps it read-only, and repoints each sequence array and
        each ``DATA`` page payload at a view of the map.  View contents
        equal the originals, so the seal that follows snapshots the
        same checksums a heap database would.
        """
        self.close()  # re-attach after a rebuild starts clean
        self._db = db
        store = db.store
        placements: Dict[int, Tuple[int, int]] = {}
        total = 0
        for sid in store.sequence_ids():
            length = int(store.peek_full_sequence(sid).size)
            placements[sid] = (total, length)
            total += length
        if total == 0:
            return
        parent = self._scratch_parent
        scratch = pathlib.Path(
            tempfile.mkdtemp(
                prefix="repro-mmap-",
                dir=None if parent is None else str(parent),
            )
        )
        self._scratch = scratch
        path = scratch / "values.bin"
        try:
            with open(path, "wb") as handle:
                for sid in store.sequence_ids():
                    handle.write(
                        np.ascontiguousarray(
                            store.peek_full_sequence(sid),
                            dtype=np.float64,
                        ).tobytes()
                    )
            fd = os.open(path, os.O_RDONLY)
            try:
                self._map = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
            finally:
                os.close(fd)
        except OSError as error:
            self.close()
            raise StorageError(
                f"mmap backend failed to map {path}: {error}"
            ) from error
        base = np.frombuffer(self._map, dtype=np.float64)
        self._base = base
        vpp = store.values_per_page
        pager = db.pager
        for sid, (offset, length) in placements.items():
            view = base[offset : offset + length]
            store._arrays[sid] = view
            self._installed_arrays[sid] = view
            meta = store.meta(sid)
            for index, page_id in enumerate(meta.pages):
                chunk = view[index * vpp : (index + 1) * vpp]
                pager._payloads[page_id] = chunk
                self._installed_payloads[page_id] = chunk

    def close(self) -> None:
        """Migrate still-installed views back to heap and unmap.

        Any view we installed that is *still* the live object (identity
        check — ingest may have already replaced some) is copied back
        to a heap array, so the database stays fully usable after the
        backend is gone.
        """
        if self._map is None and self._scratch is None:
            return
        db = self._db
        if db is not None:
            store = db.store
            pager = db.pager
            for sid, view in self._installed_arrays.items():
                if store._arrays.get(sid) is view:
                    copy = np.array(view)
                    copy.setflags(write=False)
                    store._arrays[sid] = copy
            for page_id, chunk in self._installed_payloads.items():
                if (
                    page_id < len(pager._payloads)
                    and pager._payloads[page_id] is chunk
                ):
                    copy = np.array(chunk)
                    copy.setflags(write=False)
                    pager._payloads[page_id] = copy
        self._installed_arrays.clear()
        self._installed_payloads.clear()
        self._base = None
        self._db = None
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                # A caller still holds a view; the map is freed when
                # the last view is garbage-collected.
                pass
            self._map = None
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None


def resolve_backend(
    spec: Union[None, str, StorageBackend],
) -> StorageBackend:
    """Turn a backend spec into a fresh :class:`StorageBackend`.

    ``None`` and ``"file"`` give the reference :class:`FileBackend`;
    ``"mmap"`` gives a :class:`MmapBackend`; an existing instance
    passes through unchanged (callers owning several databases must
    resolve one instance per database — backends hold per-database
    state).
    """
    if spec is None:
        return FileBackend()
    if isinstance(spec, StorageBackend):
        return spec
    if isinstance(spec, str):
        if spec == "file":
            return FileBackend()
        if spec == "mmap":
            return MmapBackend()
        raise ConfigurationError(
            f"unknown storage backend {spec!r}; expected one of "
            f"{BACKEND_NAMES}"
        )
    raise ConfigurationError(
        f"backend must be None, a name in {BACKEND_NAMES}, or a "
        f"StorageBackend instance, got {type(spec).__name__}"
    )
