"""Deferred retrieval of candidate subsequences.

Han et al. [12] observed that index-driven ranked matching issues many
*random* subsequence reads, and proposed delaying them: requests are
accumulated in a small side buffer (0.5 % of the database in the paper's
experiments), then drained in storage order so the disk sees a
quasi-sequential sweep.  All "(D)" engine variants in the benchmarks use
this mechanism.

The buffer stores only request descriptors, never sequence values, so its
memory footprint is tiny — mirroring the paper's 8-byte-per-request
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.exceptions import ConfigurationError
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class CandidateRequest:
    """A delayed request for one candidate subsequence.

    Attributes
    ----------
    sid:
        Data sequence id.
    start:
        0-based start offset of the candidate subsequence.
    length:
        Candidate length (always ``Len(Q)`` in this system).
    lower_bound:
        The index-level lower bound that admitted the candidate; engines
        re-check it against the current ``delta_cur`` at drain time, since
        the threshold may have tightened while the request sat in the
        buffer.
    context:
        Opaque engine-specific payload (e.g. which subquery produced it).
    """

    sid: int
    start: int
    length: int
    lower_bound: float
    context: Any = None

    @property
    def sort_key(self) -> tuple:
        """Storage-order key: drain requests file-sequentially."""
        return (self.sid, self.start)


@dataclass
class DeferredStats:
    """Counters describing how the deferred buffer was used."""

    requests_added: int = 0
    flushes: int = 0
    requests_drained: int = 0
    requests_skipped: int = 0


class DeferredRetrievalBuffer:
    """Accumulate candidate requests and drain them in storage order.

    Parameters
    ----------
    capacity:
        Maximum number of pending requests before :meth:`is_full` turns
        true.  Use :meth:`capacity_for_database` to derive the paper's
        0.5 %-of-database budget.
    """

    #: Bytes the paper budgets per delayed request descriptor.
    REQUEST_BYTES = 16

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"deferred buffer capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._pending: List[CandidateRequest] = []
        self.stats = DeferredStats()
        #: Observability hook (set by the owning evaluator); records
        #: drop/skip decisions that the span around the drain loop —
        #: which lives in the evaluator, because :meth:`drain` is lazy —
        #: cannot see item-by-item.
        self.tracer = NULL_TRACER

    @classmethod
    def capacity_for_database(
        cls, database_bytes: int, fraction: float = 0.005
    ) -> int:
        """Request capacity from a database size and memory fraction.

        The paper allocates memory of only 0.5 % of the database size for
        delayed requests; each descriptor costs :attr:`REQUEST_BYTES`.
        """
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        return max(1, int(database_bytes * fraction) // cls.REQUEST_BYTES)

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def is_full(self) -> bool:
        """True when the buffer must be flushed before adding more."""
        return len(self._pending) >= self._capacity

    def add(self, request: CandidateRequest) -> None:
        """Queue one request.  Callers flush when :attr:`is_full`."""
        self._pending.append(request)
        self.stats.requests_added += 1

    def requeue(self, requests: List[CandidateRequest]) -> None:
        """Put drained-but-unprocessed requests back (interrupt recovery).

        Used when a budget/deadline interrupt lands mid-flush: the
        remaining requests return to the buffer so their lower bounds
        still count toward the exactness certificate.  Not counted as
        new additions in :attr:`stats`.
        """
        self._pending.extend(requests)

    def min_pending_lower_bound(self) -> float:
        """Smallest admitted lower bound among pending requests.

        ``inf`` when empty.  This is the deferred buffer's contribution
        to a partial result's exactness certificate: no unretrieved
        deferred candidate can beat this bound.
        """
        if not self._pending:
            return float("inf")
        return min(request.lower_bound for request in self._pending)

    def drain(
        self, threshold: Optional[float] = None
    ) -> Iterator[CandidateRequest]:
        """Yield pending requests in storage order and empty the buffer.

        Parameters
        ----------
        threshold:
            If given, requests whose recorded ``lower_bound`` already
            exceeds it are dropped (counted in ``requests_skipped``) —
            the candidate was admitted under a looser ``delta_cur`` than
            the current one, so retrieving it cannot improve the top-k.
        """
        pending, self._pending = self._pending, []
        self.stats.flushes += 1
        pending.sort(key=lambda request: request.sort_key)
        traced = self.tracer.enabled
        for request in pending:
            if threshold is not None and request.lower_bound > threshold:
                self.stats.requests_skipped += 1
                if traced:
                    self.tracer.metrics.counter("deferred.skipped").inc()
                continue
            self.stats.requests_drained += 1
            if traced:
                self.tracer.metrics.counter("deferred.drained").inc()
            yield request
