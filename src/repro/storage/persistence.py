"""Save and load a built database, crash-safely.

A :class:`~repro.api.SubsequenceDatabase` persists to a directory of
four files:

* ``meta.json`` — configuration, sequence placement, page kinds, tree
  shape, plus the whole-file checksums and array-shape manifest of the
  two ``.npz`` archives;
* ``values.npz`` — the raw sequence values;
* ``index.npz`` — every R*-tree node flattened into columnar arrays;
* ``MANIFEST`` — the commit sentinel, written last: format marker and
  the CRC32 of ``meta.json``.  A directory without it is either not a
  repro database or an interrupted save.

Durability protocol: everything is written into a temporary sibling
directory, each file is fsynced, and the directory is atomically
renamed into place (any previous database is swapped out and removed
only after the new one is in place).  A crash at any point leaves
either the old database or the new one — never a torn mix — and the
temp directory is cleaned up on failure.  The load path verifies, in
order: the MANIFEST sentinel, the format version, ``meta.json``'s
checksum, the sizes and checksums of both ``.npz`` files (truncation
raises :class:`~repro.exceptions.PartialSaveError`, corruption raises
:class:`~repro.exceptions.IntegrityError`), the recorded array shapes,
and — during reconstruction — that every referenced array actually
exists (:class:`~repro.exceptions.SequenceNotFoundError` /
``IntegrityError`` instead of a bare ``KeyError``).

The load path reconstructs the pager **page-for-page** (same page ids,
same node contents), so a reloaded database produces identical query
results *and identical I/O counts* — benchmarks are reproducible across
save/load.  The reconstructed pager is sealed, re-enabling per-page
checksum verification.  PSM's auxiliary sliding index is not
serialized; it is rebuilt deterministically on demand
(``load(..., psm=True)``).

This module reaches into the private state of the storage and index
classes; it lives inside the package precisely so that no other code
has to.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
from typing import TYPE_CHECKING, Any, Dict, List, Union

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    IntegrityError,
    PartialSaveError,
    SequenceNotFoundError,
)
from repro.index.rstar import Entry, LeafRecord, RStarNode, RStarTree
from repro.storage.integrity import bytes_checksum, file_checksum
from repro.storage.page import PageKind
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceMeta

FORMAT_VERSION = 2

MANIFEST_NAME = "MANIFEST"
MANIFEST_MAGIC = "repro-database"

_CHECKSUMMED_FILES = ("values.npz", "index.npz")

PathLike = Union[str, pathlib.Path]

if TYPE_CHECKING:
    from repro.api import SubsequenceDatabase


def _fsync_file(path: pathlib.Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: pathlib.Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover — platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def is_database_directory(path: PathLike) -> bool:
    """Whether ``path`` looks like a committed repro database."""
    return (pathlib.Path(path) / MANIFEST_NAME).exists()


def _check_save_target(path: pathlib.Path) -> None:
    """Refuse to clobber anything that is not a repro database."""
    if not path.exists():
        return
    if not path.is_dir():
        raise ConfigurationError(
            f"save target {path} exists and is not a directory"
        )
    if any(path.iterdir()) and not is_database_directory(path):
        raise ConfigurationError(
            f"refusing to overwrite {path}: directory is not empty and "
            f"has no {MANIFEST_NAME} sentinel (not a repro database)"
        )


def save_database(
    db: "SubsequenceDatabase",
    directory: PathLike,
    extra_meta: Dict[str, Any] = None,
) -> None:
    """Serialize a built database into ``directory``, atomically.

    The write lands in a temporary sibling directory first and is
    renamed into place only once every file (including the ``MANIFEST``
    commit sentinel) is on disk; on any failure the temp directory is
    removed and an existing database at ``directory`` is untouched.

    ``extra_meta`` keys are merged into ``meta.json`` — the ingest
    checkpoint records its ``wal_lsn`` watermark this way, so recovery
    knows which WAL records the checkpoint already contains.
    """
    if db.index is None:
        raise ConfigurationError("cannot save before build()")
    path = pathlib.Path(directory)
    _check_save_target(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    temp = pathlib.Path(
        tempfile.mkdtemp(prefix=f".{path.name}.tmp-", dir=path.parent)
    )
    try:
        _write_database(db, temp, extra_meta)
        _fsync_dir(temp)
        _commit(temp, path)
    except BaseException:
        shutil.rmtree(temp, ignore_errors=True)
        raise
    _fsync_dir(path.parent)


def _commit(temp: pathlib.Path, path: pathlib.Path) -> None:
    """Swap the fully-written temp directory into place."""
    if path.exists():
        graveyard = pathlib.Path(
            tempfile.mkdtemp(prefix=f".{path.name}.old-", dir=path.parent)
        )
        old = graveyard / path.name
        path.rename(old)
        try:
            temp.rename(path)
        except BaseException:  # pragma: no cover — roll the old one back
            old.rename(path)
            shutil.rmtree(graveyard, ignore_errors=True)
            raise
        shutil.rmtree(graveyard, ignore_errors=True)
    else:
        temp.rename(path)


def _write_database(
    db: "SubsequenceDatabase",
    path: pathlib.Path,
    extra_meta: Dict[str, Any] = None,
) -> None:
    """Write all four files into ``path`` (already existing and empty)."""
    tree = db.index.tree

    values_arrays = {
        f"sid_{sid}": db.store.peek_full_sequence(sid)
        for sid in db.store.sequence_ids()
    }
    np.savez_compressed(path / "values.npz", **values_arrays)
    _fsync_file(path / "values.npz")

    node_pages: List[int] = []
    node_levels: List[int] = []
    node_counts: List[int] = []
    lows: List[np.ndarray] = []
    highs: List[np.ndarray] = []
    children: List[int] = []
    record_sids: List[int] = []
    record_windows: List[int] = []
    for page_id in range(db.pager.num_pages):
        kind = db.pager.kind_of(page_id)
        if kind not in (PageKind.INDEX_LEAF, PageKind.INDEX_INTERNAL):
            continue
        node: RStarNode = db.pager.peek(page_id)
        node_pages.append(page_id)
        node_levels.append(node.level)
        node_counts.append(len(node.entries))
        for entry in node.entries:
            lows.append(entry.low)
            highs.append(entry.high)
            if entry.record is not None:
                children.append(-1)
                record_sids.append(entry.record.sid)
                record_windows.append(entry.record.window_index)
            else:
                children.append(entry.child_page)
                record_sids.append(-1)
                record_windows.append(-1)
    index_arrays = {
        "node_pages": np.asarray(node_pages, dtype=np.int64),
        "node_levels": np.asarray(node_levels, dtype=np.int64),
        "node_counts": np.asarray(node_counts, dtype=np.int64),
        "lows": (
            np.stack(lows)
            if lows
            else np.zeros((0, db.features), dtype=np.float64)
        ),
        "highs": (
            np.stack(highs)
            if highs
            else np.zeros((0, db.features), dtype=np.float64)
        ),
        "children": np.asarray(children, dtype=np.int64),
        "record_sids": np.asarray(record_sids, dtype=np.int64),
        "record_windows": np.asarray(record_windows, dtype=np.int64),
    }
    np.savez_compressed(path / "index.npz", **index_arrays)
    _fsync_file(path / "index.npz")

    meta = {
        "format_version": FORMAT_VERSION,
        "omega": db.omega,
        "features": db.features,
        "data_stride": db.index.data_stride,
        "p": db.p,
        "buffer_fraction": db.buffer_fraction,
        "page_size": db.pager.page_size,
        "root_page": tree.root_page,
        "max_entries": tree.max_entries,
        "tree_size": len(tree),
        "page_kinds": [
            db.pager.kind_of(i).value for i in range(db.pager.num_pages)
        ],
        "sequences": [
            {
                "sid": m.sid,
                "length": m.length,
                "pages": list(m.pages),
            }
            for m in (db.store.meta(sid) for sid in db.store.sequence_ids())
        ],
        "files": {
            name: {
                "crc32": file_checksum(path / name),
                "bytes": (path / name).stat().st_size,
            }
            for name in _CHECKSUMMED_FILES
        },
        "array_shapes": {
            "values.npz": {
                name: list(array.shape)
                for name, array in values_arrays.items()
            },
            "index.npz": {
                name: list(array.shape)
                for name, array in index_arrays.items()
            },
        },
    }
    sliding = db._sliding_index  # noqa: SLF001
    if sliding is not None:
        # PSM's sliding-tree nodes already live in the shared pager (so
        # they are in index.npz with every other index page); recording
        # its root/size/bloom here lets load reattach it page-for-page
        # instead of rebuilding — which online ingest requires, since an
        # incrementally maintained tree differs from a fresh bulk load.
        meta["sliding"] = {
            "root_page": sliding.tree.root_page,
            "max_entries": sliding.tree.max_entries,
            "tree_size": len(sliding.tree),
            "stride": sliding.stride,
            "bloom": sliding.bloom.to_state(),
        }
    if extra_meta:
        meta.update(extra_meta)
    meta_bytes = json.dumps(meta).encode()
    (path / "meta.json").write_bytes(meta_bytes)
    _fsync_file(path / "meta.json")

    # The commit sentinel goes last: its presence asserts every other
    # file above reached the disk intact.
    manifest = {
        "magic": MANIFEST_MAGIC,
        "format_version": FORMAT_VERSION,
        "files": ["meta.json", *_CHECKSUMMED_FILES],
        "meta_crc32": bytes_checksum(meta_bytes),
        "meta_bytes": len(meta_bytes),
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    _fsync_file(path / MANIFEST_NAME)


def _verify_on_disk(path: pathlib.Path) -> Dict[str, Any]:
    """Run the MANIFEST / checksum / size checks; return parsed meta."""
    if not path.exists():
        raise FileNotFoundError(f"no database directory at {path}")
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        if (path / "meta.json").exists():
            raise PartialSaveError(
                f"{path} has no {MANIFEST_NAME} sentinel: interrupted "
                f"save_database() or a pre-version-{FORMAT_VERSION} "
                f"format"
            )
        raise FileNotFoundError(f"{path} is not a repro database")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (ValueError, OSError) as error:
        raise IntegrityError(f"unreadable {MANIFEST_NAME}: {error}") from None
    if manifest.get("magic") != MANIFEST_MAGIC:
        raise IntegrityError(
            f"{MANIFEST_NAME} magic is {manifest.get('magic')!r}, "
            f"expected {MANIFEST_MAGIC!r}"
        )

    meta_path = path / "meta.json"
    if not meta_path.exists():
        raise PartialSaveError(f"{path} is missing meta.json")
    meta_bytes = meta_path.read_bytes()
    try:
        meta = json.loads(meta_bytes)
    except ValueError as error:
        raise IntegrityError(f"meta.json is not valid JSON: {error}") from None
    # Version check precedes the checksum so a deliberately edited
    # format_version reports "unsupported version", not "corrupt".
    if meta.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported database format version "
            f"{meta.get('format_version')!r}"
        )
    if bytes_checksum(meta_bytes) != manifest.get("meta_crc32"):
        raise IntegrityError(
            "meta.json failed checksum verification against MANIFEST"
        )

    for name in _CHECKSUMMED_FILES:
        recorded = meta.get("files", {}).get(name)
        if recorded is None:
            raise IntegrityError(f"meta.json records no checksum for {name}")
        file_path = path / name
        if not file_path.exists():
            raise PartialSaveError(f"{path} is missing {name}")
        actual_bytes = file_path.stat().st_size
        if actual_bytes < recorded["bytes"]:
            raise PartialSaveError(
                f"{name} is truncated: {actual_bytes} bytes on disk, "
                f"{recorded['bytes']} recorded at save time"
            )
        if actual_bytes > recorded["bytes"]:
            raise IntegrityError(
                f"{name} grew after save: {actual_bytes} bytes on disk, "
                f"{recorded['bytes']} recorded"
            )
        if file_checksum(file_path) != recorded["crc32"]:
            raise IntegrityError(
                f"{name} failed whole-file checksum verification"
            )
    return meta


def _load_npz(
    path: pathlib.Path, meta: Dict[str, Any], name: str
) -> Any:
    """Open one ``.npz`` archive and verify its array-shape manifest."""
    try:
        data = np.load(path / name)
    except Exception as error:  # zipfile/zlib errors are not one class
        raise IntegrityError(f"cannot open {name}: {error}") from None
    recorded_shapes = meta.get("array_shapes", {}).get(name)
    if recorded_shapes is not None:
        on_disk = set(data.files)
        for array_name, shape in recorded_shapes.items():
            if array_name not in on_disk:
                raise IntegrityError(
                    f"{name} is missing array {array_name!r} recorded in "
                    f"the meta.json shape manifest"
                )
            actual = list(data[array_name].shape)
            if actual != shape:
                raise IntegrityError(
                    f"{name}:{array_name} has shape {actual}, manifest "
                    f"records {shape}"
                )
    return data


def _sequence_pages(seq: Dict[str, Any]) -> List[int]:
    """Page-id list of one meta.json sequence entry.

    Newer saves record the explicit (possibly non-contiguous, after
    online extends) ``pages`` list; older version-2 saves recorded only
    ``first_page``/``num_pages`` for the contiguous layout.
    """
    pages = seq.get("pages")
    if pages is not None:
        return [int(page_id) for page_id in pages]
    return list(
        range(seq["first_page"], seq["first_page"] + seq["num_pages"])
    )


def load_database(
    directory: PathLike,
    psm: bool = False,
    backend: Any = None,
) -> "SubsequenceDatabase":
    """Reconstruct a database saved by :func:`save_database`.

    Verifies the MANIFEST sentinel, whole-file checksums, sizes, and
    array shapes before touching any data; structural dangling
    references surface as :class:`SequenceNotFoundError` or
    :class:`IntegrityError` rather than raw ``KeyError``.

    ``backend`` is a storage-backend spec (see
    :func:`repro.storage.backends.resolve_backend`); the persisted
    format is backend-independent, so any save loads under any backend.
    """
    path = pathlib.Path(directory)
    meta = _verify_on_disk(path)

    # NpzFile objects hold open zip handles; close them deterministically
    # (the arrays below are materialised copies) so long-lived processes
    # do not leak file descriptors or trip ResourceWarning.
    values = _load_npz(path, meta, "values.npz")
    try:
        index_data = _load_npz(path, meta, "index.npz")
        try:
            return _reconstruct(
                path, meta, values, index_data, psm, backend
            )
        finally:
            index_data.close()
    finally:
        values.close()


def _reconstruct(
    path: pathlib.Path,
    meta: Dict[str, Any],
    values: Any,
    index_data: Any,
    psm: bool,
    backend: Any,
) -> "SubsequenceDatabase":
    """Rebuild the database object from verified, open archives."""
    from repro.api import SubsequenceDatabase
    from repro.index.builder import DualMatchIndex
    from repro.storage.sequences import SequenceStore

    required_columns = (
        "node_pages",
        "node_levels",
        "node_counts",
        "lows",
        "highs",
        "children",
        "record_sids",
        "record_windows",
    )
    for column in required_columns:
        if column not in index_data.files:
            raise IntegrityError(
                f"index.npz is missing required array {column!r}"
            )

    db = SubsequenceDatabase(
        omega=meta["omega"],
        features=meta["features"],
        page_size=meta["page_size"],
        buffer_fraction=meta["buffer_fraction"],
        p=meta["p"],
        data_stride=meta.get("data_stride"),
        backend=backend,
    )
    pager: Pager = db.pager
    kinds = [PageKind(value) for value in meta["page_kinds"]]

    # Rebuild node objects keyed by their original page id.
    nodes: Dict[int, RStarNode] = {}
    cursor = 0
    for page_id, level, count in zip(
        index_data["node_pages"],
        index_data["node_levels"],
        index_data["node_counts"],
    ):
        entries = []
        for offset in range(cursor, cursor + int(count)):
            low = index_data["lows"][offset]
            high = index_data["highs"][offset]
            child = int(index_data["children"][offset])
            if child < 0:
                record = LeafRecord(
                    sid=int(index_data["record_sids"][offset]),
                    window_index=int(index_data["record_windows"][offset]),
                )
                entries.append(Entry(low=low, high=high, record=record))
            else:
                entries.append(Entry(low=low, high=high, child_page=child))
        cursor += int(count)
        nodes[int(page_id)] = RStarNode(level=int(level), entries=entries)

    # Replay page allocation in original order: data pages are slices
    # of the sequence arrays; index pages are the rebuilt nodes.
    arrays: Dict[int, np.ndarray] = {}
    for seq in meta["sequences"]:
        key = f"sid_{seq['sid']}"
        if key not in values.files:
            raise SequenceNotFoundError(
                f"meta.json lists sequence {seq['sid']} but values.npz "
                f"has no array {key!r}"
            )
        arrays[seq["sid"]] = np.ascontiguousarray(
            values[key], dtype=np.float64
        )
    for seq in meta["sequences"]:
        if arrays[seq["sid"]].size != seq["length"]:
            raise IntegrityError(
                f"sequence {seq['sid']}: values.npz holds "
                f"{arrays[seq['sid']].size} values, meta.json records "
                f"{seq['length']}"
            )
    for array in arrays.values():
        array.setflags(write=False)
    page_owner: Dict[int, tuple] = {}
    from repro.storage.page import values_per_page

    per_page = values_per_page(meta["page_size"])
    for seq in meta["sequences"]:
        for index, page_id in enumerate(_sequence_pages(seq)):
            page_owner[page_id] = (seq["sid"], index * per_page)
    for page_id, kind in enumerate(kinds):
        if kind == PageKind.DATA:
            if page_id not in page_owner:
                raise IntegrityError(
                    f"data page {page_id} is owned by no sequence in "
                    f"meta.json"
                )
            sid, offset = page_owner[page_id]
            payload = arrays[sid][offset : offset + per_page]
        elif kind == PageKind.FREE:
            # A retired page (deleted sequence / condensed index node):
            # its slot is preserved so every surviving page id is stable.
            payload = None
        else:
            if page_id not in nodes:
                raise IntegrityError(
                    f"meta.json marks page {page_id} as {kind.value} but "
                    f"index.npz holds no node for it"
                )
            payload = nodes[page_id]
        allocated = pager.allocate(kind, payload)
        assert allocated == page_id

    store: SequenceStore = db.store
    for seq in meta["sequences"]:
        store._meta[seq["sid"]] = SequenceMeta(  # noqa: SLF001
            sid=seq["sid"],
            length=seq["length"],
            pages=tuple(_sequence_pages(seq)),
        )
        store._arrays[seq["sid"]] = arrays[seq["sid"]]  # noqa: SLF001

    if not 0 <= meta["root_page"] < pager.num_pages:
        raise IntegrityError(
            f"meta.json root_page {meta['root_page']} is outside the "
            f"page file [0, {pager.num_pages})"
        )

    tree = RStarTree.__new__(RStarTree)
    tree._pager = pager  # noqa: SLF001
    tree._buffer = db.buffer  # noqa: SLF001
    tree.dimensions = meta["features"]
    tree.max_entries = meta["max_entries"]
    tree.min_entries = max(2, int(meta["max_entries"] * 0.4))
    tree._size = meta["tree_size"]  # noqa: SLF001
    tree.root_page = meta["root_page"]

    db.index = DualMatchIndex(
        tree=tree,
        store=store,
        omega=meta["omega"],
        features=meta["features"],
        p=meta["p"],
        data_stride=meta.get("data_stride"),
    )
    if psm:
        sliding_meta = meta.get("sliding")
        if sliding_meta is not None:
            from repro.engines.psm import SlidingWindowIndex
            from repro.index.bloom import BloomFilter

            if not 0 <= sliding_meta["root_page"] < pager.num_pages:
                raise IntegrityError(
                    f"meta.json sliding root_page "
                    f"{sliding_meta['root_page']} is outside the page "
                    f"file [0, {pager.num_pages})"
                )
            sliding_tree = RStarTree.__new__(RStarTree)
            sliding_tree._pager = pager  # noqa: SLF001
            sliding_tree._buffer = db.buffer  # noqa: SLF001
            sliding_tree.dimensions = meta["features"]
            sliding_tree.max_entries = sliding_meta["max_entries"]
            sliding_tree.min_entries = max(
                2, int(sliding_meta["max_entries"] * 0.4)
            )
            sliding_tree._size = sliding_meta["tree_size"]  # noqa: SLF001
            sliding_tree.root_page = sliding_meta["root_page"]
            db._sliding_index = SlidingWindowIndex(  # noqa: SLF001
                tree=sliding_tree,
                store=store,
                omega=meta["omega"],
                features=meta["features"],
                bloom=BloomFilter.from_state(sliding_meta["bloom"]),
                stride=sliding_meta["stride"],
                p=meta["p"],
            )
        else:
            # Pre-ingest saves recorded no sliding metadata: rebuild
            # deterministically, as older loads always did.
            from repro.engines.psm import build_sliding_index

            db._sliding_index = build_sliding_index(  # noqa: SLF001
                store,
                omega=meta["omega"],
                features=meta["features"],
                p=meta["p"],
            )
    # As in build(): the backend installs its query-serving cache (e.g.
    # zero-copy mmap views) before checksums snapshot the payloads.
    db._backend.attach(db)  # noqa: SLF001
    db.pager.seal()
    db.resize_buffer(meta["buffer_fraction"])
    db.reset_cache()
    return db
