"""Save and load a built database.

A :class:`~repro.api.SubsequenceDatabase` persists to a directory of
three files:

* ``meta.json`` — configuration, sequence placement, page kinds, tree
  shape;
* ``values.npz`` — the raw sequence values;
* ``index.npz`` — every R*-tree node flattened into columnar arrays.

The load path reconstructs the pager **page-for-page** (same page ids,
same node contents), so a reloaded database produces identical query
results *and identical I/O counts* — benchmarks are reproducible across
save/load.  PSM's auxiliary sliding index is not serialized; it is
rebuilt deterministically on demand (``load(..., psm=True)``).

This module reaches into the private state of the storage and index
classes; it lives inside the package precisely so that no other code
has to.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.index.rstar import Entry, LeafRecord, RStarNode, RStarTree
from repro.storage.page import PageKind
from repro.storage.pager import Pager
from repro.storage.sequences import SequenceMeta

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_database(db, directory: PathLike) -> None:
    """Serialize a built database into ``directory`` (created if absent)."""
    if db.index is None:
        raise ConfigurationError("cannot save before build()")
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    tree = db.index.tree
    meta = {
        "format_version": FORMAT_VERSION,
        "omega": db.omega,
        "features": db.features,
        "data_stride": db.index.data_stride,
        "p": db.p,
        "buffer_fraction": db.buffer_fraction,
        "page_size": db.pager.page_size,
        "root_page": tree.root_page,
        "max_entries": tree.max_entries,
        "tree_size": len(tree),
        "page_kinds": [db.pager.kind_of(i).value for i in range(db.pager.num_pages)],
        "sequences": [
            {
                "sid": m.sid,
                "length": m.length,
                "first_page": m.first_page,
                "num_pages": m.num_pages,
            }
            for m in (db.store.meta(sid) for sid in db.store.sequence_ids())
        ],
    }
    with open(path / "meta.json", "w") as handle:
        json.dump(meta, handle)

    np.savez_compressed(
        path / "values.npz",
        **{
            f"sid_{sid}": db.store.peek_full_sequence(sid)
            for sid in db.store.sequence_ids()
        },
    )

    node_pages: List[int] = []
    node_levels: List[int] = []
    node_counts: List[int] = []
    lows: List[np.ndarray] = []
    highs: List[np.ndarray] = []
    children: List[int] = []
    record_sids: List[int] = []
    record_windows: List[int] = []
    for page_id in range(db.pager.num_pages):
        kind = db.pager.kind_of(page_id)
        if kind not in (PageKind.INDEX_LEAF, PageKind.INDEX_INTERNAL):
            continue
        node: RStarNode = db.pager.peek(page_id)
        node_pages.append(page_id)
        node_levels.append(node.level)
        node_counts.append(len(node.entries))
        for entry in node.entries:
            lows.append(entry.low)
            highs.append(entry.high)
            if entry.record is not None:
                children.append(-1)
                record_sids.append(entry.record.sid)
                record_windows.append(entry.record.window_index)
            else:
                children.append(entry.child_page)
                record_sids.append(-1)
                record_windows.append(-1)
    np.savez_compressed(
        path / "index.npz",
        node_pages=np.asarray(node_pages, dtype=np.int64),
        node_levels=np.asarray(node_levels, dtype=np.int64),
        node_counts=np.asarray(node_counts, dtype=np.int64),
        lows=(
            np.stack(lows)
            if lows
            else np.zeros((0, db.features), dtype=np.float64)
        ),
        highs=(
            np.stack(highs)
            if highs
            else np.zeros((0, db.features), dtype=np.float64)
        ),
        children=np.asarray(children, dtype=np.int64),
        record_sids=np.asarray(record_sids, dtype=np.int64),
        record_windows=np.asarray(record_windows, dtype=np.int64),
    )


def load_database(directory: PathLike, psm: bool = False):
    """Reconstruct a database saved by :func:`save_database`."""
    from repro.api import SubsequenceDatabase
    from repro.index.builder import DualMatchIndex
    from repro.storage.sequences import SequenceStore

    path = pathlib.Path(directory)
    with open(path / "meta.json") as handle:
        meta = json.load(handle)
    if meta.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported database format version "
            f"{meta.get('format_version')!r}"
        )

    values = np.load(path / "values.npz")
    index_data = np.load(path / "index.npz")

    db = SubsequenceDatabase(
        omega=meta["omega"],
        features=meta["features"],
        page_size=meta["page_size"],
        buffer_fraction=meta["buffer_fraction"],
        p=meta["p"],
        data_stride=meta.get("data_stride"),
    )
    pager: Pager = db.pager
    kinds = [PageKind(value) for value in meta["page_kinds"]]

    # Rebuild node objects keyed by their original page id.
    nodes: Dict[int, RStarNode] = {}
    cursor = 0
    for page_id, level, count in zip(
        index_data["node_pages"],
        index_data["node_levels"],
        index_data["node_counts"],
    ):
        entries = []
        for offset in range(cursor, cursor + int(count)):
            low = index_data["lows"][offset]
            high = index_data["highs"][offset]
            child = int(index_data["children"][offset])
            if child < 0:
                record = LeafRecord(
                    sid=int(index_data["record_sids"][offset]),
                    window_index=int(index_data["record_windows"][offset]),
                )
                entries.append(Entry(low=low, high=high, record=record))
            else:
                entries.append(Entry(low=low, high=high, child_page=child))
        cursor += int(count)
        nodes[int(page_id)] = RStarNode(level=int(level), entries=entries)

    # Replay page allocation in original order: data pages are slices
    # of the sequence arrays; index pages are the rebuilt nodes.
    arrays = {
        seq["sid"]: np.ascontiguousarray(
            values[f"sid_{seq['sid']}"], dtype=np.float64
        )
        for seq in meta["sequences"]
    }
    for array in arrays.values():
        array.setflags(write=False)
    page_owner: Dict[int, tuple] = {}
    from repro.storage.page import values_per_page

    per_page = values_per_page(meta["page_size"])
    for seq in meta["sequences"]:
        for index in range(seq["num_pages"]):
            page_owner[seq["first_page"] + index] = (
                seq["sid"],
                index * per_page,
            )
    for page_id, kind in enumerate(kinds):
        if kind == PageKind.DATA:
            sid, offset = page_owner[page_id]
            payload = arrays[sid][offset : offset + per_page]
        else:
            payload = nodes[page_id]
        allocated = pager.allocate(kind, payload)
        assert allocated == page_id

    store: SequenceStore = db.store
    for seq in meta["sequences"]:
        store._meta[seq["sid"]] = SequenceMeta(  # noqa: SLF001
            sid=seq["sid"],
            length=seq["length"],
            first_page=seq["first_page"],
            num_pages=seq["num_pages"],
        )
        store._arrays[seq["sid"]] = arrays[seq["sid"]]  # noqa: SLF001

    tree = RStarTree.__new__(RStarTree)
    tree._pager = pager  # noqa: SLF001
    tree._buffer = db.buffer  # noqa: SLF001
    tree.dimensions = meta["features"]
    tree.max_entries = meta["max_entries"]
    tree.min_entries = max(2, int(meta["max_entries"] * 0.4))
    tree._size = meta["tree_size"]  # noqa: SLF001
    tree.root_page = meta["root_page"]

    db.index = DualMatchIndex(
        tree=tree,
        store=store,
        omega=meta["omega"],
        features=meta["features"],
        p=meta["p"],
        data_stride=meta.get("data_stride"),
    )
    if psm:
        from repro.engines.psm import build_sliding_index

        db._sliding_index = build_sliding_index(  # noqa: SLF001
            store, omega=meta["omega"], features=meta["features"], p=meta["p"]
        )
    db.resize_buffer(meta["buffer_fraction"])
    db.reset_cache()
    return db
