"""Write-ahead log for crash-safe online ingest.

Every mutation of a built database (``append_sequence`` /
``extend_sequence`` / ``delete_sequence``) is logged *before* it is
applied, so that the durable state — the last checkpoint directory plus
this log — can always be rolled forward to a consistent point after a
crash at any instruction.

File format
-----------
::

    magic      b"REPROWAL1\\n"                      (10 bytes)
    header     frame{ {"base_lsn": N} }             (one framed record)
    record*    frame{ {"lsn": L, "op": ..., ...} }  (monotonic LSNs)

    frame      <u32 payload_len> <u32 crc32(payload)> <payload bytes>

Payloads are canonical JSON.  Sequence values round-trip exactly:
``json`` serializes Python floats with shortest-repr precision, so
``float(json) == float64`` bit-for-bit.

Record kinds are ``append`` / ``extend`` / ``delete`` (one per logged
mutation, LSN-stamped) and ``commit`` — the group-commit marker ending
an :class:`~repro.ingest.IngestSession`.  Only records covered by a
commit marker are ever replayed; everything after the last intact
commit frame is an *uncommitted or torn tail* and is discarded.

Durability protocol
-------------------
* ``append`` writes the frame into the OS file (buffered); no fsync.
* ``commit`` appends the commit marker and then issues the session's
  **single** fsync (group commit — one sync per session, not per op).
* ``truncate`` (checkpointing) rewrites the log as a fresh header with
  ``base_lsn`` advanced, via a temp file and atomic ``os.replace``.
* On open, the tail of the file is scanned; a torn final frame (short
  write or CRC mismatch) is chopped off so appends resume at the last
  intact frame.  A bad magic/header raises
  :class:`~repro.exceptions.WalCorruptError` — that is corruption, not
  a crash artifact.

Fault machinery
---------------
All physical steps run under the same
:class:`~repro.storage.buffer.RetryPolicy` /
:class:`~repro.storage.circuit.CircuitBreaker` regime as page reads:
transient failures are retried with bounded backoff, and an open
breaker fails fast.  The :attr:`WriteAheadLog.crash_hook` attribute is
the chaos harness's crash-point injector: it is invoked with a point
name at every durable step and may raise :class:`SimulatedCrash`
(optionally tearing the in-flight frame first) or
:class:`~repro.exceptions.TransientIOError` (exercising the retry
path).
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
)
from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import (
    TransientIOError,
    WalCorruptError,
    WalError,
)
from repro.obs.tracer import NULL_TRACER
from repro.storage.buffer import RetryPolicy

if TYPE_CHECKING:
    from repro.storage.circuit import CircuitBreaker

WAL_MAGIC = b"REPROWAL1\n"

_FRAME = struct.Struct("<II")

#: Upper bound on one record's payload; anything larger is treated as a
#: torn/garbage length field, ending the valid prefix of the log.
_MAX_PAYLOAD = 1 << 28

#: Operations an :class:`~repro.ingest.IngestSession` may log.
WAL_OPS = ("append", "extend", "delete", "commit")


class SimulatedCrash(BaseException):
    """Process death injected at a WAL/checkpoint crash point.

    Derives from :class:`BaseException` deliberately: a crash must not
    be swallowed by ``except Exception`` / ``on_fault="degrade"``
    handlers — a real ``kill -9`` would not be.  ``torn_fraction``
    (when set) makes the log write that fraction of the in-flight
    frame before dying, modelling a torn sector write.
    """

    def __init__(
        self, point: str, torn_fraction: Optional[float] = None
    ) -> None:
        super().__init__(f"simulated crash at {point}")
        self.point = point
        self.torn_fraction = torn_fraction


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    op: str
    fields: Dict[str, Any]


@dataclass(frozen=True)
class WalBatch:
    """One committed session: its operation records plus the commit LSN."""

    records: Tuple[WalRecord, ...]
    commit_lsn: int


@dataclass
class WalScan:
    """Result of scanning a log file's byte content."""

    base_lsn: int = 0
    records: List[WalRecord] = field(default_factory=list)
    #: Offset just past the last intact frame (where appends resume).
    valid_end: int = 0
    #: Bytes beyond ``valid_end`` — the torn/garbage tail.
    tail_bytes: int = 0
    #: Offset just past the last intact **commit** frame.
    committed_end: int = 0
    #: LSN of that commit record (``base_lsn`` when none committed).
    committed_lsn: int = 0
    #: Number of records up to and including the last commit.
    committed_records: int = 0


def _encode_frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_bytes(raw: bytes) -> WalScan:
    """Parse a log image, stopping at the first torn or invalid frame.

    Raises :class:`WalCorruptError` when the magic or header frame is
    unreadable (the log is not trustworthy at all); a bad frame *after*
    a valid header merely ends the scan — that is the torn-tail case.
    """
    if len(raw) < len(WAL_MAGIC) or raw[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalCorruptError(
            "write-ahead log magic mismatch: not a repro WAL file"
        )
    offset = len(WAL_MAGIC)

    def read_frame(at: int) -> Optional[Tuple[Dict[str, Any], int]]:
        if at + _FRAME.size > len(raw):
            return None
        length, crc = _FRAME.unpack_from(raw, at)
        if length > _MAX_PAYLOAD or at + _FRAME.size + length > len(raw):
            return None
        payload = raw[at + _FRAME.size : at + _FRAME.size + length]
        if zlib.crc32(payload) != crc:
            return None
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(decoded, dict):
            return None
        return decoded, at + _FRAME.size + length

    header = read_frame(offset)
    if header is None:
        raise WalCorruptError(
            "write-ahead log header frame is missing or corrupt"
        )
    header_fields, offset = header
    base_lsn = header_fields.get("base_lsn")
    if not isinstance(base_lsn, int) or base_lsn < 0:
        raise WalCorruptError(
            f"write-ahead log header has invalid base_lsn "
            f"{base_lsn!r}"
        )

    scan = WalScan(
        base_lsn=base_lsn,
        valid_end=offset,
        committed_end=offset,
        committed_lsn=base_lsn,
    )
    last_lsn = base_lsn
    while True:
        frame = read_frame(offset)
        if frame is None:
            break
        fields, next_offset = frame
        lsn = fields.get("lsn")
        op = fields.get("op")
        if (
            not isinstance(lsn, int)
            or lsn != last_lsn + 1
            or op not in WAL_OPS
        ):
            break  # non-monotonic or unknown record: treat as tail
        body = {
            key: value
            for key, value in fields.items()
            if key not in ("lsn", "op")
        }
        scan.records.append(WalRecord(lsn=lsn, op=op, fields=body))
        last_lsn = lsn
        offset = next_offset
        scan.valid_end = offset
        if op == "commit":
            scan.committed_end = offset
            scan.committed_lsn = lsn
            scan.committed_records = len(scan.records)
    scan.tail_bytes = len(raw) - scan.valid_end
    return scan


@shared_across_queries
@guarded_by(
    "_lock",
    "_handle",
    "_last_lsn",
    "_base_lsn",
    "_record_count",
    "_closed",
)
class WriteAheadLog:
    """Append-only, CRC-framed, LSN-stamped intent log.

    Thread safety: one log is shared by every ingest session against
    the same database, so the file handle and the LSN bookkeeping are
    guarded by ``_lock`` (re-entrant: ``commit`` composes ``append`` +
    ``sync`` into one atomic group).  The durable-step closures inside
    ``append``/``sync``/``truncate`` run with the lock already held by
    their enclosing public method.

    Parameters
    ----------
    path:
        Log file location.  Created (with a fresh header) when absent;
        opened and tail-scanned when present.
    retry_policy:
        Bounds retries of :class:`~repro.exceptions.TransientIOError`
        during durable steps (defaults to three attempts, no backoff).
    clock:
        Injectable time source for retry backoff sleeps.
    circuit_breaker:
        Optional breaker gating every durable step; while open, WAL
        I/O fails fast with
        :class:`~repro.exceptions.CircuitOpenError`.
    sync:
        ``False`` disables fsync (tests that do not measure
        durability); the write ordering is unchanged.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        circuit_breaker: Optional["CircuitBreaker"] = None,
        sync: bool = True,
    ) -> None:
        self._path = pathlib.Path(path)
        self._lock = threading.RLock()
        self.retry_policy = retry_policy or RetryPolicy()
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self.circuit_breaker = circuit_breaker
        self._sync = sync
        self._closed = False
        #: Observability hook (attribute, like the pager's and buffer's).
        self.tracer = NULL_TRACER
        #: Chaos crash-point injector: ``hook(point_name)`` is called at
        #: every durable step and may raise :class:`SimulatedCrash` or
        #: :class:`~repro.exceptions.TransientIOError`.
        self.crash_hook: Optional[Callable[[str], None]] = None
        #: Torn bytes discarded by the open-time tail scan.
        self.torn_bytes_discarded = 0

        if self._path.exists() and self._path.stat().st_size > 0:
            raw = self._path.read_bytes()
            scan = _scan_bytes(raw)
            if len(raw) > scan.committed_end:
                # Chop everything past the last commit marker: the torn
                # final frame *and* any intact-but-uncommitted records
                # (an aborted or crashed session).  Neither is ever
                # replayed, and leaving uncommitted records in place
                # would splice them into the next session's batch.
                self.torn_bytes_discarded = scan.tail_bytes
                with open(self._path, "r+b") as handle:
                    handle.truncate(scan.committed_end)
            self._base_lsn = scan.base_lsn
            self._last_lsn = scan.committed_lsn
            self._record_count = scan.committed_records
        else:
            self._base_lsn = 0
            self._last_lsn = 0
            self._record_count = 0
            self._path.parent.mkdir(parents=True, exist_ok=True)
            header = _encode_frame(json.dumps({"base_lsn": 0}).encode())
            with open(self._path, "wb") as handle:
                handle.write(WAL_MAGIC + header)
                handle.flush()
                if self._sync:
                    os.fsync(handle.fileno())
        self._handle = open(self._path, "ab")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def path(self) -> pathlib.Path:
        return self._path

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record."""
        with self._lock:
            return self._last_lsn

    @property
    def base_lsn(self) -> int:
        """LSN the current log segment starts after (checkpoint LSN)."""
        with self._lock:
            return self._base_lsn

    @property
    def record_count(self) -> int:
        """Number of intact records in the current segment."""
        with self._lock:
            return self._record_count

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    # Durable steps (retry / breaker / crash-point plumbing)
    # ------------------------------------------------------------------

    @requires_lock("_lock")
    def crash_point(self, point: str, pending: Optional[bytes] = None) -> None:
        """Invoke the chaos crash hook at a named durable step.

        When the hook raises :class:`SimulatedCrash` with a
        ``torn_fraction`` and a frame is in flight, that fraction of
        the frame is written (a torn sector) before the crash
        propagates — recovery must then discard it via the CRC scan.
        """
        hook = self.crash_hook
        if hook is None:
            return
        try:
            hook(point)
        except SimulatedCrash as crash:
            if crash.torn_fraction is not None and pending:
                cut = int(len(pending) * crash.torn_fraction)
                cut = max(1, min(len(pending) - 1, cut))
                self._handle.write(pending[:cut])
                self._handle.flush()
            raise

    @requires_lock("_lock")
    def _io(self, point: str, step: Callable[[], None]) -> None:
        """Run one durable step under the retry policy and breaker."""
        policy = self.retry_policy
        breaker = self.circuit_breaker
        delay = policy.backoff_s
        attempt = 1
        while True:
            if breaker is not None:
                breaker.before_attempt()
            try:
                self.crash_point(point)
                step()
            except TransientIOError:
                if breaker is not None:
                    breaker.record_failure()
                if attempt >= policy.max_attempts:
                    raise
                if delay > 0:
                    self._clock.sleep(delay)
                    delay *= policy.multiplier
                attempt += 1
            else:
                if breaker is not None:
                    breaker.record_success()
                return

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @requires_lock("_lock")
    def _require_open(self) -> None:
        if self._closed:
            raise WalError("write-ahead log is closed")

    def append(self, op: str, fields: Dict[str, Any]) -> int:
        """Append one record (buffered; durable at the next commit).

        Returns the record's LSN.  ``fields`` must be JSON-serializable;
        float values round-trip exactly through the canonical encoding.
        """
        with self._lock:
            self._require_open()
            if op not in WAL_OPS:
                raise WalError(
                    f"unknown WAL op {op!r}; expected one of {WAL_OPS}"
                )
            lsn = self._last_lsn + 1
            payload = json.dumps({"lsn": lsn, "op": op, **fields}).encode()
            frame = _encode_frame(payload)

            def write() -> None:
                self.crash_point("wal.append.write", pending=frame)
                self._handle.write(frame)
                self._handle.flush()

            self._io("wal.append", write)
            self._last_lsn = lsn
            self._record_count += 1
        if self.tracer.enabled:
            self.tracer.metrics.counter("wal.append").inc()
        return lsn

    def sync(self) -> None:
        """Force the log to stable storage (the group-commit fsync)."""
        with self._lock:
            self._require_open()

            def fsync() -> None:
                self._handle.flush()
                if self._sync:
                    os.fsync(self._handle.fileno())

            self._io("wal.fsync", fsync)
        if self.tracer.enabled:
            self.tracer.metrics.counter("wal.fsync").inc()

    def commit(self) -> int:
        """Append the commit marker and fsync once (group commit).

        Returns the commit record's LSN; every record at or below it is
        now durable and will be replayed by recovery.  The marker and
        its fsync happen under one lock hold, so another session's
        records can never land between them.
        """
        with self._lock:
            lsn = self.append("commit", {})
            self.sync()
            return lsn

    def rollback(self) -> int:
        """Discard records appended after the last commit marker.

        Called when an :class:`~repro.ingest.IngestSession` aborts on an
        application error: the session's intent records must not linger,
        or they would be spliced into the *next* session's commit batch
        and replayed after a crash.  Returns the number of records
        discarded.  (After a real crash the open-time scan performs the
        same truncation.)
        """
        with self._lock:
            self._require_open()
            scan = self.scan()
            dropped = len(scan.records) - scan.committed_records
            if dropped:
                self._handle.close()
                with open(self._path, "r+b") as handle:
                    handle.truncate(scan.committed_end)
                    handle.flush()
                    if self._sync:
                        os.fsync(handle.fileno())
                self._handle = open(self._path, "ab")
                self._last_lsn = scan.committed_lsn
                self._record_count = scan.committed_records
            return dropped

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def scan(self) -> WalScan:
        """Re-read and parse the log file (intact prefix only)."""
        with self._lock:
            self._handle.flush()
            return _scan_bytes(self._path.read_bytes())

    def iter_records(self) -> Iterator[WalRecord]:
        """Every intact record, committed or not (diagnostics)."""
        yield from self.scan().records

    def replay(self) -> Iterator[WalBatch]:
        """Yield committed batches in LSN order.

        Records after the last intact commit marker — an uncommitted
        session or a torn tail — are never yielded: recovery applies
        committed prefixes only.
        """
        pending: List[WalRecord] = []
        for record in self.scan().records:
            if record.op == "commit":
                yield WalBatch(
                    records=tuple(pending), commit_lsn=record.lsn
                )
                pending = []
            else:
                pending.append(record)

    # ------------------------------------------------------------------
    # Truncation (checkpointing)
    # ------------------------------------------------------------------

    def truncate(self, base_lsn: Optional[int] = None) -> None:
        """Atomically reset the log to an empty segment after a checkpoint.

        ``base_lsn`` (default: the current last LSN) is recorded in the
        new header: recovery replays only records *above* it, so a
        checkpoint that persisted state through LSN ``N`` truncates
        with ``base_lsn=N``.  The swap is a temp-file write plus
        ``os.replace`` — a crash leaves either the old log or the new
        empty one, never a torn mix.
        """
        with self._lock:
            self._require_open()
            base = self._last_lsn if base_lsn is None else base_lsn
            if base > self._last_lsn:
                raise WalError(
                    f"cannot truncate to base_lsn {base} ahead of the log "
                    f"tail {self._last_lsn}"
                )
            temp = self._path.with_name(self._path.name + ".tmp")
            header = _encode_frame(json.dumps({"base_lsn": base}).encode())

            def swap() -> None:
                with open(temp, "wb") as handle:
                    handle.write(WAL_MAGIC + header)
                    handle.flush()
                    if self._sync:
                        os.fsync(handle.fileno())
                self.crash_point("wal.truncate")
                os.replace(temp, self._path)

            try:
                self._io("wal.truncate.write", swap)
            finally:
                if temp.exists():  # crashed/failed between write and replace
                    try:
                        temp.unlink()
                    except OSError:  # pragma: no cover — best-effort cleanup
                        pass
            self._handle.close()
            self._handle = open(self._path, "ab")
            self._base_lsn = base
            self._last_lsn = base
            self._record_count = 0
        if self.tracer.enabled:
            self.tracer.metrics.counter("wal.truncate").inc()

    def close(self) -> None:
        """Flush and close the file handle.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
            finally:
                self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
