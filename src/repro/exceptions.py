"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageError(StorageError):
    """A page id is unknown, out of range, or a page payload is malformed."""


class TransientIOError(StorageError):
    """A page read failed for a *recoverable* reason (injected or real).

    Retried by :class:`~repro.storage.buffer.BufferPool` according to its
    :class:`~repro.storage.buffer.RetryPolicy`; surfaces to callers only
    after the policy's attempt budget is exhausted.
    """


class CorruptPageError(PageError):
    """A page payload failed checksum verification (permanent corruption).

    Never retried — re-reading a corrupt page cannot help.  Engines
    running with ``on_fault="degrade"`` skip the affected candidates or
    subtrees instead of aborting the query.
    """


class IntegrityError(StorageError):
    """A persisted database failed a whole-file or structural check.

    Raised by :func:`~repro.storage.persistence.load_database` (and the
    ``scrub`` CLI) on file checksum mismatches, array-shape manifest
    violations, or internal references that dangle.
    """


class PartialSaveError(StorageError):
    """A persisted database directory is incomplete or truncated.

    Indicates an interrupted :func:`~repro.storage.persistence.save_database`
    (missing ``MANIFEST`` sentinel, missing files, or files shorter than
    the sizes recorded at save time).
    """


class BufferPoolError(StorageError):
    """The buffer pool was misconfigured or misused (e.g. zero capacity)."""


class WalError(StorageError):
    """The write-ahead log was misused or could not perform I/O.

    Covers protocol violations (appending to a closed log, truncating
    to an LSN ahead of the tail) and unrecoverable file-level failures
    that survive the WAL's retry policy.
    """


class WalCorruptError(WalError):
    """The write-ahead log file is structurally unreadable.

    Raised when the magic marker or the framed header fails to parse —
    the log cannot be trusted at all.  A torn *tail* (a half-written
    final record after a crash) is **not** this error: torn tails are
    expected, detected by per-record CRC32s, and silently discarded on
    replay (only committed prefixes are ever applied).
    """


class SequenceNotFoundError(StorageError):
    """A sequence id was requested that is not present in the store."""


class IndexError_(ReproError):
    """Base class for R*-tree failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which the library never raises intentionally.
    """


class IndexNotBuiltError(IndexError_):
    """A search was issued before the index was built."""


class QueryError(ReproError):
    """A query is malformed or incompatible with the index configuration."""


class QueryTooShortError(QueryError):
    """The query is too short for the configured window size.

    DualMatch windowing requires ``Len(Q) >= 2 * omega - 1`` so that every
    candidate subsequence fully contains at least one disjoint data window
    (``r >= 1`` in Definition 2 of the paper).
    """


class ConfigurationError(ReproError):
    """A component received an invalid configuration value."""


class UsageError(ReproError):
    """A library object was driven out of protocol order.

    Examples: finishing a :class:`~repro.core.metrics.StatsRecorder`
    that was never started, or asking geometry helpers for the union of
    zero rectangles.  Distinct from :class:`ConfigurationError` (a bad
    *value*) — this is a bad *call sequence*.
    """


class BudgetExceededError(ReproError):
    """An engine exceeded its operation budget (used to cap PSM blow-ups)."""


class ExecutionInterrupted(ReproError):
    """Internal control-flow signal: a query hit a budget, deadline, or
    cancellation at a cooperative checkpoint.

    Raised by :meth:`~repro.control.ExecutionControl.checkpoint` and
    caught by the engine template, which converts it into a
    :class:`~repro.engines.base.PartialResult` carrying the best-k-so-far
    and an exactness certificate.  It only escapes to callers that drive
    operators directly (and is still a :class:`ReproError`).
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(message or f"query interrupted: {reason}")
        #: Machine-readable cause: ``"cancelled"``, ``"deadline"``,
        #: ``"budget:pages"``, or ``"budget:candidates"``.
        self.reason = reason


class CircuitOpenError(StorageError):
    """A page fetch was rejected because the circuit breaker is open.

    Raised *before* touching the pager, so an unhealthy device is not
    hammered while it recovers.  A :class:`StorageError` subclass: under
    ``on_fault="degrade"`` engines skip the affected candidate or
    subtree exactly as for any other storage fault.  Never retried by
    :class:`~repro.storage.buffer.RetryPolicy` — the breaker's reset
    timeout, not the retry loop, decides when the device is probed again.
    """


class AdmissionRejectedError(ReproError):
    """A query was refused admission (concurrency + queue limits full).

    Raised by :class:`~repro.control.AdmissionController` when
    ``max_concurrent`` queries are running and the wait queue already
    holds ``max_queued`` more (or the queue wait timed out).  Callers
    should treat this as back-pressure: retry later or shed load.
    """


class ProtocolError(ReproError):
    """A service request is malformed at the wire-protocol level.

    Raised by :mod:`repro.serve.protocol` when a JSON-lines request
    fails to parse or validate (unknown kind, missing query values,
    non-finite floats, bad types).  Distinct from :class:`QueryError`
    — the request never reached the query layer at all.
    """


class ServiceOverloadedError(ReproError):
    """Typed back-pressure from the query service (``repro serve``).

    Raised (or returned as an ``"error"`` response over the wire) when
    a request cannot even be *queued*: the admission queue is full, the
    tenant's token bucket is empty, the tenant's circuit breaker is
    open after repeated faults, or the service is shutting down.  The
    carried fields make the rejection actionable instead of opaque:

    * :attr:`reason` — machine-readable cause (``"queue-full"``,
      ``"queue-shed"``, ``"tenant-rate-limit"``, ``"tenant-circuit-open"``,
      ``"shutdown"``).
    * :attr:`retry_after_s` — the server's estimate of how long the
      caller should back off before retrying, or ``None`` when no
      useful estimate exists (e.g. shutdown).

    Clients should treat this exactly like HTTP 429/503: honour
    ``retry_after_s``, apply jitter, and shed their own load upstream.
    """

    def __init__(
        self,
        reason: str,
        retry_after_s: "float | None" = None,
        message: str = "",
    ) -> None:
        detail = message or f"service overloaded: {reason}"
        if retry_after_s is not None:
            detail += f" (retry after {retry_after_s:.3f}s)"
        super().__init__(detail)
        #: Machine-readable cause of the rejection.
        self.reason = reason
        #: Suggested back-off in seconds (``None`` = no estimate).
        self.retry_after_s = retry_after_s
