"""Per-query profiles: one query's spans + metrics + stats, exportable.

A :class:`QueryProfile` is assembled by the engine layer when tracing
is enabled: the ``engine.search`` root span (whose subtree holds every
``buffer.fetch`` / ``index.probe`` / ``candidate.verify`` recorded
during the query), the :class:`~repro.obs.metrics.MetricsSnapshot`
delta over the query's execution, and the pre-existing aggregates —
:class:`~repro.core.metrics.QueryStats` and, when faults fired, the
:class:`~repro.engines.base.FaultReport`.

The profile is the object the conformance suite interrogates: its
``span_count("buffer.fetch")`` must equal ``stats.page_accesses`` (the
paper's NUM_IO) exactly, because both are counting the same physical
reads at the same call site from two independent mechanisms.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsSnapshot
from repro.obs.tracer import Span, chrome_trace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    # The storage layer imports ``repro.obs`` and itself feeds
    # ``repro.core.metrics`` / the engines, so the profile refers to
    # those result types by annotation only.
    from repro.core.metrics import QueryStats
    from repro.engines.base import FaultReport


class QueryProfile:
    """Everything observed about one query, in one object."""

    __slots__ = ("span", "metrics", "stats", "fault_report")

    def __init__(
        self,
        span: Span,
        metrics: MetricsSnapshot,
        stats: "QueryStats",
        fault_report: Optional["FaultReport"] = None,
    ) -> None:
        self.span = span
        self.metrics = metrics
        self.stats = stats
        self.fault_report = fault_report

    # -- span accounting --------------------------------------------------

    def span_count(self, name: str) -> int:
        """Spans named ``name`` in this query's subtree."""
        return self.span.count(name)

    def span_totals(self) -> Dict[str, Tuple[int, float]]:
        """Per span name: (count, total seconds), over the subtree."""
        totals: Dict[str, Tuple[int, float]] = {}
        for span in self.span.iter_tree():
            count, seconds = totals.get(span.name, (0, 0.0))
            totals[span.name] = (count + 1, seconds + span.duration)
        return totals

    def top_spans(self, n: int = 10) -> List[Tuple[str, int, float, float]]:
        """The ``n`` hottest span names as (name, count, total_s, self_s).

        Ranked by *self* time — time not attributed to child spans —
        because that is what identifies the hot layer rather than
        blaming every ancestor of it.
        """
        by_name: Dict[str, List[float]] = {}
        for span in self.span.iter_tree():
            entry = by_name.setdefault(span.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += span.duration
            entry[2] += span.self_time()
        ranked = sorted(
            (
                (name, int(count), total, self_time)
                for name, (count, total, self_time) in by_name.items()
            ),
            key=lambda row: row[3],
            reverse=True,
        )
        return ranked[: max(0, n)]

    # -- export -----------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "stats": self.stats.as_dict(),
            "metrics": self.metrics.as_dict(),
            "span": self.span.as_dict(),
        }
        if self.fault_report is not None:
            data["fault_report"] = {
                "total": self.fault_report.total,
                "suppressed": self.fault_report.suppressed,
                "failed_pages": list(self.fault_report.failed_pages),
                "skipped_candidates": [
                    list(pair)
                    for pair in self.fault_report.skipped_candidates
                ],
                "events": [
                    {
                        "error": event.error,
                        "detail": event.detail,
                        "page_id": event.page_id,
                        "candidate": (
                            list(event.candidate)
                            if event.candidate is not None
                            else None
                        ),
                    }
                    for event in self.fault_report.events
                ],
            }
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """This query's span tree in Chrome ``chrome://tracing`` format."""
        return chrome_trace([self.span])
