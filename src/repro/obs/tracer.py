"""Nested spans with zero allocation when tracing is disabled.

A :class:`Tracer` records a tree of :class:`Span` objects per query:
``buffer.fetch`` at the storage boundary (one span per physical page
read — the unit the paper counts as NUM_IO), ``index.probe`` per R*-tree
node, ``engine.lb_batch`` per batched lower-bound evaluation,
``candidate.verify`` per DTW verification, ``deferred.drain`` per
deferred-buffer flush, and an ``engine.search`` root wrapping the whole
query.  Control-plane checkpoints surface as span *events* so budget /
deadline pressure is visible on the same timeline.

Two design rules keep the disabled tracer free:

* ``tracer.span(...)`` returns a shared :data:`NULL_SPAN` singleton when
  ``enabled`` is false — no ``Span`` object is ever allocated.
* The per-page-read hot paths additionally guard on ``tracer.enabled``
  before even calling ``span()``, so the disabled cost is one attribute
  load and one branch.  The golden-counter suite and the bench engine
  digests prove the disabled tracer is behaviour-identical.

Spans must be opened with a ``with`` statement (``with tracer.span(
"buffer.fetch", page=pid):``) — lint rule RS008 flags a bare
``start_span`` call, because a span opened without ``with`` stays on the
stack and corrupts the nesting of everything recorded after it.  The
one legitimate exception is a span covering a generator's lifetime
(:class:`~repro.api.MatchStream`), which pairs ``start_span`` with
``end_span`` across calls under an explicit suppression.

Timestamps come from an injectable :class:`~repro.core.clock.Clock`;
with ``FakeClock(auto_advance=...)`` every enter/exit tick is distinct,
which is how the conformance suite asserts strict monotonicity without
trusting the host clock.

Thread safety (multi-query era): a tracer may be shared by several
query threads.  The open-span *stack* is thread-local — each thread
records its own well-formed tree, and nesting errors are detected per
thread — while the shared aggregates (recorded roots, span/event
counts, drop counters) are guarded by a lock.  The disabled fast path
takes no lock at all: it is still one attribute load and one branch.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.analysis.concurrency import guarded_by, shared_across_queries
from repro.core.clock import MONOTONIC_CLOCK, Clock
from repro.exceptions import ConfigurationError, UsageError
from repro.obs.metrics import MetricsRegistry

#: Hard ceilings are a safety net, not a tuning knob: a runaway span
#: loop degrades the trace (spans are dropped and counted) instead of
#: exhausting memory.
DEFAULT_MAX_SPANS = 250_000
DEFAULT_MAX_EVENTS = 250_000


class SpanEvent:
    """A point-in-time marker attached to a span (e.g. a checkpoint)."""

    __slots__ = ("name", "time", "attrs")

    def __init__(self, name: str, time: float, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.time = time
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "time": self.time}
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data


class Span:
    """One timed, attributed node in a query's span tree."""

    __slots__ = ("name", "attrs", "start", "end", "children", "events", "_tracer")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        start: float,
        tracer: "Tracer",
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.children: List[Span] = []
        self.events: List[SpanEvent] = []
        self._tracer = tracer

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer.end_span(self)

    def close(self) -> None:
        """Close a manually opened span (pairs with ``start_span``)."""
        self._tracer.end_span(self)

    # -- introspection ----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span duration in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def self_time(self) -> float:
        """Duration minus time attributed to direct children."""
        return self.duration - sum(c.duration for c in self.children)

    def iter_tree(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first preorder."""
        stack: List[Span] = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def count(self, name: str) -> int:
        """Number of spans named ``name`` in this subtree."""
        return sum(1 for span in self.iter_tree() if span.name == name)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly recursive representation."""
        data: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.events:
            data["events"] = [event.as_dict() for event in self.events]
        if self.children:
            data["children"] = [child.as_dict() for child in self.children]
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class NullSpan:
    """The shared do-nothing span a disabled tracer hands out.

    Supports the same surface as :class:`Span` so call sites never
    branch on the tracer state just to use the return value.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None

    def close(self) -> None:
        return None

    def count(self, name: str) -> int:
        return 0


#: Singleton: every disabled ``span()`` call returns this same object,
#: so a disabled tracer allocates nothing per call.
NULL_SPAN = NullSpan()

AnySpan = Union[Span, NullSpan]


@shared_across_queries
@guarded_by(
    "_lock",
    "roots",
    "dropped_spans",
    "dropped_events",
    "_span_count",
    "_event_count",
)
class Tracer:
    """Records nested spans and events on an injectable clock.

    Thread safety: the open-span stack lives in a ``threading.local``,
    so concurrent queries each build well-formed per-thread trees; the
    shared aggregates (``roots`` and the span/event/drop counters) are
    guarded by ``_lock``.  A *disabled* tracer never touches the lock.

    Parameters
    ----------
    enabled:
        Off by default.  A disabled tracer is inert: ``span()`` returns
        :data:`NULL_SPAN`, ``event()`` returns immediately, and nothing
        is allocated or recorded.
    clock:
        Time source for span boundaries (default: the process
        monotonic clock).  Inject a FakeClock with ``auto_advance`` for
        deterministic, strictly increasing timestamps.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` instrumented
        code records into alongside spans.  A fresh registry is created
        when not supplied, so ``tracer.metrics`` is always usable.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsRegistry] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {max_spans}")
        if max_events < 0:
            raise ConfigurationError(
                f"max_events must be >= 0, got {max_events}"
            )
        self.enabled = bool(enabled)
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_spans = max_spans
        self.max_events = max_events
        self.roots: List[Span] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self._lock = threading.RLock()
        self._local = threading.local()
        self._span_count = 0
        self._event_count = 0

    @property
    def _stack(self) -> List[Span]:
        """This thread's open-span stack (created lazily per thread)."""
        stack: Optional[List[Span]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle ---------------------------------------------------

    def start_span(self, name: str, **attrs: Any) -> AnySpan:
        """Open a span now; close it with ``with`` or ``end_span``.

        Prefer ``with tracer.span(...)``: a span left open corrupts the
        nesting of everything recorded after it (RS008 enforces this in
        ``src/repro``).
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            if self._span_count >= self.max_spans:
                self.dropped_spans += 1
                return NULL_SPAN
            self._span_count += 1
        span = Span(name, attrs, self.clock.monotonic(), self)
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    #: ``span`` is the public spelling used at instrumentation sites;
    #: ``start_span`` is the primitive RS008 polices.
    def span(self, name: str, **attrs: Any) -> AnySpan:
        return self.start_span(name, **attrs)

    def end_span(self, span: AnySpan) -> None:
        """Close ``span``; it must be this thread's innermost open span."""
        if span is NULL_SPAN or not isinstance(span, Span):
            return
        stack = self._stack
        if not stack or stack[-1] is not span:
            raise UsageError(
                f"out-of-order span close for {span.name!r}: spans must "
                "close innermost-first (open them with 'with')"
            )
        stack.pop()
        span.end = self.clock.monotonic()

    def event(self, name: str, **attrs: Any) -> None:
        """Attach an instant event to the innermost open span.

        Events outside any span are dropped (and counted) — an event is
        a point on a query timeline, not a free-floating record.
        """
        if not self.enabled:
            return
        stack = self._stack
        with self._lock:
            if not stack or self._event_count >= self.max_events:
                self.dropped_events += 1
                return
            self._event_count += 1
        stack[-1].events.append(
            SpanEvent(name, self.clock.monotonic(), attrs)
        )

    # -- introspection ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of spans currently open *on the calling thread*."""
        return len(self._stack)

    @property
    def span_total(self) -> int:
        """Spans recorded since the last :meth:`reset` (all threads)."""
        with self._lock:
            return self._span_count

    def current_span(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    def iter_spans(self) -> Iterator[Span]:
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.iter_tree()

    def span_count(self, name: str) -> int:
        """Total spans named ``name`` across all recorded roots."""
        return sum(1 for span in self.iter_spans() if span.name == name)

    def reset(self) -> None:
        """Drop all recorded spans/events (open spans included)."""
        with self._lock:
            self.roots = []
            # A fresh threading.local drops every thread's open stack.
            self._local = threading.local()
            self._span_count = 0
            self._event_count = 0
            self.dropped_spans = 0
            self.dropped_events = 0

    # -- export -----------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """All recorded roots in Chrome ``chrome://tracing`` format."""
        with self._lock:
            roots = list(self.roots)
        return chrome_trace(roots)


def chrome_trace(
    roots: List[Span], pid: int = 0, tid: int = 0
) -> Dict[str, Any]:
    """Render span trees as a Chrome trace-event JSON document.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; span events become instant (``"ph": "i"``) events.
    Load the file at ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    trace_events: List[Dict[str, Any]] = []
    for root in roots:
        for span in root.iter_tree():
            end = span.end if span.end is not None else span.start
            record: Dict[str, Any] = {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(0.0, (end - span.start)) * 1e6,
                "pid": pid,
                "tid": tid,
            }
            if span.attrs:
                record["args"] = _jsonable(span.attrs)
            trace_events.append(record)
            for event in span.events:
                instant: Dict[str, Any] = {
                    "name": event.name,
                    "ph": "i",
                    "ts": event.time * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                }
                if event.attrs:
                    instant["args"] = _jsonable(event.attrs)
                trace_events.append(instant)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Attribute dict with non-JSON values stringified."""
    clean: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            clean[key] = value
        else:
            clean[key] = repr(value)
    return clean


#: The process-wide disabled tracer.  Components default their
#: ``tracer`` attribute to this so un-instrumented construction paths
#: (tests building a bare ``BufferPool``, say) need no wiring.
NULL_TRACER = Tracer(enabled=False)


def validate_span_tree(root: Span) -> List[str]:
    """Structural problems in a span tree (empty list = well-formed).

    Checks every span is closed, ``end >= start``, and children nest
    inside their parent's interval.  Used by the conformance suite and
    handy when debugging new instrumentation.
    """
    problems: List[str] = []
    for span in root.iter_tree():
        if span.end is None:
            problems.append(f"span {span.name!r} never closed")
            continue
        if span.end < span.start:
            problems.append(
                f"span {span.name!r} ends before it starts "
                f"({span.end} < {span.start})"
            )
        for child in span.children:
            if child.start < span.start:
                problems.append(
                    f"child {child.name!r} starts before parent "
                    f"{span.name!r}"
                )
            if child.end is not None and span.end is not None:
                if child.end > span.end:
                    problems.append(
                        f"child {child.name!r} ends after parent "
                        f"{span.name!r}"
                    )
    return problems
