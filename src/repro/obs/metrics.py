"""Typed metric instruments: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the numeric side of the observability
plane.  Spans answer *where time and pages went inside one query*;
metrics answer *how much, distributionally, across queries*: page
fetches by :class:`~repro.storage.page.PageKind`, prune counts per
lower bound (from which prune ratios fall out), DTW early-abandon
counts, queue-depth and deferred-batch histograms.

The algebra is deliberately tiny and closed:

* :meth:`MetricsRegistry.snapshot` is an immutable value object, cheap
  enough to take mid-query.
* ``snapshot.delta(earlier)`` subtracts — that difference is the
  per-query metrics slice stored on a
  :class:`~repro.obs.profile.QueryProfile`.
* ``snapshot.merge(other)`` adds — merging is associative and
  commutative (it is pointwise integer addition), so per-query deltas
  recombine into fleet totals in any order.  The hypothesis suite in
  ``tests/test_property_metrics.py`` pins these laws.

Instruments are typed: re-registering a name as a different kind, or a
histogram with different buckets, raises
:class:`~repro.exceptions.UsageError` — silent schema drift is how
dashboards lie.
"""

from __future__ import annotations

import math
import threading
from typing import Any, ContextManager, Dict, Iterable, List, Optional, Tuple

from repro.analysis.concurrency import (
    guarded_by,
    requires_lock,
    shared_across_queries,
)
from repro.exceptions import UsageError

#: The concrete ``threading.RLock()`` type has no public name; all the
#: instruments need is the context-manager protocol.
_Lock = ContextManager[bool]

#: Power-of-two bucket upper bounds — a good default for the count-like
#: quantities this repo measures (batch sizes, queue depths, abandon
#: depths).  The implicit final bucket is +inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
)


@shared_across_queries
@guarded_by("_lock", "_value")
class Counter:
    """A monotonically non-decreasing integer-or-float total.

    ``inc`` is a read-modify-write, so concurrent queries updating the
    same counter need the lock; a registry-created instrument shares its
    registry's lock, which is what makes registry snapshots untorn.
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: Optional[_Lock] = None) -> None:
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise UsageError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@shared_across_queries
@guarded_by("_lock", "_value")
class Gauge:
    """A point-in-time value (queue depth now, frontier POW now)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: Optional[_Lock] = None) -> None:
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@shared_across_queries
@guarded_by("_lock", "counts", "total", "count")
class Histogram:
    """Fixed-bucket histogram: cumulative-free, mergeable counts.

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or the implicit overflow
    bucket.  Fixed buckets (vs. adaptive) are what make merging across
    queries exact.  ``buckets`` is immutable after construction and
    needs no lock; the mutable tallies are guarded by ``_lock``.
    """

    __slots__ = ("name", "_lock", "buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        lock: Optional[_Lock] = None,
    ) -> None:
        if not buckets:
            raise UsageError(f"histogram {name!r} needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise UsageError(
                f"histogram {name!r} buckets must be strictly ascending, "
                f"got {bounds}"
            )
        if any(math.isnan(b) for b in bounds):
            raise UsageError(f"histogram {name!r} buckets cannot be NaN")
        self.name = name
        self._lock = lock if lock is not None else threading.RLock()
        self.buckets = bounds
        #: one count per bucket plus the overflow bucket
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise UsageError(f"histogram {self.name!r} cannot observe NaN")
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1


class HistogramSnapshot:
    """Immutable histogram state; subtracts (delta) and adds (merge)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(
        self,
        buckets: Tuple[float, ...],
        counts: Tuple[int, ...],
        total: float,
        count: int,
    ) -> None:
        self.buckets = buckets
        self.counts = counts
        self.total = total
        self.count = count

    def delta(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        self._check_buckets(earlier, "delta")
        return HistogramSnapshot(
            self.buckets,
            tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            self.total - earlier.total,
            self.count - earlier.count,
        )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        self._check_buckets(other, "merge")
        return HistogramSnapshot(
            self.buckets,
            tuple(a + b for a, b in zip(self.counts, other.counts)),
            self.total + other.total,
            self.count + other.count,
        )

    def _check_buckets(self, other: "HistogramSnapshot", op: str) -> None:
        if self.buckets != other.buckets:
            raise UsageError(
                f"cannot {op} histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramSnapshot):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.counts == other.counts
            and self.total == other.total
            and self.count == other.count
        )

    def __hash__(self) -> int:
        return hash((self.buckets, self.counts, self.total, self.count))


class MetricsSnapshot:
    """A frozen view of a registry at one instant.

    Counters and histograms are flows (subtract for deltas, add for
    merges); gauges are levels (a delta or merge keeps the most recent
    value, i.e. the left operand's for ``delta``, the right operand's
    for ``merge`` when present).
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: Dict[str, float],
        gauges: Dict[str, float],
        histograms: Dict[str, HistogramSnapshot],
    ) -> None:
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus an ``earlier`` one (per-query slice)."""
        counters = {
            name: value - earlier.counters.get(name, 0.0)
            for name, value in self.counters.items()
        }
        histograms = {}
        for name, hist in self.histograms.items():
            before = earlier.histograms.get(name)
            if before is None:
                before = HistogramSnapshot(
                    hist.buckets, (0,) * len(hist.counts), 0.0, 0
                )
            histograms[name] = hist.delta(before)
        return MetricsSnapshot(counters, dict(self.gauges), histograms)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Pointwise sum (associative and commutative on flows)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, hist in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = hist if mine is None else mine.merge(hist)
        return MetricsSnapshot(counters, gauges, histograms)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.gauges == other.gauges
            and self.histograms == other.histograms
        )


#: An empty snapshot — the identity element of ``merge``.
EMPTY_SNAPSHOT = MetricsSnapshot({}, {}, {})


@shared_across_queries
@guarded_by("_lock", "_counters", "_gauges", "_histograms")
class MetricsRegistry:
    """Creates-or-returns typed instruments by name.

    The get-or-create accessors are the only way in, so one name always
    maps to one instrument of one type for the registry's lifetime.

    Thread safety: the instrument tables are guarded by ``_lock``, and
    every instrument this registry creates *shares* that lock, so
    :meth:`snapshot` observes all instruments atomically — a snapshot
    taken while eight queries increment counters is a consistent cut,
    never a torn one.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_free(name, self._counters, "counter")
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(
                    name, lock=self._lock
                )
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_free(name, self._gauges, "gauge")
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(
                    name, lock=self._lock
                )
            return instrument

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            self._check_free(name, self._histograms, "histogram")
            instrument = self._histograms.get(name)
            bounds = tuple(float(b) for b in buckets)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, bounds, lock=self._lock
                )
            elif instrument.buckets != bounds:
                raise UsageError(
                    f"histogram {name!r} already registered with buckets "
                    f"{instrument.buckets}, requested {bounds}"
                )
            return instrument

    @requires_lock("_lock")
    def _check_free(
        self, name: str, home: Dict[str, Any], kind: str
    ) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not home and name in table:
                raise UsageError(
                    f"metric {name!r} is already a {other_kind}; cannot "
                    f"re-register as a {kind}"
                )

    # -- snapshots --------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of every instrument's current state.

        Taken under the registry lock shared with every instrument, so
        the copy is a consistent cut across all of them.
        """
        with self._lock:
            return MetricsSnapshot(
                {name: c.value for name, c in self._counters.items()},
                {name: g.value for name, g in self._gauges.items()},
                {
                    name: HistogramSnapshot(
                        h.buckets, tuple(h.counts), h.total, h.count
                    )
                    for name, h in self._histograms.items()
                },
            )

    def reset(self) -> None:
        """Forget every instrument (tests and tools; not query code)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
