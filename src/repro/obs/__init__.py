"""Observability plane: structured tracing, metrics, per-query profiles.

The paper's experimental argument is cost accounting — NUM_IO page
accesses and the RU-COST model that predicts them.  ``QueryStats``
reports end-of-query aggregates; this package shows *where* inside a
query those costs happen:

:class:`~repro.obs.tracer.Tracer`
    Nested spans opened with ``with tracer.span("buffer.fetch",
    page=...)``.  Disabled by default: a disabled tracer allocates no
    span objects and hot paths guard on ``tracer.enabled`` so the
    instrumented code is byte-identical in behaviour and counters to
    the un-instrumented code.
:class:`~repro.obs.metrics.MetricsRegistry`
    Typed counters / gauges / fixed-bucket histograms (page fetches by
    kind, prune counts per lower bound, DTW early abandons, queue
    depths).  Snapshotable mid-query; snapshots subtract (per-query
    deltas) and add (merge across queries).
:class:`~repro.obs.profile.QueryProfile`
    One query's span tree + metrics delta + the existing
    :class:`~repro.core.metrics.QueryStats` /
    :class:`~repro.results.FaultReport`, exportable as JSON and Chrome
    ``chrome://tracing`` format (``python -m repro trace`` /
    ``python -m repro profile``).

The conformance contract — the reason this plane is trustworthy — is
that with tracing enabled the number of ``buffer.fetch`` spans equals
the pinned NUM_IO counter for every golden engine config
(``tests/test_trace_conformance.py``), and with tracing disabled every
golden counter and bench digest is unchanged.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import QueryProfile
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TRACER",
    "QueryProfile",
    "Span",
    "Tracer",
]
