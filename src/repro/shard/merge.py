"""Merging per-shard answers back into one exact result.

This is the paper's multi-way ranked union (`∪_r`, Lemma 6) applied one
level up: each shard runs the full single-process operator tree over
its own sequences, and this module merges the per-shard outputs.  The
exactness argument is the same as for the in-process union:

* **Top-k** — a shard's local top-k contains every *global* top-k
  member stored on that shard (local competition is a subset of global
  competition, so the local threshold is never tighter than the global
  one).  Concatenating per-shard top-ks and keeping the ``k`` smallest
  under the total order ``(distance, sid, start)`` therefore yields
  exactly the unsharded answer, ties included.
* **Streams** — per-shard :class:`~repro.api.MatchStream` emission is
  nondecreasing in that total order, so a k-way heap over the stream
  heads emits the global ranked sequence, also nondecreasing.
* **Certificates** — when shard ``i`` is interrupted, its certificate
  ``c_i`` lower-bounds every candidate it left unexamined; candidates
  on completed shards were all examined.  Any unexamined candidate
  anywhere therefore has true distance ``>= min_i c_i`` — the global
  certificate is the min over per-shard certificates (completed shards
  contribute ``inf``), exactly the "min over alive frontiers" rule the
  in-process union uses.  A shard lost wholesale (worker crash under
  the degrade policy) has certified nothing, so it contributes ``0.0``
  — the merged result stays honest by claiming no exactness at all
  below the surviving shards' answers.

Merged :class:`~repro.core.metrics.QueryStats` are *sums* over shards
(``wall_time_s`` included — it measures aggregate work, not latency);
the per-shard breakdown rides along in ``shard_stats`` so callers and
tests can check that per-shard NUM_IO adds up to the merged counter.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.concurrency import single_query
from repro.api import MatchStream
from repro.core.metrics import QueryStats
from repro.core.results import Match
from repro.engines.base import (
    FaultEvent,
    FaultReport,
    PartialResult,
    SearchResult,
)

#: Interrupt reason recorded when an entire shard failed and the
#: degrade policy kept the query alive on the survivors.
REASON_SHARD_LOST = "shard:lost"


@dataclass
class ShardedSearchResult(SearchResult):
    """A merged exact result, with the per-shard counter breakdown."""

    shard_stats: Dict[int, QueryStats] = field(default_factory=dict)


@dataclass
class ShardedPartialResult(PartialResult):
    """A merged result where at least one shard stopped early.

    ``certificate`` composes shard-wise (min over per-shard
    certificates; a lost shard contributes 0.0) and keeps the
    :class:`~repro.engines.base.PartialResult` contract: every
    unexamined candidate anywhere in the sharded store has true
    distance at or above it.
    """

    shard_stats: Dict[int, QueryStats] = field(default_factory=dict)


@dataclass(frozen=True)
class LostShard:
    """One shard that produced no answer at all (worker crash/unreadable)."""

    shard: int
    detail: str


def _merged_fault_report(
    outcomes: Sequence[Tuple[int, SearchResult]],
    lost: Sequence[LostShard],
) -> Optional[FaultReport]:
    events: List[FaultEvent] = []
    suppressed = 0
    for shard, outcome in outcomes:
        if outcome.fault_report is not None:
            events.extend(outcome.fault_report.events)
            suppressed += outcome.fault_report.suppressed
    for loss in lost:
        events.append(
            FaultEvent(error="ShardLost", detail=loss.detail)
        )
    if not events and suppressed == 0:
        return None
    return FaultReport(events=events, suppressed=suppressed)


def merge_search_results(
    outcomes: Sequence[Tuple[int, SearchResult]],
    k: Optional[int],
    lost: Sequence[LostShard] = (),
) -> SearchResult:
    """Compose per-shard (shard, result) pairs into the global answer.

    ``k=None`` merges without truncation (range search).  Returns a
    :class:`ShardedPartialResult` when any shard was interrupted or
    lost, otherwise a :class:`ShardedSearchResult`.
    """
    matches: List[Match] = []
    stats = QueryStats()
    shard_stats: Dict[int, QueryStats] = {}
    reasons: List[str] = []
    certificate = math.inf
    for shard, outcome in outcomes:
        matches.extend(outcome.matches)
        stats.merge(outcome.stats)
        shard_stats[shard] = outcome.stats
        if isinstance(outcome, PartialResult):
            certificate = min(certificate, outcome.certificate)
            if outcome.reason and outcome.reason not in reasons:
                reasons.append(outcome.reason)
    matches.sort()
    if k is not None:
        matches = matches[:k]
    report = _merged_fault_report(outcomes, lost)
    degraded = report is not None
    if lost:
        certificate = 0.0
        if REASON_SHARD_LOST not in reasons:
            reasons.append(REASON_SHARD_LOST)
    if not reasons and math.isinf(certificate):
        return ShardedSearchResult(
            matches=matches,
            stats=stats,
            degraded=degraded,
            fault_report=report,
            shard_stats=shard_stats,
        )
    stats.interrupted = max(stats.interrupted, 1)
    return ShardedPartialResult(
        matches=matches,
        stats=stats,
        degraded=degraded,
        fault_report=report,
        reason=",".join(sorted(reasons)),
        certificate=certificate,
        shard_stats=shard_stats,
    )


@single_query
class ShardedMatchStream(Iterator[Match]):
    """K-way ranked-union merge over per-shard match streams.

    The sharded analogue of :class:`repro.api.MatchStream`: iterate for
    up to ``k`` globally ranked matches (nondecreasing in
    ``(distance, sid, start)``); after the stream ends — naturally, via
    :meth:`close`, or because shards were interrupted — the same
    post-hoc diagnostics are available (:attr:`stats`,
    :attr:`interrupted`, :attr:`reason`, :attr:`certificate`,
    :attr:`degraded`, :attr:`fault_report`), plus the per-shard
    :attr:`shard_stats` breakdown.
    """

    def __init__(
        self, streams: Sequence[Tuple[int, MatchStream]], k: int
    ) -> None:
        self._streams = list(streams)
        self._k = k
        self._emitted = 0
        self._finished = False
        #: (distance, sid, start, shard position) heap of stream heads.
        self._heads: List[Tuple[float, int, int, int, Match]] = []
        self.stats: Optional[QueryStats] = None
        self.shard_stats: Dict[int, QueryStats] = {}
        self.degraded = False
        self.fault_report: Optional[FaultReport] = None
        self.interrupted = False
        self.reason = ""
        self.certificate = math.inf
        for position in range(len(self._streams)):
            self._pull(position)

    def _pull(self, position: int) -> None:
        """Advance one shard stream and push its new head, if any."""
        _, stream = self._streams[position]
        try:
            head = next(stream)
        except StopIteration:
            return
        heapq.heappush(
            self._heads,
            (head.distance, head.sid, head.start, position, head),
        )

    def __iter__(self) -> "ShardedMatchStream":
        return self

    def __next__(self) -> Match:
        if self._finished:
            raise StopIteration
        if self._emitted >= self._k or not self._heads:
            self._finalize()
            raise StopIteration
        _, _, _, position, head = heapq.heappop(self._heads)
        self._pull(position)
        self._emitted += 1
        return head

    def close(self) -> None:
        """Stop early; diagnostics become available."""
        if not self._finished:
            self._finalize()

    def _finalize(self) -> None:
        self._finished = True
        stats = QueryStats()
        reasons: List[str] = []
        for shard, stream in self._streams:
            stream.close()
            if stream.stats is not None:
                stats.merge(stream.stats)
                self.shard_stats[shard] = stream.stats
            if stream.degraded:
                self.degraded = True
            if stream.fault_report is not None:
                if self.fault_report is None:
                    self.fault_report = FaultReport()
                self.fault_report.events.extend(stream.fault_report.events)
                self.fault_report.suppressed += stream.fault_report.suppressed
            if stream.interrupted:
                self.interrupted = True
                self.certificate = min(self.certificate, stream.certificate)
                if stream.reason and stream.reason not in reasons:
                    reasons.append(stream.reason)
        if self.interrupted:
            stats.interrupted = max(stats.interrupted, 1)
        self.reason = ",".join(sorted(reasons))
        self.stats = stats
