"""The sharded facade: N single-process databases behind one API.

:class:`ShardedDatabase` partitions the sequence store across ``N``
independent :class:`~repro.api.SubsequenceDatabase` instances (each
with its own pager, buffer pool, and DualMatch R*-tree), runs per-shard
subqueries on a pluggable executor, and merges the answers through the
ranked-union rules of :mod:`repro.shard.merge`.  The API mirrors the
unsharded facade — ``insert`` / ``build`` / ``search`` /
``range_search`` / ``iter_matches`` / ``save`` / ``load`` — and the
differential suite holds the results to *byte identity* with the
single-process oracle.

Control-plane fan-out semantics (see ``docs/sharding.md``):

* ``budget`` — the same :class:`~repro.control.QueryBudget` caps apply
  to **each shard independently** (the frozen budget object is shared;
  the per-query counters it is enforced against are per-shard).
* ``deadline`` — one shared :class:`~repro.control.Deadline`; all
  shards race the same wall clock.
* ``token`` — one shared :class:`~repro.control.CancellationToken`;
  cancelling it stops every shard at its next checkpoint.  Not
  supported on the process executor (tokens cannot cross the process
  boundary meaningfully).

Shard faults: per-page storage faults inside a shard follow the normal
``on_fault`` policy *within* that shard.  A shard failing wholesale
(worker crash, unreadable shard, an injected
:meth:`inject_shard_failure`) follows the same policy one level up —
``"raise"`` propagates, ``"degrade"`` drops the shard and returns a
:class:`~repro.shard.merge.ShardedPartialResult` whose certificate is
``0.0``: trivially sound, claiming exactness for nothing.

Thread safety: the facade is ``@shared_across_queries`` — after
:meth:`build` (or :meth:`load`) the shard topology is immutable and
query methods only create per-query state, so any number of threads
may search concurrently (the concurrency hammer drives 8).  The
build/staging phase is single-threaded by contract, like the unsharded
facade's ``insert``/``build``.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.concurrency import shared_across_queries
from repro.api import MatchStream, SubsequenceDatabase
from repro.control import CancellationToken, Deadline, QueryBudget
from repro.core.metrics import QueryStats
from repro.core.results import Match
from repro.engines.base import PartialResult, SearchResult
from repro.engines.cost_density import CostDensityConfig
from repro.exceptions import (
    ConfigurationError,
    IndexNotBuiltError,
    IntegrityError,
    StorageError,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.shard.executor import create_executor
from repro.shard.merge import (
    LostShard,
    ShardedMatchStream,
    merge_search_results,
)
from repro.shard.planner import ShardPlan, ShardPlanner
from repro.storage.buffer import RetryPolicy
from repro.storage.faults import FaultInjector
from repro.storage.page import PAGE_SIZE_DEFAULT

#: Shard-manifest sentinel file (distinct from the per-shard format-v2
#: ``MANIFEST`` so the two directory kinds are never confused).
SHARD_MANIFEST_NAME = "SHARDS"
SHARD_MANIFEST_MAGIC = "repro-sharded-database"
SHARD_FORMAT_VERSION = 1

_ShardExecutor = Any  # Serial/Thread/ProcessShardExecutor


def shard_dir_name(index: int) -> str:
    """Canonical subdirectory name for shard ``index``."""
    return f"shard-{index:04d}"


def is_sharded_database_directory(path: "os.PathLike[str] | str") -> bool:
    """Whether ``path`` looks like a committed sharded database."""
    return (pathlib.Path(path) / SHARD_MANIFEST_NAME).exists()


@shared_across_queries
class ShardedDatabase:
    """N-shard ranked subsequence matching with exact merged answers.

    Parameters mirror :class:`~repro.api.SubsequenceDatabase` where
    they configure the per-shard databases; the sharding-specific ones:

    num_shards:
        Shard count ``N >= 1``.  ``N`` may exceed the number of
        sequences — surplus shards stay empty and are skipped.
    policy:
        Partitioning policy, ``"hash"`` or ``"range"`` (see
        :mod:`repro.shard.planner`).
    executor:
        ``"serial"``, ``"thread"`` (default), or ``"process"``.  The
        process executor requires a database opened from a persisted
        root (:meth:`load`) so workers can load shards from disk.
    fault_injectors:
        Optional ``{shard index -> FaultInjector}`` wiring per-shard
        fault schedules into the chaos harness.
    backend:
        Storage backend *name* applied to every shard (``None``/
        ``"file"``/``"mmap"``).  Backend instances are per-database
        state, so the sharded facade accepts only specs it can resolve
        freshly per shard.
    """

    def __init__(
        self,
        num_shards: int,
        policy: str = "hash",
        executor: str = "thread",
        omega: int = 64,
        features: int = 4,
        page_size: int = PAGE_SIZE_DEFAULT,
        buffer_fraction: float = 0.05,
        p: float = 2.0,
        data_stride: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        fault_injectors: Optional[Dict[int, FaultInjector]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        backend: Optional[str] = None,
    ) -> None:
        if backend is not None and not isinstance(backend, str):
            raise ConfigurationError(
                "sharded databases take a backend *name* (one instance "
                "is resolved per shard); got "
                f"{type(backend).__name__}"
            )
        self.planner = ShardPlanner(num_shards, policy=policy)
        self.omega = omega
        self.features = features
        self.page_size = page_size
        self.buffer_fraction = buffer_fraction
        self.p = p
        self.data_stride = data_stride
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._fault_injectors = dict(fault_injectors or {})
        self._retry_policy = retry_policy
        self._backend_spec = backend
        self._executor_kind = executor
        self._executor: Optional[_ShardExecutor] = None
        #: Insertion-ordered staging area; emptied by :meth:`build`.
        self._staged: Dict[int, Any] = {}
        #: ``shard index -> database`` for non-empty shards (build order).
        self.shards: Optional[Dict[int, SubsequenceDatabase]] = None
        self.plan: Optional[ShardPlan] = None
        self._psm = False
        #: Persisted root this database was loaded from (process
        #: executor jobs reference its shard subdirectories).
        self._root: Optional[pathlib.Path] = None
        #: Chaos hook: shards that fail wholesale at the next query.
        self._failed_shards: Set[int] = set()
        # Validate the executor kind eagerly, not at first search.
        if executor not in ("serial", "thread", "process"):
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected 'serial', "
                f"'thread', or 'process'"
            )

    # ------------------------------------------------------------------
    # Topology / introspection
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.planner.num_shards

    @property
    def policy(self) -> str:
        return self.planner.policy

    @property
    def num_sequences(self) -> int:
        if self.shards is None:
            return len(self._staged)
        return sum(db.store.num_sequences for db in self.shards.values())

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def set_tracer(self, tracer: Tracer) -> None:
        """Swap the tracer across every shard's storage stack."""
        self._tracer = tracer
        if self.shards is not None:
            for db in self.shards.values():
                db.set_tracer(tracer)

    @property
    def executor(self) -> _ShardExecutor:
        """The shard executor (created lazily at build/load time)."""
        if self._executor is None:
            raise IndexNotBuiltError("call build() before querying")
        return self._executor

    def describe(self) -> Dict[str, object]:
        """Topology summary plus per-shard Table 2-style descriptions."""
        self._require_built()
        assert self.shards is not None and self.plan is not None
        return {
            "num_shards": self.num_shards,
            "policy": self.policy,
            "executor": self.executor.kind,
            "empty_shards": self.plan.empty_shards,
            "sequences": self.num_sequences,
            "shards": {
                index: db.describe() for index, db in self.shards.items()
            },
        }

    def reset_cache(self) -> None:
        """Cold-start every shard's buffer pool and I/O counters."""
        self._require_built()
        assert self.shards is not None
        for db in self.shards.values():
            db.reset_cache()

    def warm_engines(self) -> None:
        """Pre-construct every shard's engine cache.

        Engines are cached in a plain per-shard dict; warming them once
        from the building thread means concurrent queries never race
        the first construction (same pattern as the serve layer).
        """
        self._require_built()
        assert self.shards is not None
        methods = ["seqscan", "hlmj", "hlmj-wg", "ru", "ru-cost"]
        if self._psm:
            methods.append("psm")
        for db in self.shards.values():
            for method in methods:
                db._engine(method, None)

    def inject_shard_failure(self, shard: int) -> None:
        """Chaos/test hook: make ``shard`` fail wholesale at query time.

        Subsequent queries treat the shard as crashed: ``on_fault=
        "raise"`` propagates a :class:`~repro.exceptions.StorageError`,
        ``"degrade"`` drops the shard and degrades the merged result
        with a 0.0 certificate.
        """
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        self._failed_shards.add(shard)

    def heal_shard(self, shard: int) -> None:
        """Undo :meth:`inject_shard_failure`."""
        self._failed_shards.discard(shard)

    # ------------------------------------------------------------------
    # Loading and building
    # ------------------------------------------------------------------

    def insert(self, sid: int, values: Sequence[float]) -> None:
        """Stage one data sequence.  Must precede :meth:`build`."""
        if self.shards is not None:
            raise ConfigurationError(
                "insert() after build() is not supported; create a new "
                "sharded database and rebuild"
            )
        if sid in self._staged:
            raise ConfigurationError(f"sequence {sid} already inserted")
        self._staged[sid] = values

    def build(self, psm: bool = False) -> None:
        """Partition the staged sequences and build every shard's index.

        Sequences are routed by the planner and inserted into their
        shard **in original insertion order**, so a one-shard database
        is bit-identical (page layout, I/O counts) to the unsharded
        equivalent.
        """
        if not self._staged:
            raise ConfigurationError("no sequences inserted before build()")
        plan = self.planner.plan(list(self._staged))
        shards: Dict[int, SubsequenceDatabase] = {}
        for sid, values in self._staged.items():
            index = plan.assignment[sid]
            db = shards.get(index)
            if db is None:
                db = self._make_shard(index)
                shards[index] = db
            db.insert(sid, values)
        for db in shards.values():
            db.build(psm=psm)
        self.plan = plan
        self.shards = dict(sorted(shards.items()))
        self._psm = psm
        self._staged = {}
        self._executor = create_executor(self._executor_kind, self.num_shards)

    def _make_shard(self, index: int) -> SubsequenceDatabase:
        return SubsequenceDatabase(
            omega=self.omega,
            features=self.features,
            page_size=self.page_size,
            buffer_fraction=self.buffer_fraction,
            p=self.p,
            data_stride=self.data_stride,
            fault_injector=self._fault_injectors.get(index),
            retry_policy=self._retry_policy,
            tracer=self._tracer,
            backend=self._backend_spec,
        )

    def _require_built(self) -> None:
        if self.shards is None:
            raise IndexNotBuiltError("call build() before querying")

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------

    def search(
        self,
        query: Sequence[float],
        k: int = 10,
        rho: Optional[int] = None,
        method: str = "ru-cost",
        deferred: bool = False,
        cost_config: Optional[CostDensityConfig] = None,
        on_fault: str = "raise",
        budget: Optional[QueryBudget] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        normalize: bool = False,
    ) -> SearchResult:
        """Globally exact top-k over every shard (same API as unsharded).

        Fan-out/merge semantics are described in the module docstring;
        the result is byte-identical to
        :meth:`repro.api.SubsequenceDatabase.search` on the same data.
        ``normalize=True`` matches under z-normalized DTW (each shard
        normalizes candidates by their own rolling statistics, so the
        merged answer equals the unsharded normalized answer).
        """
        self._require_built()
        if rho is None:
            rho = max(1, int(0.05 * len(query)))

        if self._use_process_pool(token):
            request = self._base_request(
                query, rho, on_fault, budget, deadline, normalize
            )
            request.update(
                kind="knn", k=k, method=method,
                deferred=deferred, psm=self._psm,
            )
            if method == "ru-cost" and cost_config is not None:
                raise ConfigurationError(
                    "cost_config overrides are not supported on the "
                    "process executor"
                )
            outcomes, lost = self._run_process(request, on_fault)
        else:

            def subquery(db: SubsequenceDatabase) -> SearchResult:
                return db.search(
                    query,
                    k=k,
                    rho=rho,
                    method=method,
                    deferred=deferred,
                    cost_config=cost_config,
                    on_fault=on_fault,
                    budget=budget,
                    deadline=deadline,
                    token=token,
                    normalize=normalize,
                )

            outcomes, lost = self._fan_out(subquery, on_fault)
        merged = merge_search_results(outcomes, k=k, lost=lost)
        self._record_shard_metrics(outcomes)
        return merged

    def range_search(
        self,
        query: Sequence[float],
        epsilon: float,
        rho: Optional[int] = None,
        on_fault: str = "raise",
        budget: Optional[QueryBudget] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        normalize: bool = False,
    ) -> SearchResult:
        """All subsequences within ``epsilon``, merged across shards."""
        self._require_built()
        if rho is None:
            rho = max(1, int(0.05 * len(query)))

        if self._use_process_pool(token):
            request = self._base_request(
                query, rho, on_fault, budget, deadline, normalize
            )
            request.update(kind="range", epsilon=epsilon, psm=self._psm)
            outcomes, lost = self._run_process(request, on_fault)
        else:

            def subquery(db: SubsequenceDatabase) -> SearchResult:
                return db.range_search(
                    query,
                    epsilon=epsilon,
                    rho=rho,
                    on_fault=on_fault,
                    budget=budget,
                    deadline=deadline,
                    token=token,
                    normalize=normalize,
                )

            outcomes, lost = self._fan_out(subquery, on_fault)
        merged = merge_search_results(outcomes, k=None, lost=lost)
        self._record_shard_metrics(outcomes)
        return merged

    def iter_matches(
        self,
        query: Sequence[float],
        k: int = 10,
        rho: Optional[int] = None,
        scheduling: str = "max-delta",
        on_fault: str = "raise",
        budget: Optional[QueryBudget] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        normalize: bool = False,
    ) -> ShardedMatchStream:
        """Stream globally ranked matches lazily, best first.

        Opens one :class:`~repro.api.MatchStream` per non-empty shard
        and merges their heads through a ranked-union heap; emission is
        nondecreasing in ``(distance, sid, start)`` and byte-identical
        to the unsharded stream.  Streaming pulls shards incrementally
        from the calling thread, so it runs in-process regardless of
        the executor (the process pool is for whole subqueries).
        """
        self._require_built()
        assert self.shards is not None
        if rho is None:
            rho = max(1, int(0.05 * len(query)))
        streams: List[Tuple[int, MatchStream]] = []
        try:
            for index, db in self.shards.items():
                if index in self._failed_shards:
                    raise StorageError(
                        f"shard {index} failed (injected shard failure)"
                    )
                streams.append(
                    (
                        index,
                        db.iter_matches(
                            query,
                            k=k,
                            rho=rho,
                            scheduling=scheduling,
                            on_fault=on_fault,
                            budget=budget,
                            deadline=deadline,
                            token=token,
                            normalize=normalize,
                        ),
                    )
                )
        except StorageError:
            for _, stream in streams:
                stream.close()
            raise
        return ShardedMatchStream(streams, k=k)

    # ------------------------------------------------------------------
    # Fan-out plumbing
    # ------------------------------------------------------------------

    def _use_process_pool(self, token: Optional[CancellationToken]) -> bool:
        if self.executor.kind != "process":
            return False
        if token is not None:
            raise ConfigurationError(
                "cancellation tokens are not supported on the process "
                "executor; use executor='thread' or 'serial'"
            )
        return True

    def _base_request(
        self,
        query: Sequence[float],
        rho: int,
        on_fault: str,
        budget: Optional[QueryBudget],
        deadline: Optional[Deadline],
        normalize: bool = False,
    ) -> Dict[str, Any]:
        return {
            "query": [float(v) for v in query],
            "rho": rho,
            "on_fault": on_fault,
            "budget": budget,
            "deadline_s": None if deadline is None else deadline.remaining(),
            "normalize": normalize,
        }

    def _shard_items(self) -> List[Tuple[int, SubsequenceDatabase]]:
        assert self.shards is not None
        return list(self.shards.items())

    def _fan_out(
        self,
        subquery: Callable[[SubsequenceDatabase], SearchResult],
        on_fault: str,
    ) -> Tuple[List[Tuple[int, SearchResult]], List[LostShard]]:
        """Run ``subquery`` on every non-empty shard via the executor.

        Per-shard *storage* faults are already handled inside the shard
        by its ``on_fault`` policy; this layer applies the same policy
        to whole-shard failures.
        """
        items = self._shard_items()
        tracer = self._tracer

        def task(index: int, db: SubsequenceDatabase) -> Tuple[int, Any]:
            try:
                if index in self._failed_shards:
                    raise StorageError(
                        f"shard {index} failed (injected shard failure)"
                    )
                if tracer.enabled:
                    with tracer.span("shard.subquery", shard=index):
                        return (index, subquery(db))
                return (index, subquery(db))
            except StorageError as error:
                if on_fault != "degrade":
                    raise
                return (index, LostShard(shard=index, detail=str(error)))

        tasks = [
            (lambda index=index, db=db: task(index, db))
            for index, db in items
        ]
        tagged = self.executor.run(tasks)
        outcomes: List[Tuple[int, SearchResult]] = []
        lost: List[LostShard] = []
        for index, payload in tagged:
            if isinstance(payload, LostShard):
                lost.append(payload)
            else:
                outcomes.append((index, payload))
        return outcomes, lost

    def _run_process(
        self, request: Dict[str, Any], on_fault: str
    ) -> Tuple[List[Tuple[int, SearchResult]], List[LostShard]]:
        """Dispatch one request per shard to the process pool."""
        if self._root is None:
            raise ConfigurationError(
                "the process executor requires a database opened from a "
                "persisted root (ShardedDatabase.load(..., "
                "executor='process'))"
            )
        items = self._shard_items()
        jobs: List[Tuple[str, Dict[str, Any]]] = []
        live: List[int] = []
        lost: List[LostShard] = []
        for index, _ in items:
            if index in self._failed_shards:
                failure = StorageError(
                    f"shard {index} failed (injected shard failure)"
                )
                if on_fault != "degrade":
                    raise failure
                lost.append(LostShard(shard=index, detail=str(failure)))
                continue
            jobs.append(
                (str(self._root / shard_dir_name(index)), dict(request))
            )
            live.append(index)
        encoded = self.executor.run_requests(jobs)
        outcomes: List[Tuple[int, SearchResult]] = []
        for index, record in zip(live, encoded):
            error = record.get("error")
            if error is not None:
                if on_fault != "degrade":
                    raise StorageError(
                        f"shard {index} subquery failed: {error}"
                    )
                lost.append(LostShard(shard=index, detail=str(error)))
                continue
            outcomes.append((index, _decode_result(record)))
        return outcomes, lost

    def _record_shard_metrics(
        self, outcomes: Sequence[Tuple[int, SearchResult]]
    ) -> None:
        """Publish per-shard NUM_IO counters to the metrics registry.

        ``shard.<i>.page_accesses`` / ``shard.<i>.candidates`` sum to
        the merged result's counters by construction; the property
        suite pins that invariant and, for one shard, the golden
        table's unsharded values.
        """
        if not self._tracer.enabled:
            return
        metrics = self._tracer.metrics
        for index, outcome in outcomes:
            metrics.counter(f"shard.{index}.page_accesses").inc(
                outcome.stats.page_accesses
            )
            metrics.counter(f"shard.{index}.candidates").inc(
                outcome.stats.candidates
            )

    # ------------------------------------------------------------------
    # Persistence: shard manifest on top of format-v2
    # ------------------------------------------------------------------

    def save(self, directory: "os.PathLike[str] | str") -> None:
        """Persist the sharded database: manifest + per-shard format-v2.

        Crash-safe like the per-shard format: everything lands in a
        temporary sibling, each shard directory is a complete format-v2
        database, the ``SHARDS`` manifest is written last, and the root
        is atomically renamed into place.
        """
        self._require_built()
        assert self.shards is not None and self.plan is not None
        target = pathlib.Path(directory)
        if target.exists() and not (
            target.is_dir()
            and (not any(target.iterdir())
                 or is_sharded_database_directory(target))
        ):
            raise ConfigurationError(
                f"refusing to overwrite {target}: not an empty directory "
                f"or a sharded database"
            )
        target.parent.mkdir(parents=True, exist_ok=True)
        temp = pathlib.Path(
            tempfile.mkdtemp(
                prefix=f".{target.name}.tmp-", dir=target.parent
            )
        )
        try:
            for index, db in self.shards.items():
                db.save(temp / shard_dir_name(index))
            manifest = {
                "magic": SHARD_MANIFEST_MAGIC,
                "format": SHARD_FORMAT_VERSION,
                "num_shards": self.num_shards,
                "policy": self.policy,
                "psm": self._psm,
                "assignment": {
                    str(sid): shard
                    for sid, shard in self.plan.assignment.items()
                },
                "shard_dirs": {
                    str(index): shard_dir_name(index)
                    for index in self.shards
                },
                "config": {
                    "omega": self.omega,
                    "features": self.features,
                    "page_size": self.page_size,
                    "buffer_fraction": self.buffer_fraction,
                    "p": self.p,
                    "data_stride": self.data_stride,
                },
            }
            manifest_path = temp / SHARD_MANIFEST_NAME
            with open(manifest_path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=1, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            if target.exists():
                old = pathlib.Path(
                    tempfile.mkdtemp(
                        prefix=f".{target.name}.old-", dir=target.parent
                    )
                )
                os.rename(target, old / "previous")
                os.rename(temp, target)
                shutil.rmtree(old, ignore_errors=True)
            else:
                os.rename(temp, target)
        except BaseException:
            shutil.rmtree(temp, ignore_errors=True)
            raise

    @classmethod
    def load(
        cls,
        directory: "os.PathLike[str] | str",
        executor: str = "thread",
        backend: Optional[str] = None,
    ) -> "ShardedDatabase":
        """Reconstruct a sharded database saved with :meth:`save`.

        Every shard reloads page-for-page, so a reloaded sharded
        database reproduces identical results *and* identical per-shard
        I/O counts.  This is the entry point for
        ``executor="process"`` — workers stream shards from this root.
        ``backend`` is a storage backend name applied per shard.
        """
        root = pathlib.Path(directory)
        manifest_path = root / SHARD_MANIFEST_NAME
        if not manifest_path.exists():
            raise IntegrityError(
                f"{root} is not a sharded database (no "
                f"{SHARD_MANIFEST_NAME} manifest)"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("magic") != SHARD_MANIFEST_MAGIC:
            raise IntegrityError(f"{root}: bad shard manifest magic")
        if manifest.get("format") != SHARD_FORMAT_VERSION:
            raise IntegrityError(
                f"{root}: unsupported shard format "
                f"{manifest.get('format')!r}"
            )
        config = manifest["config"]
        db = cls(
            num_shards=int(manifest["num_shards"]),
            policy=str(manifest["policy"]),
            executor=executor,
            omega=int(config["omega"]),
            features=int(config["features"]),
            page_size=int(config["page_size"]),
            buffer_fraction=float(config["buffer_fraction"]),
            p=float(config["p"]),
            data_stride=config["data_stride"],
            backend=backend,
        )
        psm = bool(manifest.get("psm", False))
        shards: Dict[int, SubsequenceDatabase] = {}
        for key, name in sorted(
            manifest["shard_dirs"].items(), key=lambda kv: int(kv[0])
        ):
            shards[int(key)] = SubsequenceDatabase.load(
                root / name, psm=psm, backend=backend
            )
        assignment = {
            int(sid): int(shard)
            for sid, shard in manifest["assignment"].items()
        }
        db.plan = ShardPlan(
            num_shards=db.num_shards,
            policy=db.policy,
            assignment=assignment,
        )
        db.shards = shards
        db._psm = psm
        db._root = root
        db._staged = {}
        db._executor = create_executor(executor, db.num_shards)
        return db

    def close(self) -> None:
        """Release the executor pool and shard backends (idempotent)."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.close()
        if self.shards is not None:
            for db in self.shards.values():
                db.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _decode_result(record: Dict[str, Any]) -> SearchResult:
    """Rebuild a (Partial)SearchResult from a worker's result dict."""
    from repro.engines.base import FaultEvent, FaultReport

    matches = [
        Match(distance=d, sid=sid, start=start, length=length)
        for d, sid, start, length in record["matches"]
    ]
    stats = QueryStats(**record["stats"])
    events = [
        FaultEvent(
            error=error,
            detail=detail,
            page_id=page_id,
            candidate=None if candidate is None else tuple(candidate),
        )
        for error, detail, page_id, candidate in record["fault_events"]
    ]
    report: Optional[FaultReport] = None
    if events or record["fault_suppressed"]:
        report = FaultReport(
            events=events, suppressed=record["fault_suppressed"]
        )
    if record["partial"]:
        return PartialResult(
            matches=matches,
            stats=stats,
            degraded=bool(record["degraded"]),
            fault_report=report,
            reason=str(record["reason"]),
            certificate=float(record["certificate"]),
        )
    return SearchResult(
        matches=matches,
        stats=stats,
        degraded=bool(record["degraded"]),
        fault_report=report,
    )
