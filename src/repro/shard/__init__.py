"""Sharded indexes with parallel ranked union (ROADMAP item 2).

Partition the sequence store and DualMatch index across N shards, run
per-shard `Φ_i` subqueries in parallel, and merge through the paper's
multi-way ranked-union frontier — exactness certificates compose
shard-wise.  See ``docs/sharding.md``.

Public surface:

* :class:`~repro.shard.planner.ShardPlanner` /
  :class:`~repro.shard.planner.ShardPlan` — deterministic hash/range
  partitioning.
* :class:`~repro.shard.database.ShardedDatabase` — the facade, same
  query API as :class:`~repro.api.SubsequenceDatabase`, byte-identical
  results.
* :class:`~repro.shard.merge.ShardedMatchStream` and the merged result
  types — ranked-union composition with shard-wise certificates.
* Executors — serial / thread / process subquery execution.
"""

from repro.shard.database import (
    SHARD_MANIFEST_NAME,
    ShardedDatabase,
    is_sharded_database_directory,
    shard_dir_name,
)
from repro.shard.executor import (
    EXECUTOR_KINDS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ThreadShardExecutor,
    create_executor,
)
from repro.shard.merge import (
    REASON_SHARD_LOST,
    LostShard,
    ShardedMatchStream,
    ShardedPartialResult,
    ShardedSearchResult,
    merge_search_results,
)
from repro.shard.planner import (
    POLICIES,
    ShardPlan,
    ShardPlanner,
    hash_shard,
)

__all__ = [
    "EXECUTOR_KINDS",
    "LostShard",
    "POLICIES",
    "ProcessShardExecutor",
    "REASON_SHARD_LOST",
    "SHARD_MANIFEST_NAME",
    "SerialShardExecutor",
    "ShardPlan",
    "ShardPlanner",
    "ShardedDatabase",
    "ShardedMatchStream",
    "ShardedPartialResult",
    "ShardedSearchResult",
    "ThreadShardExecutor",
    "create_executor",
    "hash_shard",
    "is_sharded_database_directory",
    "merge_search_results",
    "shard_dir_name",
]
