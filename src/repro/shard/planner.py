"""Shard assignment: which sequence lives on which shard.

The planner answers exactly one question — ``sid -> shard index`` — and
answers it *deterministically*: the same sequence ids, shard count, and
policy always produce the same plan, on any host, in any process.  That
determinism is what makes the differential suites meaningful (a sharded
database can be rebuilt bit-identically next to its unsharded oracle)
and what lets process-pool workers recompute routing locally instead of
shipping the assignment around.

Two policies (see ``docs/sharding.md``):

``hash``
    Knuth multiplicative integer mixing of the sequence id, reduced
    modulo the shard count.  Python's built-in ``hash`` is *not* used —
    it is salted per process (``PYTHONHASHSEED``), which would break
    cross-process determinism.
``range``
    Sequence ids are sorted and cut into ``num_shards`` contiguous runs
    of near-equal cardinality (the first ``len(sids) % num_shards``
    runs take the extra element).  Keeps id-adjacent sequences
    co-located, which matters when ids encode acquisition order.

Both policies tolerate ``num_shards > len(sids)``: the surplus shards
are simply empty, and :class:`~repro.shard.database.ShardedDatabase`
skips them at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.concurrency import shared_across_queries
from repro.exceptions import ConfigurationError

#: Supported partitioning policies.
POLICIES: Tuple[str, ...] = ("hash", "range")

#: Knuth's multiplicative hash constant (2^32 / phi); the full 32-bit
#: mix decorrelates consecutive sids before the modulo.
_KNUTH_MIX = 2654435761
_MASK_32 = 0xFFFFFFFF


def hash_shard(sid: int, num_shards: int) -> int:
    """Deterministic, process-independent shard index for ``sid``."""
    mixed = (abs(int(sid)) * _KNUTH_MIX) & _MASK_32
    mixed ^= mixed >> 16
    return mixed % num_shards


@dataclass(frozen=True)
class ShardPlan:
    """An immutable routing table produced by :meth:`ShardPlanner.plan`."""

    num_shards: int
    policy: str
    #: ``sid -> shard index`` for every planned sequence.
    assignment: Dict[int, int]

    def shard_of(self, sid: int) -> int:
        """The shard holding ``sid`` (raises on unknown ids)."""
        try:
            return self.assignment[sid]
        except KeyError:
            raise ConfigurationError(
                f"sequence {sid} is not part of this shard plan"
            ) from None

    def members(self, shard: int) -> List[int]:
        """Sequence ids assigned to ``shard``, in ascending order."""
        return sorted(
            sid for sid, index in self.assignment.items() if index == shard
        )

    @property
    def empty_shards(self) -> List[int]:
        """Shard indexes that received no sequences."""
        used = set(self.assignment.values())
        return [index for index in range(self.num_shards) if index not in used]


@shared_across_queries
class ShardPlanner:
    """Deterministic sequence partitioner for one shard topology.

    Stateless after construction (safe to share between queries and
    processes); :meth:`plan` is a pure function of the sid set.
    """

    def __init__(self, num_shards: int, policy: str = "hash") -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r}; expected one of {POLICIES}"
            )
        self.num_shards = num_shards
        self.policy = policy

    def plan(self, sids: Sequence[int]) -> ShardPlan:
        """Assign every sid to a shard under this planner's policy."""
        unique = list(dict.fromkeys(int(sid) for sid in sids))
        if len(unique) != len(sids):
            raise ConfigurationError("duplicate sequence ids in shard plan")
        if self.policy == "hash":
            assignment = {
                sid: hash_shard(sid, self.num_shards) for sid in unique
            }
        else:
            assignment = self._range_assignment(unique)
        return ShardPlan(
            num_shards=self.num_shards,
            policy=self.policy,
            assignment=assignment,
        )

    def _range_assignment(self, sids: List[int]) -> Dict[int, int]:
        ordered = sorted(sids)
        base, extra = divmod(len(ordered), self.num_shards)
        assignment: Dict[int, int] = {}
        cursor = 0
        for shard in range(self.num_shards):
            width = base + (1 if shard < extra else 0)
            for sid in ordered[cursor : cursor + width]:
                assignment[sid] = shard
            cursor += width
        return assignment
