"""Per-shard subquery execution: serial, thread-pool, or process-pool.

The merge layer (:mod:`repro.shard.merge`) is executor-agnostic: it
consumes one result per shard, in shard order.  What varies is *where*
the per-shard work runs:

``serial``
    Inline in the calling thread, shard 0 first.  Fully deterministic
    scheduling — the reference executor for differential tests.
``thread``
    A persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  The
    shards share the process, so per-shard subqueries see the parent's
    in-memory shard databases directly (and the parent's tracer — each
    worker thread records its own span subtree via the tracer's
    thread-local stacks).  This is the default: the engines spend much
    of their time in numpy kernels that release the GIL, and on a
    single-core host it degrades gracefully to interleaved execution.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` over a
    *persisted* shard root (see :meth:`~repro.shard.database.
    ShardedDatabase.save`).  Each worker lazily loads — then caches —
    its shard from disk, so page data is shared between workers at the
    OS file-cache level rather than copied through pickles.  Requests
    and results cross the process boundary as plain dicts; anything
    that cannot (cancellation tokens, fault injectors, tracers) is
    rejected up front by the facade.  Hosts that cannot start a
    process pool fall back to threads (``create_executor`` never
    fails over silently — the returned executor's ``kind`` says what
    actually runs).

Thread safety: executors are ``@shared_across_queries`` — one instance
serves every concurrent query on the facade.  The pool handle is
``@guarded_by`` the executor lock so close/submit races are impossible
(RS010/RS012).
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.analysis.concurrency import guarded_by, shared_across_queries
from repro.control import Deadline, QueryBudget
from repro.exceptions import ConfigurationError, UsageError

T = TypeVar("T")

#: Executor kinds accepted by :func:`create_executor`.
EXECUTOR_KINDS: Tuple[str, ...] = ("serial", "thread", "process")


@shared_across_queries
class SerialShardExecutor:
    """Run every shard task inline, in shard order."""

    kind = "serial"

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        return [task() for task in tasks]

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@shared_across_queries
@guarded_by("_lock", "_pool")
class ThreadShardExecutor:
    """Run shard tasks on a persistent thread pool."""

    kind = "thread"

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._lock = threading.Lock()
        self._pool: Optional[Executor] = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-shard"
        )

    def _live_pool(self) -> Executor:
        with self._lock:
            pool = self._pool
        if pool is None:
            raise UsageError("shard executor used after close()")
        return pool

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        pool = self._live_pool()
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Process pool: module-level worker with a per-process shard cache
# ---------------------------------------------------------------------------

#: Per-worker-process cache of loaded shard databases, keyed by the
#: shard directory.  Lives at module level so every task dispatched to
#: the same worker process reuses the already-loaded shard.
_WORKER_SHARDS: Dict[str, Any] = {}


def _worker_shard(shard_dir: str, psm: bool) -> Any:
    db = _WORKER_SHARDS.get(shard_dir)
    if db is None:
        from repro.storage.persistence import load_database

        db = load_database(shard_dir, psm=psm)
        _WORKER_SHARDS[shard_dir] = db
    return db


def run_shard_request(shard_dir: str, request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one serialized subquery against a persisted shard.

    Runs inside a pool worker process (but is a plain function — the
    serial/thread paths never use it, and tests call it directly).
    Returns a picklable result dict; see ``_encode_result``.
    """
    from repro.engines.base import PartialResult

    db = _worker_shard(shard_dir, bool(request.get("psm", False)))
    budget: Optional[QueryBudget] = request.get("budget")
    deadline_s: Optional[float] = request.get("deadline_s")
    deadline = None if deadline_s is None else Deadline.after(deadline_s)
    common: Dict[str, Any] = {
        "rho": request["rho"],
        "on_fault": request.get("on_fault", "raise"),
        "budget": budget,
        "deadline": deadline,
        "normalize": bool(request.get("normalize", False)),
    }
    if request["kind"] == "range":
        result = db.range_search(
            request["query"], epsilon=request["epsilon"], **common
        )
    else:
        result = db.search(
            request["query"],
            k=request["k"],
            method=request.get("method", "ru-cost"),
            deferred=bool(request.get("deferred", False)),
            **common,
        )
    encoded: Dict[str, Any] = {
        "matches": [
            (m.distance, m.sid, m.start, m.length) for m in result.matches
        ],
        "stats": result.stats.as_dict(),
        "degraded": result.degraded,
        "fault_events": [
            (e.error, e.detail, e.page_id, e.candidate)
            for e in (
                result.fault_report.events if result.fault_report else []
            )
        ],
        "fault_suppressed": (
            result.fault_report.suppressed if result.fault_report else 0
        ),
        "partial": isinstance(result, PartialResult),
    }
    if isinstance(result, PartialResult):
        encoded["reason"] = result.reason
        encoded["certificate"] = result.certificate
    return encoded


@shared_across_queries
@guarded_by("_lock", "_pool")
class ProcessShardExecutor:
    """Run serialized shard requests on a process pool over a saved root."""

    kind = "process"

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._lock = threading.Lock()
        # May raise on hosts without working multiprocessing; the
        # create_executor factory catches that and falls back to threads.
        self._pool: Optional[Executor] = ProcessPoolExecutor(
            max_workers=max_workers
        )

    def _live_pool(self) -> Executor:
        with self._lock:
            pool = self._pool
        if pool is None:
            raise UsageError("shard executor used after close()")
        return pool

    def run_requests(
        self, jobs: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        """Dispatch ``(shard_dir, request)`` jobs; one result dict each.

        A worker that dies mid-request (or a broken pool) surfaces as an
        ``{"error": ...}`` marker for that shard instead of poisoning
        the whole fan-out — the facade applies its shard-fault policy.
        """
        pool = self._live_pool()
        futures = [
            pool.submit(run_shard_request, shard_dir, request)
            for shard_dir, request in jobs
        ]
        results: List[Dict[str, Any]] = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as error:  # noqa: BLE001 — per-shard fault policy
                results.append(
                    {"error": f"{type(error).__name__}: {error}"}
                )
        return results

    def close(self) -> None:
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def create_executor(
    kind: str, num_shards: int
) -> "SerialShardExecutor | ThreadShardExecutor | ProcessShardExecutor":
    """Build the executor for one sharded database.

    ``process`` needs working OS multiprocessing; when the pool cannot
    be created the factory falls back to a thread executor (check the
    returned object's ``kind`` to see what actually runs).
    """
    if kind not in EXECUTOR_KINDS:
        raise ConfigurationError(
            f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
        )
    if kind == "serial":
        return SerialShardExecutor()
    workers = max(1, num_shards)
    if kind == "process":
        try:
            return ProcessShardExecutor(max_workers=workers)
        except (OSError, ImportError, NotImplementedError):
            return ThreadShardExecutor(max_workers=workers)
    return ThreadShardExecutor(max_workers=workers)
