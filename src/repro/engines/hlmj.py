"""HLMJ: the prior state of the art (Han et al., VLDB 2007 [12]).

One **global** minimum priority queue holds matching pairs of every
sliding query window with R*-tree nodes and leaf entries, ordered by
their index-level distance (MINDIST for nodes, ``LB_PAA`` for points).
When a leaf pair is popped, its **MDMWP-distance** — ``(r * d^p)^(1/p)``
with ``r`` the guaranteed number of disjoint windows inside a candidate
(Definition 2) — is compared against ``delta_cur``; because pops come out
in non-decreasing ``d``, the first pop whose MDMWP-distance exceeds
``delta_cur`` terminates the whole search.

This engine exists to reproduce the paper's motivating pathology: when
some query windows land in dense index regions and others in sparse
ones, the global queue drowns in dense-region pairs and the
MDMWP-distance grows very slowly (Figure 2; Experiments 2 and 4).

``use_window_group=True`` additionally enables [12]'s tighter
*window-group distance*: before retrieving a candidate, the LB_PAA
terms of **all** disjoint windows it contains are summed using the
in-memory window-point table (the transformed windows the original
system keeps alongside its index).  This prunes more candidates per
pop but cannot fix the scheduling order itself — the ablation bench
quantifies both effects.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple, cast

import numpy as np

from repro.core.lower_bounds import (
    batch_lower_bounds,
    batch_lower_bounds_znorm,
    lb_paa_pow,
    lb_paa_pow_batch,
    lb_paa_znorm_pow_batch,
    min_disjoint_windows,
)
from repro.core.normalize import NormalizationContext, WindowNormalizer
from repro.core.windows import (
    QueryWindow,
    QueryWindowSet,
    candidate_in_bounds,
    candidate_start,
)
from repro.core.metrics import QueryStats
from repro.engines.base import CandidateEvaluator, Engine, EngineConfig
from repro.exceptions import StorageError
from repro.index.builder import DualMatchIndex
from repro.index.rstar import RStarNode

_NODE = 0
_LEAF = 1


class HlmjEngine(Engine):
    """Global-priority-queue ranked matching with MDMWP pruning.

    Parameters
    ----------
    index:
        The DualMatch index.
    use_window_group:
        Enable [12]'s window-group distance as an additional
        per-candidate prune (see module docstring).
    """

    name = "HLMJ"

    def __init__(
        self, index: DualMatchIndex, use_window_group: bool = False
    ) -> None:
        super().__init__(index)
        self.use_window_group = use_window_group
        if use_window_group:
            self.name = "HLMJ-WG"

    def _window_group_pow(
        self,
        window_set: QueryWindowSet,
        sid: int,
        start: int,
        stats: QueryStats,
        p: float,
        norm: Optional[NormalizationContext] = None,
    ) -> float:
        """Sum of LB_PAA terms over every class window the candidate
        fully contains (the window-group distance, p-th power).

        Under normalized matching every contained window is a window of
        the *same* candidate, so all terms transform by the candidate's
        own ``(mu, sigma)`` — the stats the verification path will use.
        """
        table = self.index.window_point_table()
        omega = self.index.omega
        stride = self.index.data_stride
        seg_len = self.index.seg_len
        stats.window_group_evaluations += 1
        if norm is not None:
            mu, sigma = norm.stats(sid, start)
            mus = np.asarray([mu], dtype=np.float64)
            sigmas = np.asarray([sigma], dtype=np.float64)
        # The candidate's class residue: offset of its first grid window.
        residue = (-start) % stride
        total = 0.0
        offset = residue
        while offset + omega <= window_set.length:
            data_window = (start + offset) // stride
            point = table.get((sid, data_window))
            if point is not None:
                window = window_set.window_at(offset)
                if norm is None:
                    total += lb_paa_pow(
                        window.paa_lower,
                        window.paa_upper,
                        point,
                        seg_len,
                        p,
                    )
                else:
                    total += float(
                        lb_paa_znorm_pow_batch(
                            window.paa_lower,
                            window.paa_upper,
                            np.asarray(point, dtype=np.float64)[None, :],
                            mus,
                            sigmas,
                            seg_len,
                            p,
                        )[0]
                    )
            offset += omega
        return total

    def _run(
        self,
        window_set: QueryWindowSet,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        tree = self.index.tree
        store = self.index.store
        seg_len = self.index.seg_len
        stats = evaluator.stats
        r = min_disjoint_windows(
            window_set.length, self.index.omega, self.index.data_stride
        )
        tiebreak = itertools.count()

        # Heap entries: (dist_pow, seq, window_pos, kind, payload).
        # Seed every sliding window paired with the root node; the root
        # MINDIST is 0 by convention (its MBR covers everything relevant).
        heap: List[Tuple[float, int, int, int, object]] = [
            (0.0, next(tiebreak), index, _NODE, tree.root_page)
            for index, _window in enumerate(window_set.windows)
        ]
        heapq.heapify(heap)
        budget = evaluator.control

        tracer = evaluator.tracer
        while heap:
            # Everything still enqueued has MDMWP-distance^p at least
            # r * top, which is therefore a sound certificate frontier.
            budget.checkpoint(r * heap[0][0])
            dist_pow, _seq, window_pos, kind, payload = heapq.heappop(heap)
            stats.heap_pops += 1
            # MDMWP-distance of everything still enqueued is at least
            # r * dist_pow, so one failed check ends the search.
            if r * dist_pow > evaluator.threshold_pow:
                break
            window = window_set.windows[window_pos]
            if kind == _NODE:
                page_id = cast(int, payload)
                if tracer.enabled:
                    tracer.metrics.histogram("queue.depth").observe(
                        len(heap) + 1
                    )
                    with tracer.span("engine.heap_pop", kind="node"):
                        self._expand_pair(
                            heap,
                            tiebreak,
                            window,
                            window_pos,
                            page_id,
                            r,
                            evaluator,
                            config,
                        )
                else:
                    self._expand_pair(
                        heap,
                        tiebreak,
                        window,
                        window_pos,
                        page_id,
                        r,
                        evaluator,
                        config,
                    )
                continue
            record = payload
            start = candidate_start(
                record.window_index,
                window.sliding_offset,
                self.index.data_stride,
            )
            if not candidate_in_bounds(
                start, window_set.length, store.length(record.sid)
            ):
                continue
            bound_pow = r * dist_pow
            if self.use_window_group and not evaluator.already_seen(
                record.sid, start
            ):
                group_pow = self._window_group_pow(
                    window_set,
                    record.sid,
                    start,
                    stats,
                    config.p,
                    evaluator.norm,
                )
                if group_pow > bound_pow:
                    bound_pow = group_pow
            evaluator.submit(record.sid, start, bound_pow)

    def _expand_pair(
        self,
        heap: List[Tuple[float, int, int, int, object]],
        tiebreak: "itertools.count[int]",
        window: QueryWindow,
        window_pos: int,
        page_id: int,
        r: int,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        """Expand one (window, node) pair into scored child pairs."""
        tree = self.index.tree
        seg_len = self.index.seg_len
        stats = evaluator.stats
        try:
            node = tree.read_node(page_id)
        except StorageError as error:
            # Degrade: drop this (window, subtree) pair and keep
            # draining the global queue.
            evaluator.fault(error, page_id=page_id)
            return
        stats.node_expansions += 1
        threshold_pow = evaluator.threshold_pow
        entries = node.entries
        if not entries:
            return
        norm = (
            None
            if evaluator.norm is None
            else evaluator.norm.for_window(
                window.sliding_offset, self.index.data_stride
            )
        )
        tracer = evaluator.tracer
        if tracer.enabled:
            with tracer.span(
                "engine.lb_batch", n=len(entries), leaf=node.is_leaf
            ):
                child_pows, child_kind, payloads = self._score_entries(
                    node, window, seg_len, config, norm
                )
            tracer.metrics.histogram("lb.batch_size").observe(len(entries))
        else:
            child_pows, child_kind, payloads = self._score_entries(
                node, window, seg_len, config, norm
            )
        for child_pow, child_payload in zip(child_pows.tolist(), payloads):
            if r * child_pow > threshold_pow:
                continue
            heapq.heappush(
                heap,
                (
                    child_pow,
                    next(tiebreak),
                    window_pos,
                    child_kind,
                    child_payload,
                ),
            )

    @staticmethod
    def _score_entries(
        node: RStarNode,
        window: QueryWindow,
        seg_len: int,
        config: EngineConfig,
        norm: Optional[WindowNormalizer] = None,
    ) -> Tuple[np.ndarray, int, List[object]]:
        """Score a node's entries in one batched kernel call.

        Pushes happen in storage order with tie-break counters drawn
        only for survivors, so heap order is unchanged versus scoring
        one entry at a time.
        """
        entries = node.entries
        if node.is_leaf:
            points = np.stack([entry.low for entry in entries])
            if norm is None:
                child_pows = lb_paa_pow_batch(
                    window.paa_lower,
                    window.paa_upper,
                    points,
                    seg_len,
                    config.p,
                )
            else:
                mus, sigmas = norm.leaf_stats(
                    [entry.record for entry in entries]
                )
                child_pows = lb_paa_znorm_pow_batch(
                    window.paa_lower,
                    window.paa_upper,
                    points,
                    mus,
                    sigmas,
                    seg_len,
                    config.p,
                )
            return child_pows, _LEAF, [entry.record for entry in entries]
        lows = np.stack([entry.low for entry in entries])
        highs = np.stack([entry.high for entry in entries])
        if norm is None:
            child_pows, _far = batch_lower_bounds(
                window.paa_lower,
                window.paa_upper,
                lows,
                highs,
                seg_len,
                config.p,
            )
        else:
            child_pows, _far = batch_lower_bounds_znorm(
                window.paa_lower,
                window.paa_upper,
                lows,
                highs,
                norm.mu_range,
                norm.sigma_range,
                seg_len,
                config.p,
            )
        return child_pows, _NODE, [entry.child_page for entry in entries]
