"""Priority-queue selection strategies for the ``Φ`` operator.

``Φ_i.GetNext()`` must decide which of its per-window priority queues to
consume (``SelectPriorityQueue()`` in the paper).  Four strategies are
provided:

* :class:`MaxDeltaStrategy` — the paper's **RU** default, adopted from
  the multi-feature ranking heuristics of Güntzer et al. [10]: pick the
  queue whose top distance grew the most since it was last selected.
* :class:`GlobalMinStrategy` — pop the globally smallest pair first;
  this reproduces HLMJ's MDMWP ordering *inside* the ranked-union
  framework (used by Lemma 5's analysis and the ablation bench).
* :class:`RoundRobinStrategy` — naive fairness baseline (ablation).
* :class:`CostAwareStrategy` — **RU-COST** (Section 4), delegating to
  :class:`~repro.engines.cost_density.CostAwareDensityScheduler`.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.engines.cost_density import (
    CostAwareDensityScheduler,
    CostDensityConfig,
)
from repro.engines.queues import WindowQueue
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:
    from repro.storage.sequences import SequenceStore


class SchedulingStrategy(abc.ABC):
    """Chooses which live queue the owning ``Φ`` pops next."""

    name: str = "strategy"

    @abc.abstractmethod
    def select(self, queues: Sequence[WindowQueue]) -> WindowQueue:
        """Pick one of the (all non-empty) queues."""

    def after_pop(self, queue: WindowQueue) -> None:
        """Hook invoked after the selected queue was popped."""


class MaxDeltaStrategy(SchedulingStrategy):
    """Pick the queue whose top grew the most since its last selection."""

    name = "max-delta"

    def select(self, queues: Sequence[WindowQueue]) -> WindowQueue:
        best = queues[0]
        best_delta = -math.inf
        for queue in queues:
            top = queue.top_pow()
            delta = top - queue.reference_top_pow
            if delta > best_delta:
                best_delta = delta
                best = queue
        return best

    def after_pop(self, queue: WindowQueue) -> None:
        queue.reference_top_pow = queue.top_pow()


class GlobalMinStrategy(SchedulingStrategy):
    """Pop the smallest pair overall — HLMJ's order inside ranked union."""

    name = "global-min"

    def select(self, queues: Sequence[WindowQueue]) -> WindowQueue:
        return min(queues, key=lambda queue: queue.top_pow())


class RoundRobinStrategy(SchedulingStrategy):
    """Cycle through the queues regardless of content."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, queues: Sequence[WindowQueue]) -> WindowQueue:
        queue = queues[self._cursor % len(queues)]
        self._cursor += 1
        return queue


class CostAwareStrategy(SchedulingStrategy):
    """RU-COST: delegate to the cost-aware density scheduler.

    The densest-queue decision is *sticky*: once selected, a queue is
    consumed for up to ``sticky_pops`` pops before the (comparatively
    expensive, occasionally I/O-incurring) density machinery re-runs.
    Densities drift slowly between consecutive pops, so stickiness cuts
    the scheduling overhead without changing which region of the queue
    space gets consumed.
    """

    name = "cost-aware"

    def __init__(
        self, scheduler: CostAwareDensityScheduler, sticky_pops: int = 4
    ) -> None:
        self._scheduler = scheduler
        self._sticky_pops = max(1, sticky_pops)
        self._current: Optional[WindowQueue] = None
        self._remaining = 0

    def select(self, queues: Sequence[WindowQueue]) -> WindowQueue:
        if (
            self._current is not None
            and self._remaining > 0
            and not self._current.is_empty
            and any(queue is self._current for queue in queues)
        ):
            self._remaining -= 1
            return self._current
        chosen = self._scheduler.select(queues)
        self._current = chosen
        self._remaining = self._sticky_pops - 1
        return chosen


#: A factory receives the Φ-level context it may need and returns a fresh
#: strategy instance (strategies keep per-Φ state).
StrategyFactory = Callable[..., SchedulingStrategy]

_SIMPLE_STRATEGIES = {
    "max-delta": MaxDeltaStrategy,
    "global-min": GlobalMinStrategy,
    "round-robin": RoundRobinStrategy,
}


def make_strategy(
    name: str,
    store: Optional["SequenceStore"] = None,
    query_length: Optional[int] = None,
    omega: Optional[int] = None,
    blocking_factor: Optional[int] = None,
    p: float = 2.0,
    cost_config: Optional[CostDensityConfig] = None,
    cap_for: Optional[Callable[[WindowQueue], float]] = None,
) -> SchedulingStrategy:
    """Instantiate a scheduling strategy by name.

    ``"cost-aware"`` additionally requires the storage context used for
    ``NUM_IO`` estimation (``store``, ``query_length``, ``omega``,
    ``blocking_factor``, ``cap_for``).
    """
    if name in _SIMPLE_STRATEGIES:
        return _SIMPLE_STRATEGIES[name]()
    if name == "cost-aware":
        if None in (store, query_length, omega, blocking_factor, cap_for):
            raise ConfigurationError(
                "cost-aware strategy needs store, query_length, omega, "
                "blocking_factor, and cap_for"
            )
        resolved_config = cost_config or CostDensityConfig()
        scheduler = CostAwareDensityScheduler(
            store=store,
            query_length=query_length,
            omega=omega,
            blocking_factor=blocking_factor,
            p=p,
            config=resolved_config,
            cap_for=cap_for,
        )
        return CostAwareStrategy(
            scheduler, sticky_pops=resolved_config.sticky_pops
        )
    raise ConfigurationError(
        f"unknown scheduling strategy {name!r}; expected one of "
        f"{sorted(_SIMPLE_STRATEGIES) + ['cost-aware']}"
    )
