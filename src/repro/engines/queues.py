"""Per-query-window priority queues for the ranked-union operators.

Each ``MSEQ_{i,j}`` gets one :class:`WindowQueue` — the "dynamically
generated and sorted list" of the paper's ranked-union view.  A queue
holds matching pairs of its query window with R*-tree nodes (scored by
MINDIST) and leaf entries (scored by ``LB_PAA``), in non-decreasing
p-th-power distance order.

Every entry also carries its MAXDIST (equal to the distance for leaf
entries): RU-COST's pivot selection approximates leaf-entry densities
from ``[MINDIST, MAXDIST]`` ranges without expanding nodes (Section 4).

The queue exposes exactly what the schedulers in
:mod:`repro.engines.scheduling` and :mod:`repro.engines.cost_density`
need: the current top, popping, node expansion with a pruning cap, a
sorted-prefix scan for lookahead, and the last-popped-leaf distance that
anchors the density denominators of Definitions 7 and 8.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.lower_bounds import (
    batch_lower_bounds,
    batch_lower_bounds_znorm,
    lb_paa_pow_batch,
    lb_paa_znorm_pow_batch,
)
from repro.core.metrics import QueryStats
from repro.core.normalize import WindowNormalizer
from repro.core.windows import QueryWindow
from repro.exceptions import StorageError
from repro.index.rstar import LeafRecord, RStarNode, RStarTree

#: Signature of a fault handler: ``(error, page_id) -> None``.  The
#: handler either re-raises (``on_fault="raise"``) or records the fault
#: and returns, in which case the unreadable subtree is dropped.
FaultHandler = Callable[[StorageError, int], None]

NODE = 0
LEAF = 1

#: Heap entry: (dist_pow, tiebreak, kind, payload, maxdist_pow).
QueueEntry = Tuple[float, int, int, object, float]

_counter = itertools.count()


class WindowQueue:
    """Priority queue of matching pairs for one query window."""

    def __init__(
        self,
        window: QueryWindow,
        tree: RStarTree,
        seg_len: int,
        p: float,
        stats: QueryStats,
        on_fault: Optional[FaultHandler] = None,
        norm: Optional[WindowNormalizer] = None,
    ) -> None:
        self.window = window
        self._tree = tree
        self._seg_len = seg_len
        self._p = p
        self._stats = stats
        self._on_fault = on_fault
        #: When matching in z-normalized space: per-candidate stats for
        #: leaf entries, global stat ranges for internal-node MBRs.
        self._norm = norm
        self._heap: List[QueueEntry] = [
            (0.0, next(_counter), NODE, tree.root_page, math.inf)
        ]
        #: LB_PAA (p-th power) of the most recently popped leaf entry —
        #: ``le_p`` in Definitions 7 and 8.
        self.last_popped_leaf_pow = 0.0
        #: Top distance at the moment this queue was last selected; used
        #: by the max-delta default strategy.
        self.reference_top_pow = 0.0
        #: Bumped on every mutation so schedulers can cache per-version.
        self.version = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        return not self._heap

    def top_pow(self) -> float:
        """Distance of the entry to be popped next (``inf`` if empty)."""
        return self._heap[0][0] if self._heap else math.inf

    def pop(self) -> QueueEntry:
        """Pop the minimum entry, updating pop-side bookkeeping."""
        tracer = self._tree.tracer
        if tracer.enabled:
            # Depth *before* the pop: the queue pressure the scheduler
            # saw when it chose this queue.
            tracer.metrics.histogram("queue.depth").observe(len(self._heap))
        entry = heapq.heappop(self._heap)
        self.version += 1
        if entry[2] == LEAF:
            self.last_popped_leaf_pow = entry[0]
        return entry

    def _score_and_push(self, node: RStarNode, cap_pow: float) -> None:
        """Score all of a node's entries in one batched kernel call.

        Entries are pushed in storage order with tie-break counters
        consumed only for surviving entries, so heap contents (and every
        downstream pop order) are identical to scoring one entry at a
        time.
        """
        entries = node.entries
        if not entries:
            return
        tracer = self._tree.tracer
        if tracer.enabled:
            with tracer.span(
                "engine.lb_batch", n=len(entries), leaf=node.is_leaf
            ):
                self._score_and_push_now(node, cap_pow)
            tracer.metrics.histogram("lb.batch_size").observe(len(entries))
            return
        self._score_and_push_now(node, cap_pow)

    def _score_and_push_now(self, node: RStarNode, cap_pow: float) -> None:
        entries = node.entries
        if node.is_leaf:
            points = np.stack([entry.low for entry in entries])
            if self._norm is None:
                near = lb_paa_pow_batch(
                    self.window.paa_lower,
                    self.window.paa_upper,
                    points,
                    self._seg_len,
                    self._p,
                )
            else:
                mus, sigmas = self._norm.leaf_stats(
                    [entry.record for entry in entries]
                )
                near = lb_paa_znorm_pow_batch(
                    self.window.paa_lower,
                    self.window.paa_upper,
                    points,
                    mus,
                    sigmas,
                    self._seg_len,
                    self._p,
                )
            for entry, dist_pow in zip(entries, near.tolist()):
                if dist_pow > cap_pow:
                    continue
                heapq.heappush(
                    self._heap,
                    (dist_pow, next(_counter), LEAF, entry.record, dist_pow),
                )
            return
        lows = np.stack([entry.low for entry in entries])
        highs = np.stack([entry.high for entry in entries])
        if self._norm is None:
            near, far = batch_lower_bounds(
                self.window.paa_lower,
                self.window.paa_upper,
                lows,
                highs,
                self._seg_len,
                self._p,
                include_far=True,
            )
        else:
            near, far = batch_lower_bounds_znorm(
                self.window.paa_lower,
                self.window.paa_upper,
                lows,
                highs,
                self._norm.mu_range,
                self._norm.sigma_range,
                self._seg_len,
                self._p,
                include_far=True,
            )
        assert far is not None
        for entry, dist_pow, far_pow in zip(
            entries, near.tolist(), far.tolist()
        ):
            if dist_pow > cap_pow:
                continue
            heapq.heappush(
                self._heap,
                (dist_pow, next(_counter), NODE, entry.child_page, far_pow),
            )

    def expand_node(self, page_id: int, cap_pow: float = math.inf) -> None:
        """Read one node (counted I/O) and push its scored children.

        Children whose pair distance exceeds ``cap_pow`` — the headroom
        ``delta_cur^p`` minus the sibling-queue frontier (the push-time
        MSEQ prune of Section 3.2.2) — are dropped.

        An unreadable node is routed to the fault handler; when the
        handler returns (degrade policy) the node's subtree is dropped
        from this queue and the search continues on what is readable.
        """
        try:
            node = self._tree.read_node(page_id)
        except StorageError as error:
            if self._on_fault is None:
                raise
            self._on_fault(error, page_id)
            self.version += 1
            return
        self._stats.node_expansions += 1
        self._score_and_push(node, cap_pow)
        self.version += 1

    def expand_first_node(self, cap_pow: float = math.inf) -> bool:
        """Expand the nearest *node* entry in place (selective expansion).

        Used by RU-COST to refine ``LB_CDens`` without popping: the first
        node entry (in distance order) is removed and replaced by its
        children.  Returns ``False`` when the queue holds no node entry.
        """
        best: Optional[QueueEntry] = None
        for entry in self._heap:
            if entry[2] == NODE and (best is None or entry < best):
                best = entry
        if best is None:
            return False
        self._heap.remove(best)
        heapq.heapify(self._heap)
        self.expand_node(best[3], cap_pow)  # type: ignore[arg-type]
        return True

    def sorted_prefix(self, limit: int) -> List[QueueEntry]:
        """The ``limit`` nearest entries in distance order (no mutation)."""
        return heapq.nsmallest(limit, self._heap)

    def iter_entries(self) -> Iterator[QueueEntry]:
        """All enqueued entries, unordered (pivot estimation scans)."""
        return iter(self._heap)

    def iter_leaf_records(self) -> Iterator[Tuple[float, LeafRecord]]:
        """All leaf pairs currently enqueued, unordered (diagnostics)."""
        for dist_pow, _seq, kind, payload, _far in self._heap:
            if kind == LEAF:
                yield dist_pow, payload  # type: ignore[misc]
