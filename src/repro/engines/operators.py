"""The extended iterator model (Definition 5 of the paper).

Classic Volcano-style iterators return either a tuple or end-of-results.
The paper extends the contract with a third outcome so that the parent
operator can make fine-grained scheduling decisions: an operator may
report that no tuple is ready yet but that everything it will ever emit
costs at least ``LB``.

Every operator exposes ``start() / get_next() / end()`` and returns
``(Status, payload)`` pairs from ``get_next``:

* ``Status.TUPLE`` — payload is the next result (a ranked candidate);
* ``Status.LB`` — payload is the lower bound (p-th power) of the next
  result;
* ``Status.EOR`` — the operator is exhausted; payload is ``None``.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple


class Status(enum.Enum):
    """Outcome of one ``get_next`` call in the extended iterator model."""

    TUPLE = "tuple"
    LB = "lb"
    EOR = "eor"


@dataclass(frozen=True)
class RankedTuple:
    """A fully-evaluated candidate flowing between ranked operators."""

    distance_pow: float
    sid: int
    start: int


StepResult = Tuple[Status, Optional[Any]]


class ExtendedIterator(abc.ABC):
    """Base class for operators following the extended iterator model."""

    def start(self) -> None:
        """Initialise operator state.  Default: nothing to do."""

    @abc.abstractmethod
    def get_next(self) -> StepResult:
        """Advance by one scheduling quantum; see module docstring."""

    def end(self) -> None:
        """Release operator resources.  Default: nothing to do."""
