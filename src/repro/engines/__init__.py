"""Query engines.

Five engines implement Problem Definition 1 (exact top-k subsequence
matching under banded DTW); all of them must return the same distance
multiset:

* :mod:`repro.engines.seqscan` — LB_Keogh-filtered sequential scan.
* :mod:`repro.engines.hlmj` — the HLMJ baseline [12]: one global priority
  queue with MDMWP-distance pruning.
* :mod:`repro.engines.psm` — the adapted PSM baseline [22]: progressive
  index merge with bloom-filter join signatures.
* :mod:`repro.engines.ranked_union` — the paper's contribution: the
  ranked-union operator tree (``∪_r`` over one ``Φ_i`` per MSEQ), with
  pluggable priority-queue scheduling.  ``RU`` uses the default max-delta
  strategy; ``RU-COST`` uses cost-aware density-based scheduling with
  selective expansion (:mod:`repro.engines.cost_density`).

Shared plumbing lives in :mod:`repro.engines.base` (candidate evaluation,
deferred retrieval, stats) and :mod:`repro.engines.operators` (the
extended iterator protocol of Definition 5).
"""

from repro.engines.base import Engine, EngineConfig, SearchResult
from repro.engines.hlmj import HlmjEngine
from repro.engines.psm import PsmEngine, build_sliding_index
from repro.engines.range_search import RangeSearchEngine
from repro.engines.ranked_union import RankedUnionEngine
from repro.engines.seqscan import SeqScanEngine

__all__ = [
    "Engine",
    "EngineConfig",
    "SearchResult",
    "SeqScanEngine",
    "HlmjEngine",
    "PsmEngine",
    "build_sliding_index",
    "RangeSearchEngine",
    "RankedUnionEngine",
]
