"""Shared engine plumbing.

:class:`CandidateEvaluator` centralises everything that happens once an
engine decides a candidate subsequence is worth looking at:

* duplicate suppression (a candidate is reachable through many matching
  window pairs — Section 2 of the paper);
* index-level lower-bound pruning against ``delta_cur``;
* the deferred retrieval path ("(D)" variants) versus immediate
  retrieval;
* the retrieval pipeline itself: fault candidate pages through the
  buffer pool, cascade ``LB_Keogh`` then early-abandoning ``DTW_rho``,
  and offer survivors to the shared top-k collector.

Keeping this in one place guarantees that all five engines measure
candidates, page accesses, and prunes identically, so the benchmark
comparisons test *scheduling and bounds*, not bookkeeping differences.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.control import ExecutionControl, certificate_from_pow
from repro.core.distance import dtw_pow
from repro.core.envelope import Envelope
from repro.core.lower_bounds import lb_keogh_pow
from repro.core.metrics import QueryStats, StatsRecorder
from repro.core.normalize import NormalizationContext, znormalize
from repro.core.results import Match, TopKCollector
from repro.core.windows import QueryWindowSet
from repro.exceptions import (
    ConfigurationError,
    ExecutionInterrupted,
    StorageError,
)
from repro.index.builder import DualMatchIndex
from repro.obs import QueryProfile
from repro.obs.tracer import Span
from repro.storage.deferred import CandidateRequest, DeferredRetrievalBuffer

#: Bytes per stored value, used to express the deferred budget as a
#: fraction of database size (the paper uses 0.5 %).
_VALUE_BYTES = 8


@dataclass(frozen=True)
class EngineConfig:
    """Search-time knobs shared by every engine.

    Attributes
    ----------
    k:
        Number of results.
    rho:
        Warping width.  The benchmarks use the paper's 5 % of ``Len(Q)``.
    deferred:
        Enable the deferred retrieval mechanism (the "(D)" variants).
    deferred_fraction:
        Memory budget for delayed requests as a fraction of database
        bytes (paper: 0.005).
    p:
        Norm order.
    on_fault:
        Storage-fault policy.  ``"raise"`` (default) propagates any
        :class:`~repro.exceptions.StorageError` that survives the buffer
        pool's retries — exactness is preserved or the query fails.
        ``"degrade"`` skips unreadable candidates and index subtrees,
        still returns a well-formed top-k over everything readable, and
        flags the result ``degraded=True`` with a per-query
        :class:`FaultReport` — availability over exactness.
    normalize:
        Match in z-normalized space (amplitude/offset-invariant): the
        query and every candidate window are normalized to zero mean and
        unit variance before bounding and DTW, using the online
        rolling-stats kernel of :mod:`repro.core.normalize` and the
        ``*_znorm_*`` members of the RS005 bound chain.  ``False`` (the
        default) preserves the raw paper semantics bit for bit.
    """

    k: int
    rho: int
    deferred: bool = False
    deferred_fraction: float = 0.005
    p: float = 2.0
    on_fault: str = "raise"
    normalize: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.rho < 0:
            raise ConfigurationError(f"rho must be >= 0, got {self.rho}")
        if not 0 < self.deferred_fraction <= 1:
            raise ConfigurationError(
                f"deferred_fraction must be in (0, 1], got "
                f"{self.deferred_fraction}"
            )
        if self.on_fault not in ("raise", "degrade"):
            raise ConfigurationError(
                f"on_fault must be 'raise' or 'degrade', got "
                f"{self.on_fault!r}"
            )


#: Cap on recorded fault events so a sick disk cannot balloon a report.
_MAX_FAULT_EVENTS = 64


@dataclass(frozen=True)
class FaultEvent:
    """One storage fault tolerated during a degraded query."""

    error: str
    detail: str
    page_id: Optional[int] = None
    candidate: Optional[Tuple[int, int]] = None


@dataclass
class FaultReport:
    """Everything a degraded query skipped, for the caller to audit."""

    events: List[FaultEvent] = field(default_factory=list)
    #: Events beyond the recording cap (counted but not itemised).
    suppressed: int = 0

    def __bool__(self) -> bool:
        return bool(self.events) or self.suppressed > 0

    @property
    def total(self) -> int:
        return len(self.events) + self.suppressed

    def record(
        self,
        error: StorageError,
        page_id: Optional[int] = None,
        candidate: Optional[Tuple[int, int]] = None,
    ) -> None:
        if len(self.events) >= _MAX_FAULT_EVENTS:
            self.suppressed += 1
            return
        self.events.append(
            FaultEvent(
                error=type(error).__name__,
                detail=str(error),
                page_id=page_id,
                candidate=candidate,
            )
        )

    @property
    def failed_pages(self) -> List[int]:
        """Distinct page ids implicated, in first-seen order."""
        seen: List[int] = []
        for event in self.events:
            if event.page_id is not None and event.page_id not in seen:
                seen.append(event.page_id)
        return seen

    @property
    def skipped_candidates(self) -> List[Tuple[int, int]]:
        """``(sid, start)`` pairs dropped from consideration."""
        return [
            event.candidate
            for event in self.events
            if event.candidate is not None
        ]


@dataclass
class SearchResult:
    """Matches plus the per-query counters the paper reports."""

    matches: List[Match]
    stats: QueryStats
    #: True when faults forced the engine to skip work under
    #: ``on_fault="degrade"`` — the top-k is well-formed but may miss
    #: true results that lived on unreadable pages.
    degraded: bool = False
    #: Per-query audit of tolerated faults (``None`` on healthy runs).
    fault_report: Optional[FaultReport] = None
    #: Span tree + metrics delta for this query — populated only when
    #: the bound tracer was enabled (``None`` otherwise, at zero cost).
    profile: Optional[QueryProfile] = None

    @property
    def distances(self) -> List[float]:
        return [match.distance for match in self.matches]


@dataclass
class PartialResult(SearchResult):
    """A query cut short by a budget, deadline, or cancellation.

    The matches are the best-k-so-far over everything *examined*.  The
    :attr:`certificate` states exactly what exactness was given up: it
    is a lower bound on the true distance of every candidate the engine
    did **not** examine.  Consequences a caller can rely on:

    * every returned match with ``distance < certificate`` provably
      belongs to the exact top-k (no unexamined candidate can displace
      it);
    * the exact top-k can differ from the returned list only at
      distances ``>= certificate``;
    * an infinite certificate means nothing examinable remained — the
      partial result is in fact exact.

    This is the anytime form of the paper's Section 3 no-false-dismissal
    contract: instead of silently dropping candidates, the early exit
    reports the tightest bound under which drops may have occurred.
    """

    #: Why the query stopped: ``"cancelled"``, ``"deadline"``,
    #: ``"budget:pages"``, or ``"budget:candidates"``.
    reason: str = ""
    #: Lower bound (distance, not p-th power) on any unexamined
    #: candidate's true distance.  ``inf`` when nothing was left.
    certificate: float = math.inf

    @property
    def exact(self) -> bool:
        """Whether the interrupt provably lost nothing."""
        return math.isinf(self.certificate)


class CandidateEvaluator:
    """Retrieval, pruning, and top-k maintenance for one query run."""

    def __init__(
        self,
        index: DualMatchIndex,
        envelope: Envelope,
        query: np.ndarray,
        config: EngineConfig,
        stats: QueryStats,
        control: Optional[ExecutionControl] = None,
        norm: Optional[NormalizationContext] = None,
    ) -> None:
        self._index = index
        self._envelope = envelope
        self._query = query
        self._config = config
        self.stats = stats
        #: Per-query candidate statistics when matching in z-normalized
        #: space (``None`` on the raw path).  Engines read this to build
        #: their per-window :class:`~repro.core.normalize.WindowNormalizer`
        #: adapters so bounds and verification share the same stats.
        self.norm = norm
        #: The query's budget/deadline/cancellation checkpoints.  Engines
        #: bind this as their local ``budget`` and checkpoint at every
        #: traversal-loop boundary (lint rule RS007).  A default
        #: instance has no limits and never interrupts.
        self.control = control if control is not None else ExecutionControl()
        #: The query's tracer (disabled singleton unless the caller
        #: wired one through the control plane).
        self.tracer = self.control.tracer
        self.collector = TopKCollector(config.k, p=config.p)
        self.fault_report = FaultReport()
        self._seen: Set[Tuple[int, int]] = set()
        self._deferred: Optional[DeferredRetrievalBuffer] = None
        if config.deferred:
            database_bytes = index.store.total_values * _VALUE_BYTES
            self._deferred = DeferredRetrievalBuffer(
                DeferredRetrievalBuffer.capacity_for_database(
                    database_bytes, config.deferred_fraction
                )
            )
            self._deferred.tracer = self.tracer

    @property
    def threshold_pow(self) -> float:
        """``delta_cur ** p`` — the current pruning threshold."""
        return self.collector.threshold_pow

    @property
    def query_length(self) -> int:
        return int(self._query.size)

    @property
    def degrades(self) -> bool:
        """Whether this run tolerates storage faults by skipping work."""
        return self._config.on_fault == "degrade"

    def fault(
        self,
        error: StorageError,
        page_id: Optional[int] = None,
        candidate: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Handle one storage fault according to the ``on_fault`` policy.

        Re-raises under ``"raise"`` (the default — exactness preserved);
        records and returns under ``"degrade"`` so the caller can skip
        the affected candidate or subtree and continue.
        """
        if not self.degrades:
            raise error
        self.stats.faults_skipped += 1
        self.fault_report.record(error, page_id=page_id, candidate=candidate)

    def already_seen(self, sid: int, start: int) -> bool:
        """Whether a candidate was already submitted (no side effects)."""
        return (sid, start) in self._seen

    def submit(
        self, sid: int, start: int, lower_bound_pow: float
    ) -> Optional[float]:
        """Route one candidate: dedupe, prune, defer or evaluate.

        ``lower_bound_pow`` is the index-level lower bound (p-th power)
        that admitted the candidate — MDMWP for HLMJ, MSEQ-distance for
        the ranked-union engines, the join-state score for PSM.

        Returns the candidate's DTW distance (p-th power) when it was
        evaluated immediately and survived the LB_Keogh cascade; ``None``
        when it was a duplicate, pruned, deferred, or LB_Keogh-killed.
        The ``Φ`` operator uses the returned distance to feed its local
        candidate queue (``candMinQ_Φ`` in the paper).
        """
        key = (sid, start)
        if key in self._seen:
            self.stats.duplicates_suppressed += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter("submit.duplicates").inc()
            return None
        self._seen.add(key)
        if lower_bound_pow > self.threshold_pow:
            self.stats.pruned_by_lower_bound += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter("submit.lb_pruned").inc()
            return None
        if self._deferred is not None:
            self._deferred.add(
                CandidateRequest(
                    sid=sid,
                    start=start,
                    length=self.query_length,
                    lower_bound=lower_bound_pow,
                )
            )
            if self._deferred.is_full:
                self.flush()
            return None
        return self._evaluate(sid, start)

    def _evaluate(self, sid: int, start: int) -> Optional[float]:
        """Retrieve one candidate and run the LB_Keogh -> DTW cascade."""
        if self.tracer.enabled:
            with self.tracer.span("candidate.verify", sid=sid, start=start):
                return self._evaluate_now(sid, start)
        return self._evaluate_now(sid, start)

    def _evaluate_now(self, sid: int, start: int) -> Optional[float]:
        try:
            values = self._index.store.get_subsequence(
                sid, start, self.query_length
            )
        except StorageError as error:
            self.fault(error, candidate=(sid, start))
            return None
        self.stats.candidates += 1
        if self.norm is not None:
            # One transform serves both LB_Keogh and DTW below — the
            # arithmetic of lb_keogh_znorm_pow, applied once, so bound
            # and verification see the identical normalized array.
            mu, sigma = self.norm.stats(sid, start)
            values = znormalize(values, mu, sigma)
        threshold_pow = self.threshold_pow
        self.stats.lb_keogh_computations += 1
        keogh_pow = lb_keogh_pow(self._envelope, values, self._config.p)
        if keogh_pow > threshold_pow:
            self.stats.pruned_by_lb_keogh += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter("verify.lb_keogh_pruned").inc()
            return None
        self.stats.dtw_computations += 1
        distance_pow = dtw_pow(
            values,
            self._query,
            self._config.rho,
            p=self._config.p,
            threshold_pow=threshold_pow,
        )
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("verify.dtw").inc()
            # The early-abandoning kernel reports "above threshold"
            # rather than an exact distance once it abandons; that
            # outcome is the paper's DTW saving, so count it.
            if distance_pow > threshold_pow:
                metrics.counter("verify.dtw_abandoned").inc()
        self.collector.offer_pow(distance_pow, sid, start)
        return distance_pow

    def flush(self) -> None:
        """Drain the deferred buffer (storage order, threshold re-check).

        Checkpoints between retrievals; when an interrupt lands
        mid-flush, the not-yet-retrieved requests are requeued before
        the signal propagates so their lower bounds still feed
        :meth:`pending_lower_bound_pow` (and thus the certificate).
        """
        if self._deferred is None or len(self._deferred) == 0:
            return
        self.stats.deferred_flushes += 1
        if self.tracer.enabled:
            with self.tracer.span("deferred.drain", pending=len(self._deferred)):
                self._drain_now()
        else:
            self._drain_now()

    def _drain_now(self) -> None:
        assert self._deferred is not None
        requests = list(self._deferred.drain(threshold=self.threshold_pow))
        if self.tracer.enabled:
            self.tracer.metrics.histogram("deferred.batch_size").observe(
                len(requests)
            )
        for position, request in enumerate(requests):
            try:
                self.control.checkpoint()
            except ExecutionInterrupted:
                self._deferred.requeue(requests[position:])
                raise
            self._evaluate(request.sid, request.start)

    def pending_lower_bound_pow(self) -> float:
        """Smallest lower bound (p-th power) among deferred requests.

        ``inf`` when nothing is pending.  Folded into the exactness
        certificate: deferred candidates were admitted but never
        retrieved, so they count as unexamined work.
        """
        if self._deferred is None:
            return math.inf
        return self._deferred.min_pending_lower_bound()

    def finalize(self) -> None:
        """Flush any remaining deferred requests before returning results."""
        self.flush()


class Engine(abc.ABC):
    """Base class: owns the index and the search template.

    Subclasses implement :meth:`_run`, which drives their traversal and
    submits candidates through the provided evaluator.
    """

    #: Short name used in benchmark tables ("HLMJ", "RU-COST", ...).
    name: str = "engine"

    def __init__(self, index: DualMatchIndex) -> None:
        self.index = index

    def search(
        self,
        query: Sequence[float],
        config: EngineConfig,
        control: Optional[ExecutionControl] = None,
    ) -> SearchResult:
        """Run one top-k query and return matches plus counters.

        With a limited ``control``, an interrupt at any cooperative
        checkpoint yields a :class:`PartialResult` (best-k-so-far plus
        an exactness certificate) instead of an exception.

        When the control plane carries an enabled tracer, the whole
        query runs under an ``engine.search`` root span and the result
        carries a :class:`~repro.obs.profile.QueryProfile`; otherwise
        the traced wrapper is skipped entirely and behaviour (every
        counter included) is identical to the un-instrumented engine.
        """
        if control is None:
            control = ExecutionControl()
        tracer = control.tracer
        if not tracer.enabled:
            return self._execute(query, config, control)
        metrics_before = tracer.metrics.snapshot()
        with tracer.span(
            "engine.search", engine=self.name, k=config.k, rho=config.rho
        ) as root:
            result = self._execute(query, config, control)
        if isinstance(root, Span):
            result.profile = QueryProfile(
                span=root,
                metrics=tracer.metrics.snapshot().delta(metrics_before),
                stats=result.stats,
                fault_report=result.fault_report,
            )
        return result

    def _execute(
        self,
        query: Sequence[float],
        config: EngineConfig,
        control: ExecutionControl,
    ) -> SearchResult:
        window_set = QueryWindowSet.from_query(
            query,
            omega=self.index.omega,
            features=self.index.features,
            rho=config.rho,
            p=config.p,
            data_stride=getattr(self.index, "data_stride", None),
            normalize=config.normalize,
        )
        # Candidate stats are priced before I/O accounting starts: the
        # context reads through the zero-copy peek path, so NUM_IO still
        # counts exactly the pages the engine itself faults in.
        norm: Optional[NormalizationContext] = None
        if config.normalize:
            norm = NormalizationContext(
                self.index.store, window_set.length
            )
        recorder = StatsRecorder(
            self.index.store.pager, self.index.store.buffer
        ).start()
        pager_stats = self.index.store.pager.stats
        reads_at_start = pager_stats.physical_reads
        control.bind(
            recorder.stats,
            lambda: pager_stats.physical_reads - reads_at_start,
        )
        evaluator = CandidateEvaluator(
            index=self.index,
            envelope=window_set.envelope,
            query=window_set.query,
            config=config,
            stats=recorder.stats,
            control=control,
            norm=norm,
        )
        tracer = control.tracer
        interrupt: Optional[ExecutionInterrupted] = None
        try:
            if tracer.enabled:
                with tracer.span("engine.run"):
                    self._run(window_set, evaluator, config)
                with tracer.span("engine.finalize"):
                    evaluator.finalize()
            else:
                self._run(window_set, evaluator, config)
                evaluator.finalize()
        except ExecutionInterrupted as signal:
            interrupt = signal
        stats = recorder.finish()
        stats.checkpoints = control.checkpoints
        report = evaluator.fault_report
        matches = evaluator.collector.matches(window_set.length)
        if interrupt is None:
            return SearchResult(
                matches=matches,
                stats=stats,
                degraded=bool(report),
                fault_report=report if report else None,
            )
        stats.interrupted = 1
        # Everything *unexamined* is bounded below by the engine's last
        # reported frontier; deferred-but-unretrieved candidates are
        # bounded by their admitted lower bounds.  The min of the two is
        # the tightest sound certificate.
        certificate_pow = min(
            control.frontier_pow, evaluator.pending_lower_bound_pow()
        )
        return PartialResult(
            matches=matches,
            stats=stats,
            degraded=bool(report),
            fault_report=report if report else None,
            reason=interrupt.reason,
            certificate=certificate_from_pow(certificate_pow, config.p),
        )

    @abc.abstractmethod
    def _run(
        self,
        window_set: QueryWindowSet,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        """Traverse the index / data and submit candidates."""
