"""SeqScan: the sequential-scan baseline of Experiment 1.

Reads every data page in file order, slides the query envelope across
every offset, and filters with ``LB_Keogh`` before computing banded DTW —
the paper notes that "SeqScan exploits LB_Keogh before DTW computations".
Its candidate and page-access counts are constant in ``k``, the window
size, and the buffer size, which is exactly the behaviour Figures 11–16
show for the SeqScan series.

``LB_Keogh`` over all offsets is evaluated in vectorised blocks over a
sliding-window view; DTW still runs per surviving offset with early
abandoning against ``delta_cur``.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import dtw_pow
from repro.core.lower_bounds import lb_keogh_pow_batch
from repro.core.windows import QueryWindowSet
from repro.engines.base import CandidateEvaluator, Engine, EngineConfig
from repro.exceptions import StorageError
from repro.obs.tracer import Tracer

#: Offsets processed per vectorised LB_Keogh block (~3 MB at Len(Q)=384).
_BLOCK = 1024


class SeqScanEngine(Engine):
    """Full scan with LB_Keogh pre-filtering."""

    name = "SeqScan"

    def _run(
        self,
        window_set: QueryWindowSet,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        query = window_set.query
        length = window_set.length
        store = self.index.store
        stats = evaluator.stats
        collector = evaluator.collector

        budget = evaluator.control
        tracer = evaluator.tracer
        for sid in store.sequence_ids():
            # A scan has no index-level bound on what it has not read
            # yet, so its certificate frontier stays at the trivial 0.0:
            # an interrupted SeqScan promises nothing beyond what it
            # already evaluated.
            budget.checkpoint()
            if store.length(sid) < length:
                continue
            if tracer.enabled:
                with tracer.span("scan.sequence", sid=sid):
                    self._scan_sequence(
                        sid, window_set, evaluator, config
                    )
            else:
                self._scan_sequence(sid, window_set, evaluator, config)

    def _scan_sequence(
        self,
        sid: int,
        window_set: QueryWindowSet,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        """Scan one sequence: block LB_Keogh filter, then per-offset DTW."""
        query = window_set.query
        length = window_set.length
        store = self.index.store
        stats = evaluator.stats
        collector = evaluator.collector
        budget = evaluator.control
        tracer = evaluator.tracer
        try:
            values = store.read_full_sequence(sid)
        except StorageError as error:
            # Degrade: the whole sequence is unreadable past the
            # failed page; skip it and scan the rest.
            evaluator.fault(error, candidate=(sid, -1))
            return
        offsets = values.size - length + 1
        windows = np.lib.stride_tricks.sliding_window_view(values, length)
        norm = evaluator.norm
        if norm is not None:
            all_mus, all_sigmas = norm.stats_array(
                sid, np.arange(offsets, dtype=np.int64)
            )
        for block_start in range(0, offsets, _BLOCK):
            budget.checkpoint()
            block = windows[block_start : block_start + _BLOCK]
            if norm is not None:
                # Same elementwise (x - mu) / sigma as the evaluator's
                # scalar path, so SeqScan distances stay bit-identical
                # to the index engines' on common candidates.
                mus = all_mus[block_start : block_start + _BLOCK]
                sigmas = all_sigmas[block_start : block_start + _BLOCK]
                block = (block - mus[:, None]) / sigmas[:, None]
            if tracer.enabled:
                with tracer.span("engine.lb_batch", n=int(block.shape[0])):
                    keogh_pows = lb_keogh_pow_batch(
                        window_set.envelope, block, config.p
                    )
                tracer.metrics.histogram("lb.batch_size").observe(
                    block.shape[0]
                )
            else:
                keogh_pows = lb_keogh_pow_batch(
                    window_set.envelope, block, config.p
                )
            stats.candidates += block.shape[0]
            stats.lb_keogh_computations += block.shape[0]
            for row, keogh_pow in enumerate(keogh_pows):
                threshold_pow = collector.threshold_pow
                if keogh_pow > threshold_pow:
                    stats.pruned_by_lb_keogh += 1
                    continue
                stats.dtw_computations += 1
                if tracer.enabled:
                    with tracer.span(
                        "candidate.verify", sid=sid, start=block_start + row
                    ):
                        distance_pow = self._verify_offset(
                            block[row], query, config, threshold_pow, tracer
                        )
                else:
                    distance_pow = dtw_pow(
                        block[row],
                        query,
                        config.rho,
                        p=config.p,
                        threshold_pow=threshold_pow,
                    )
                collector.offer_pow(distance_pow, sid, block_start + row)

    @staticmethod
    def _verify_offset(
        values: np.ndarray,
        query: np.ndarray,
        config: EngineConfig,
        threshold_pow: float,
        tracer: Tracer,
    ) -> float:
        distance_pow = dtw_pow(
            values,
            query,
            config.rho,
            p=config.p,
            threshold_pow=threshold_pow,
        )
        metrics = tracer.metrics
        metrics.counter("verify.dtw").inc()
        if distance_pow > threshold_pow:
            metrics.counter("verify.dtw_abandoned").inc()
        return distance_pow
