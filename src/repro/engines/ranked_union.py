"""The ranked-union framework — the paper's contribution (Section 3).

A ranked subsequence matching query is evaluated as a **ranked union**
over ``ω`` subqueries, one per matching subsequence equivalence class
(MSEQ).  Two operators follow the extended iterator model:

* :class:`PhiOperator` (``Φ_i``) owns one priority queue per query
  window of its class and produces candidates for that class.  Every
  consumption step yields either a fully-evaluated candidate (TUPLE) or
  a refreshed **MSEQ-distance** lower bound (LB) — the sum, in p-th
  power space, of the per-queue frontier distances (Definition 6,
  admissible by Lemma 4).
* :class:`UnionOperator` (``∪_r``) repeatedly advances the child with
  the smallest current lower bound (optimal by Lemma 6) and stops as
  soon as ``delta_cur`` is at most every child's bound — the paper's
  termination rule.

:class:`RankedUnionEngine` drives the operator tree to exhaustion of the
top-k result.  Its ``scheduling`` parameter selects the
``SelectPriorityQueue()`` policy: ``"max-delta"`` is the paper's **RU**,
``"cost-aware"`` is **RU-COST**.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional

from repro.core.windows import (
    QueryWindowSet,
    candidate_in_bounds,
    candidate_start,
)
from repro.engines.base import CandidateEvaluator, Engine, EngineConfig
from repro.engines.cost_density import CostDensityConfig
from repro.engines.operators import (
    ExtendedIterator,
    RankedTuple,
    Status,
    StepResult,
)
from repro.engines.queues import NODE, WindowQueue
from repro.engines.scheduling import make_strategy
from repro.exceptions import ConfigurationError
from repro.index.builder import DualMatchIndex
from repro.index.rstar import LeafRecord

_INF = math.inf


def _cap_pow(threshold_pow: float, sibling_pow: float) -> float:
    """Push-time pruning headroom: ``delta^p`` minus the sibling frontier.

    Handles the infinities explicitly: with no threshold yet everything
    is admitted; with an exhausted sibling queue nothing new can join the
    top-k, so everything is pruned.
    """
    if sibling_pow == _INF:
        return -_INF
    if threshold_pow == _INF:
        return _INF
    return threshold_pow - sibling_pow


class PhiOperator(ExtendedIterator):
    """``Φ_i`` — the ranked subsequence matching subquery operator."""

    def __init__(
        self,
        class_index: int,
        window_set: QueryWindowSet,
        index: DualMatchIndex,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
        scheduling: str,
        cost_config: Optional[CostDensityConfig] = None,
    ) -> None:
        self.class_index = class_index
        self._index = index
        self._evaluator = evaluator
        self._config = config
        self._query_length = window_set.length
        norm = evaluator.norm
        self.queues = [
            WindowQueue(
                window=window,
                tree=index.tree,
                seg_len=index.seg_len,
                p=config.p,
                stats=evaluator.stats,
                on_fault=evaluator.fault,
                norm=(
                    None
                    if norm is None
                    else norm.for_window(
                        window.sliding_offset, index.data_stride
                    )
                ),
            )
            for window in window_set.classes[class_index]
        ]
        #: ``candMinQ_Φ``: fully evaluated candidates awaiting emission,
        #: as (dtw_pow, sid, start).
        self._cand_heap: List[tuple] = []
        self._strategy = make_strategy(
            scheduling,
            store=index.store,
            query_length=window_set.length,
            omega=index.data_stride,
            blocking_factor=index.tree.blocking_factor,
            p=config.p,
            cost_config=cost_config,
            cap_for=self._cap_for,
        )

    # -- lower bounds ---------------------------------------------------

    def frontier_pow(self) -> float:
        """``MSEQ-dist_next``: sum of all queue tops (Definition 6).

        Infinite when any queue has run dry — every candidate of this
        class then has already been generated, pruned, or provably
        excluded, so no *new* candidate can appear.
        """
        total = 0.0
        for queue in self.queues:
            top = queue.top_pow()
            if top == _INF:
                return _INF
            total += top
        return total

    def sibling_sum_pow(self, exclude: WindowQueue) -> float:
        """Sum of the *other* queues' tops — the Lemma 4 sibling terms."""
        total = 0.0
        for queue in self.queues:
            if queue is exclude:
                continue
            top = queue.top_pow()
            if top == _INF:
                return _INF
            total += top
        return total

    def current_lower_bound_pow(self) -> float:
        """``CLB_i``: cheapest thing this operator can still produce."""
        frontier = self.frontier_pow()
        if self._cand_heap:
            return min(self._cand_heap[0][0], frontier)
        return frontier

    def _cap_for(self, queue: WindowQueue) -> float:
        return _cap_pow(
            self._evaluator.threshold_pow, self.sibling_sum_pow(queue)
        )

    # -- iterator protocol ------------------------------------------------

    def get_next(self) -> StepResult:
        frontier = self.frontier_pow()
        if self._cand_heap and self._cand_heap[0][0] <= frontier:
            return Status.TUPLE, self._pop_candidate()
        if frontier == _INF:
            if self._cand_heap:
                return Status.TUPLE, self._pop_candidate()
            return Status.EOR, None

        queue = self._strategy.select(self.queues)
        if queue.is_empty:
            # A cost-aware expansion may have pruned the queue empty
            # between selection bookkeeping and the pop.
            return Status.LB, self.current_lower_bound_pow()
        dist_pow, _seq, kind, payload, _far = queue.pop()
        self._evaluator.stats.heap_pops += 1
        tracer = self._evaluator.tracer
        if tracer.enabled:
            with tracer.span(
                "engine.heap_pop",
                cls=self.class_index,
                kind="node" if kind == NODE else "leaf",
            ):
                self._advance_popped(queue, dist_pow, kind, payload)
        else:
            self._advance_popped(queue, dist_pow, kind, payload)
        self._strategy.after_pop(queue)
        return Status.LB, self.current_lower_bound_pow()

    def _advance_popped(
        self, queue: WindowQueue, dist_pow: float, kind: int, payload: object
    ) -> None:
        """Process one popped entry: expand a node or consume a leaf."""
        sibling_pow = self.sibling_sum_pow(queue)
        if kind == NODE:
            queue.expand_node(
                payload,  # type: ignore[arg-type]
                _cap_pow(self._evaluator.threshold_pow, sibling_pow),
            )
        else:
            self._consume_leaf_pair(
                queue,
                dist_pow,
                sibling_pow,
                payload,  # type: ignore[arg-type]
            )

    def _consume_leaf_pair(
        self,
        queue: WindowQueue,
        dist_pow: float,
        sibling_pow: float,
        record: LeafRecord,
    ) -> None:
        start = candidate_start(
            record.window_index,
            queue.window.sliding_offset,
            self._index.data_stride,
        )
        if not candidate_in_bounds(
            start,
            self._query_length,
            self._index.store.length(record.sid),
        ):
            return
        bound_pow = (
            _INF if sibling_pow == _INF else dist_pow + sibling_pow
        )
        result_pow = self._evaluator.submit(record.sid, start, bound_pow)
        if (
            result_pow is not None
            and result_pow <= self._evaluator.threshold_pow
        ):
            heapq.heappush(
                self._cand_heap, (result_pow, record.sid, start)
            )

    def _pop_candidate(self) -> RankedTuple:
        distance_pow, sid, start = heapq.heappop(self._cand_heap)
        return RankedTuple(distance_pow=distance_pow, sid=sid, start=start)

    def drain_candidates(self) -> List[tuple]:
        """Hand over all pending evaluated candidates (stop-time flush).

        When ``∪_r`` reaches its termination condition, candidates whose
        distance ties the current ``delta_cur`` can still sit in this
        operator's ``candMinQ``; the union pulls them so emission stays
        complete.
        """
        pending, self._cand_heap = self._cand_heap, []
        return pending


class UnionOperator(ExtendedIterator):
    """``∪_r`` — the multi-way ranked union operator."""

    def __init__(
        self, children: List[PhiOperator], evaluator: CandidateEvaluator
    ) -> None:
        self._children = children
        self._evaluator = evaluator
        #: ``CLB`` per child; infinite marks EOR.
        self._clbs = [0.0] * len(children)
        self._dead = [False] * len(children)
        #: ``candMinQ_∪r``: tuples received from children, by distance.
        self._cand_heap: List[tuple] = []
        self._children_drained = False

    def _min_alive_clb(self) -> float:
        alive = [
            clb
            for clb, dead in zip(self._clbs, self._dead)
            if not dead
        ]
        return min(alive) if alive else _INF

    def frontier_pow(self) -> float:
        """Lower bound on any candidate not yet *generated* by a child.

        The min over alive children of their MSEQ-distance frontiers
        (Lemma 4 makes each admissible for its class).  Evaluated
        candidates parked in ``candMinQ`` heaps are excluded on purpose:
        they already sit in the shared collector, so they are examined
        work, not unexamined work — this is what makes the value usable
        as a :class:`~repro.engines.base.PartialResult` certificate.
        """
        alive = [
            child.frontier_pow()
            for child, dead in zip(self._children, self._dead)
            if not dead
        ]
        return min(alive) if alive else _INF

    def get_next(self) -> StepResult:
        control = self._evaluator.control
        while True:
            # One get_next() call can advance children arbitrarily many
            # times before a tuple settles, so the union checkpoints its
            # own loop instead of relying on the engine's outer loop.
            # Computing the exact frontier costs O(classes x queues);
            # skip it when no limit could ever trip.
            if control.limited:
                control.checkpoint(self.frontier_pow())
            else:
                control.checkpoint()
            min_clb = self._min_alive_clb()
            collector = self._evaluator.collector
            stop = min_clb == _INF or (
                collector.is_full and min_clb >= collector.threshold_pow
            )
            if stop and not self._children_drained:
                # Children may still hold evaluated candidates whose
                # distance ties delta_cur; flush them before ending.
                self._children_drained = True
                for child in self._children:
                    for entry in child.drain_candidates():
                        heapq.heappush(self._cand_heap, entry)
            if self._cand_heap and (
                self._cand_heap[0][0] <= min_clb or stop
            ):
                distance_pow, sid, start = heapq.heappop(self._cand_heap)
                return Status.TUPLE, RankedTuple(
                    distance_pow=distance_pow, sid=sid, start=start
                )
            if stop:
                return Status.EOR, None

            child_index = min(
                (
                    index
                    for index in range(len(self._children))
                    if not self._dead[index]
                ),
                key=lambda index: self._clbs[index],
            )
            child = self._children[child_index]
            status, payload = child.get_next()
            if status == Status.TUPLE:
                heapq.heappush(
                    self._cand_heap,
                    (payload.distance_pow, payload.sid, payload.start),
                )
                self._clbs[child_index] = child.current_lower_bound_pow()
            elif status == Status.LB:
                self._clbs[child_index] = payload
            else:
                self._dead[child_index] = True
                self._clbs[child_index] = _INF


class RankedUnionEngine(Engine):
    """RU / RU-COST: ranked union over MSEQ subqueries.

    Parameters
    ----------
    index:
        The DualMatch index.
    scheduling:
        ``SelectPriorityQueue()`` policy: ``"max-delta"`` (RU, default),
        ``"cost-aware"`` (RU-COST), ``"global-min"``, ``"round-robin"``.
    cost_config:
        RU-COST tuning (lookahead, alpha/beta, selective expansion).
    """

    def __init__(
        self,
        index: DualMatchIndex,
        scheduling: str = "max-delta",
        cost_config: Optional[CostDensityConfig] = None,
    ) -> None:
        super().__init__(index)
        if scheduling not in (
            "max-delta",
            "cost-aware",
            "global-min",
            "round-robin",
        ):
            raise ConfigurationError(
                f"unknown scheduling policy {scheduling!r}"
            )
        self.scheduling = scheduling
        self.cost_config = cost_config
        self.name = "RU-COST" if scheduling == "cost-aware" else "RU"
        if scheduling in ("global-min", "round-robin"):
            self.name = f"RU[{scheduling}]"

    def _run(
        self,
        window_set: QueryWindowSet,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        children = [
            PhiOperator(
                class_index=class_index,
                window_set=window_set,
                index=self.index,
                evaluator=evaluator,
                config=config,
                scheduling=self.scheduling,
                cost_config=self.cost_config,
            )
            for class_index in range(window_set.num_classes)
            if window_set.classes[class_index]
        ]
        union = UnionOperator(children, evaluator)
        union.start()
        budget = evaluator.control
        while True:
            budget.checkpoint()
            status, _payload = union.get_next()
            # Emitted tuples are already in the shared collector; the
            # engine only needs to drive the operator tree to EOR.
            if status == Status.EOR:
                break
        union.end()
