"""Range (epsilon) subsequence matching over the DualMatch index.

The paper's lineage — FRM [7], DualMatch [17], GeneralMatch [16] —
solves *range* subsequence matching: find every subsequence within
distance ``epsilon`` of the query.  The ranked engines subsume it in
principle, but a direct range engine is both simpler and cheaper, and
rounds the library out for users who want threshold queries.

Correctness under banded DTW follows the same chain as ranked matching:
if ``DTW_rho(Q, S[a:b]) <= epsilon`` then *every* matching window pair
satisfies ``LB_PAA(P(E(q_i)), P(s_m)) <= epsilon`` (a single term of
Lemma 4's sum cannot exceed the whole).  A candidate at start ``s``
aligns disjoint data windows with the sliding query windows at offsets
congruent to ``-s`` modulo ``omega``, so — exactly as in DualMatch —
**every sliding query window** issues one index range query with radius
``epsilon``; together they cover every candidate offset (Lemma 3).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.distance import dtw_pow
from repro.core.lower_bounds import lb_keogh_pow, lb_paa_pow, mindist_pow
from repro.core.metrics import StatsRecorder
from repro.core.results import Match
from repro.core.windows import (
    QueryWindowSet,
    candidate_in_bounds,
    candidate_start,
)
from repro.engines.base import SearchResult
from repro.exceptions import QueryError
from repro.index.builder import DualMatchIndex
from repro.storage.sequences import SequenceStore


class RangeSearchEngine:
    """Exact epsilon-matching via window-level index range queries."""

    name = "RangeSearch"

    def __init__(self, index: DualMatchIndex) -> None:
        self.index = index

    def search(
        self,
        query: Sequence[float],
        epsilon: float,
        rho: int,
        p: float = 2.0,
    ) -> SearchResult:
        """All subsequences with ``DTW_rho(Q, S) <= epsilon``.

        Results are returned best-first, like the ranked engines.
        """
        if epsilon < 0:
            raise QueryError(f"epsilon must be >= 0, got {epsilon}")
        window_set = QueryWindowSet.from_query(
            query,
            omega=self.index.omega,
            features=self.index.features,
            rho=rho,
            p=p,
            data_stride=self.index.data_stride,
        )
        recorder = StatsRecorder(
            self.index.store.pager, self.index.store.buffer
        ).start()
        stats = recorder.stats
        epsilon_pow = epsilon**p
        seg_len = self.index.seg_len
        tree = self.index.tree
        store = self.index.store

        matches: List[Match] = []
        seen = set()
        # Every sliding query window issues one range probe (DualMatch).
        for window in window_set.windows:
            stack = [tree.root_page]
            while stack:
                node = tree.read_node(stack.pop())
                stats.node_expansions += 1
                for entry in node.entries:
                    if not node.is_leaf:
                        gap_pow = mindist_pow(
                            window.paa_lower,
                            window.paa_upper,
                            entry.low,
                            entry.high,
                            seg_len,
                            p,
                        )
                        if gap_pow <= epsilon_pow:
                            stack.append(entry.child_page)
                        continue
                    gap_pow = lb_paa_pow(
                        window.paa_lower,
                        window.paa_upper,
                        entry.low,
                        seg_len,
                        p,
                    )
                    if gap_pow > epsilon_pow:
                        continue
                    record = entry.record
                    start = candidate_start(
                        record.window_index,
                        window.sliding_offset,
                        self.index.data_stride,
                    )
                    key = (record.sid, start)
                    if key in seen:
                        stats.duplicates_suppressed += 1
                        continue
                    seen.add(key)
                    if not candidate_in_bounds(
                        start,
                        window_set.length,
                        store.length(record.sid),
                    ):
                        continue
                    values = store.get_subsequence(
                        record.sid, start, window_set.length
                    )
                    stats.candidates += 1
                    stats.lb_keogh_computations += 1
                    if (
                        lb_keogh_pow(window_set.envelope, values, p)
                        > epsilon_pow
                    ):
                        stats.pruned_by_lb_keogh += 1
                        continue
                    stats.dtw_computations += 1
                    distance_pow = dtw_pow(
                        values,
                        window_set.query,
                        rho,
                        p=p,
                        threshold_pow=epsilon_pow,
                    )
                    if distance_pow <= epsilon_pow:
                        matches.append(
                            Match(
                                distance=distance_pow ** (1.0 / p),
                                sid=record.sid,
                                start=start,
                                length=window_set.length,
                            )
                        )
        matches.sort()
        return SearchResult(matches=matches, stats=recorder.finish())


def brute_force_range(
    store: SequenceStore,
    query: Sequence[float],
    epsilon: float,
    rho: int,
    p: float = 2.0,
) -> List[Match]:
    """Exhaustive reference for range matching (tests only)."""
    array = np.ascontiguousarray(query, dtype=np.float64)
    epsilon_pow = epsilon**p
    results: List[Match] = []
    for sid, values in store.iter_sequences():
        for start in range(values.size - array.size + 1):
            distance_pow = dtw_pow(
                values[start : start + array.size], array, rho, p=p
            )
            if distance_pow <= epsilon_pow:
                results.append(
                    Match(
                        distance=distance_pow ** (1.0 / p),
                        sid=sid,
                        start=start,
                        length=int(array.size),
                    )
                )
    results.sort()
    return results
