"""Range (epsilon) subsequence matching over the DualMatch index.

The paper's lineage — FRM [7], DualMatch [17], GeneralMatch [16] —
solves *range* subsequence matching: find every subsequence within
distance ``epsilon`` of the query.  The ranked engines subsume it in
principle, but a direct range engine is both simpler and cheaper, and
rounds the library out for users who want threshold queries.

Correctness under banded DTW follows the same chain as ranked matching:
if ``DTW_rho(Q, S[a:b]) <= epsilon`` then *every* matching window pair
satisfies ``LB_PAA(P(E(q_i)), P(s_m)) <= epsilon`` (a single term of
Lemma 4's sum cannot exceed the whole).  A candidate at start ``s``
aligns disjoint data windows with the sliding query windows at offsets
congruent to ``-s`` modulo ``omega``, so — exactly as in DualMatch —
**every sliding query window** issues one index range query with radius
``epsilon``; together they cover every candidate offset (Lemma 3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.control import ExecutionControl
from repro.core.distance import dtw_pow
from repro.core.lower_bounds import (
    batch_lower_bounds,
    batch_lower_bounds_znorm,
    lb_keogh_pow,
    lb_paa_pow_batch,
    lb_paa_znorm_pow_batch,
)
from repro.core.metrics import QueryStats, StatsRecorder
from repro.core.normalize import (
    NormalizationContext,
    WindowNormalizer,
    znormalize,
)
from repro.core.results import Match
from repro.core.windows import (
    QueryWindow,
    QueryWindowSet,
    candidate_in_bounds,
    candidate_start,
)
from repro.engines.base import FaultReport, PartialResult, SearchResult
from repro.exceptions import (
    ConfigurationError,
    ExecutionInterrupted,
    QueryError,
    StorageError,
)
from repro.index.builder import DualMatchIndex
from repro.index.rstar import RStarNode
from repro.obs import QueryProfile
from repro.obs.tracer import Span
from repro.storage.sequences import SequenceStore


class RangeSearchEngine:
    """Exact epsilon-matching via window-level index range queries."""

    name = "RangeSearch"

    def __init__(self, index: DualMatchIndex) -> None:
        self.index = index

    def search(
        self,
        query: Sequence[float],
        epsilon: float,
        rho: int,
        p: float = 2.0,
        on_fault: str = "raise",
        control: Optional[ExecutionControl] = None,
        normalize: bool = False,
    ) -> SearchResult:
        """All subsequences with ``DTW_rho(Q, S) <= epsilon``.

        With ``normalize`` both the query and every candidate window are
        z-normalized (``epsilon`` then thresholds the normalized-space
        distance), using the same stats plane as the ranked engines.

        Results are returned best-first, like the ranked engines, with
        the same fault policy (``on_fault="degrade"`` skips unreadable
        subtrees and candidates, flags the result, and attaches a
        :class:`~repro.engines.base.FaultReport`) and the same
        cooperative budget/deadline/cancellation checkpoints.  Because a
        range probe visits the tree in arbitrary stack order, an
        interrupted range search certifies nothing beyond what it
        already verified: the partial result's certificate is 0.
        """
        if epsilon < 0:
            raise QueryError(f"epsilon must be >= 0, got {epsilon}")
        if on_fault not in ("raise", "degrade"):
            raise ConfigurationError(
                f"on_fault must be 'raise' or 'degrade', got {on_fault!r}"
            )
        window_set = QueryWindowSet.from_query(
            query,
            omega=self.index.omega,
            features=self.index.features,
            rho=rho,
            p=p,
            data_stride=self.index.data_stride,
            normalize=normalize,
        )
        norm: Optional[NormalizationContext] = None
        if normalize:
            norm = NormalizationContext(
                self.index.store, window_set.length
            )
        if control is None:
            control = ExecutionControl()
        tracer = control.tracer
        if not tracer.enabled:
            return self._execute(
                window_set, epsilon, rho, p, on_fault, control, norm
            )
        metrics_before = tracer.metrics.snapshot()
        with tracer.span(
            "engine.search", engine=self.name, epsilon=epsilon, rho=rho
        ) as root:
            result = self._execute(
                window_set, epsilon, rho, p, on_fault, control, norm
            )
        if isinstance(root, Span):
            result.profile = QueryProfile(
                span=root,
                metrics=tracer.metrics.snapshot().delta(metrics_before),
                stats=result.stats,
                fault_report=result.fault_report,
            )
        return result

    def _execute(
        self,
        window_set: QueryWindowSet,
        epsilon: float,
        rho: int,
        p: float,
        on_fault: str,
        control: ExecutionControl,
        norm: Optional[NormalizationContext] = None,
    ) -> SearchResult:
        tracer = control.tracer
        recorder = StatsRecorder(
            self.index.store.pager, self.index.store.buffer
        ).start()
        stats = recorder.stats
        pager_stats = self.index.store.pager.stats
        reads_at_start = pager_stats.physical_reads
        control.bind(
            stats, lambda: pager_stats.physical_reads - reads_at_start
        )
        report = FaultReport()
        matches: List[Match] = []
        seen: Set[Tuple[int, int]] = set()
        budget = control
        interrupt: Optional[ExecutionInterrupted] = None
        try:
            # Every sliding query window issues one range probe
            # (DualMatch).
            for window in window_set.windows:
                budget.checkpoint()
                if tracer.enabled:
                    with tracer.span(
                        "range.window", offset=window.sliding_offset
                    ):
                        self._probe_window(
                            window,
                            window_set,
                            epsilon**p,
                            p,
                            rho,
                            stats,
                            budget,
                            on_fault,
                            report,
                            seen,
                            matches,
                            norm,
                        )
                else:
                    self._probe_window(
                        window,
                        window_set,
                        epsilon**p,
                        p,
                        rho,
                        stats,
                        budget,
                        on_fault,
                        report,
                        seen,
                        matches,
                        norm,
                    )
        except ExecutionInterrupted as signal:
            interrupt = signal
        matches.sort()
        final = recorder.finish()
        final.checkpoints = control.checkpoints
        if interrupt is None:
            return SearchResult(
                matches=matches,
                stats=final,
                degraded=bool(report),
                fault_report=report if report else None,
            )
        final.interrupted = 1
        return PartialResult(
            matches=matches,
            stats=final,
            degraded=bool(report),
            fault_report=report if report else None,
            reason=interrupt.reason,
            certificate=0.0,
        )

    def _probe_window(
        self,
        window: QueryWindow,
        window_set: QueryWindowSet,
        epsilon_pow: float,
        p: float,
        rho: int,
        stats: QueryStats,
        budget: ExecutionControl,
        on_fault: str,
        report: FaultReport,
        seen: Set[Tuple[int, int]],
        matches: List[Match],
        norm: Optional[NormalizationContext] = None,
    ) -> None:
        seg_len = self.index.seg_len
        tree = self.index.tree
        store = self.index.store
        tracer = budget.tracer
        window_norm: Optional[WindowNormalizer] = None
        if norm is not None:
            window_norm = norm.for_window(
                window.sliding_offset, self.index.data_stride
            )
        stack = [tree.root_page]
        while stack:
            budget.checkpoint()
            page_id = stack.pop()
            try:
                node = tree.read_node(page_id)
            except StorageError as error:
                if on_fault == "raise":
                    raise
                stats.faults_skipped += 1
                report.record(error, page_id=page_id)
                continue
            stats.node_expansions += 1
            entries = node.entries
            if not entries:
                continue
            # One batched kernel call scores every entry of the node;
            # the loop below keeps the original visit order.
            if not node.is_leaf:
                if tracer.enabled:
                    with tracer.span(
                        "engine.lb_batch", n=len(entries), leaf=False
                    ):
                        gap_pows = self._score_internal(
                            node, window, window_norm, seg_len, p
                        )
                    tracer.metrics.histogram("lb.batch_size").observe(
                        len(entries)
                    )
                else:
                    gap_pows = self._score_internal(
                        node, window, window_norm, seg_len, p
                    )
                for entry, gap_pow in zip(entries, gap_pows.tolist()):
                    if gap_pow <= epsilon_pow:
                        stack.append(entry.child_page)
                continue
            if tracer.enabled:
                with tracer.span(
                    "engine.lb_batch", n=len(entries), leaf=True
                ):
                    gap_pows = self._score_leaf(
                        node, window, window_norm, seg_len, p
                    )
                tracer.metrics.histogram("lb.batch_size").observe(
                    len(entries)
                )
            else:
                gap_pows = self._score_leaf(
                    node, window, window_norm, seg_len, p
                )
            for entry, gap_pow in zip(entries, gap_pows.tolist()):
                if gap_pow > epsilon_pow:
                    continue
                record = entry.record
                start = candidate_start(
                    record.window_index,
                    window.sliding_offset,
                    self.index.data_stride,
                )
                key = (record.sid, start)
                if key in seen:
                    stats.duplicates_suppressed += 1
                    continue
                seen.add(key)
                if not candidate_in_bounds(
                    start,
                    window_set.length,
                    store.length(record.sid),
                ):
                    continue
                try:
                    values = store.get_subsequence(
                        record.sid, start, window_set.length
                    )
                except StorageError as error:
                    if on_fault == "raise":
                        raise
                    stats.faults_skipped += 1
                    report.record(error, candidate=key)
                    continue
                if norm is not None:
                    # One transform serves LB_Keogh and DTW alike, the
                    # same discipline as CandidateEvaluator.
                    mu, sigma = norm.stats(record.sid, start)
                    values = znormalize(values, mu, sigma)
                stats.candidates += 1
                stats.lb_keogh_computations += 1
                if (
                    lb_keogh_pow(window_set.envelope, values, p)
                    > epsilon_pow
                ):
                    stats.pruned_by_lb_keogh += 1
                    if tracer.enabled:
                        tracer.metrics.counter(
                            "verify.lb_keogh_pruned"
                        ).inc()
                    continue
                stats.dtw_computations += 1
                if tracer.enabled:
                    with tracer.span(
                        "candidate.verify", sid=record.sid, start=start
                    ):
                        distance_pow = dtw_pow(
                            values,
                            window_set.query,
                            rho,
                            p=p,
                            threshold_pow=epsilon_pow,
                        )
                    metrics = tracer.metrics
                    metrics.counter("verify.dtw").inc()
                    if distance_pow > epsilon_pow:
                        metrics.counter("verify.dtw_abandoned").inc()
                else:
                    distance_pow = dtw_pow(
                        values,
                        window_set.query,
                        rho,
                        p=p,
                        threshold_pow=epsilon_pow,
                    )
                if distance_pow <= epsilon_pow:
                    matches.append(
                        Match(
                            distance=distance_pow ** (1.0 / p),
                            sid=record.sid,
                            start=start,
                            length=window_set.length,
                        )
                    )

    @staticmethod
    def _score_internal(
        node: "RStarNode",
        window: QueryWindow,
        window_norm: Optional[WindowNormalizer],
        seg_len: int,
        p: float,
    ) -> np.ndarray:
        """MINDIST of one internal node's entry rectangles."""
        entries = node.entries
        lows = np.stack([entry.low for entry in entries])
        highs = np.stack([entry.high for entry in entries])
        if window_norm is None:
            gap_pows, _far = batch_lower_bounds(
                window.paa_lower, window.paa_upper, lows, highs, seg_len, p
            )
        else:
            gap_pows, _far = batch_lower_bounds_znorm(
                window.paa_lower,
                window.paa_upper,
                lows,
                highs,
                window_norm.mu_range,
                window_norm.sigma_range,
                seg_len,
                p,
            )
        return gap_pows

    @staticmethod
    def _score_leaf(
        node: "RStarNode",
        window: QueryWindow,
        window_norm: Optional[WindowNormalizer],
        seg_len: int,
        p: float,
    ) -> np.ndarray:
        """LB_PAA of one leaf node's entry points."""
        entries = node.entries
        points = np.stack([entry.low for entry in entries])
        if window_norm is None:
            return lb_paa_pow_batch(
                window.paa_lower, window.paa_upper, points, seg_len, p
            )
        mus, sigmas = window_norm.leaf_stats(
            [entry.record for entry in entries]
        )
        return lb_paa_znorm_pow_batch(
            window.paa_lower,
            window.paa_upper,
            points,
            mus,
            sigmas,
            seg_len,
            p,
        )


def brute_force_range(
    store: SequenceStore,
    query: Sequence[float],
    epsilon: float,
    rho: int,
    p: float = 2.0,
    normalize: bool = False,
) -> List[Match]:
    """Exhaustive reference for range matching (tests only)."""
    array = np.ascontiguousarray(query, dtype=np.float64)
    norm_ctx: Optional[NormalizationContext] = None
    if normalize:
        norm_ctx = NormalizationContext(store, int(array.size))
        array = np.ascontiguousarray(znormalize(array))
    epsilon_pow = epsilon**p
    results: List[Match] = []
    for sid, values in store.iter_sequences():
        for start in range(values.size - array.size + 1):
            window_values = values[start : start + array.size]
            if norm_ctx is not None:
                mu, sigma = norm_ctx.stats(sid, start)
                window_values = znormalize(window_values, mu, sigma)
            distance_pow = dtw_pow(window_values, array, rho, p=p)
            if distance_pow <= epsilon_pow:
                results.append(
                    Match(
                        distance=distance_pow ** (1.0 / p),
                        sid=sid,
                        start=start,
                        length=int(array.size),
                    )
                )
    results.sort()
    return results
