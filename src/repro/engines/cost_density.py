"""RU-COST: cost-aware density-based scheduling with selective expansion.

Implements Section 4 of the paper.  For each priority queue the
*cost-aware density* (Definition 7) is::

              alpha * NUM_IO(le_1..le_h) + beta * h
    CDens = ------------------------------------------
              LB_PAA(le_h)  -  LB_PAA(le_p)

where ``le_1..le_h`` are the queue's next ``h`` leaf entries, ``le_p``
the last popped leaf entry, and ``NUM_IO`` counts candidate pages that
would miss the buffer (probed through the residence bitmap, never read).
Popping from the *least dense* queue grows the MSEQ-distance fastest per
unit of I/O — the fix for the MDMWP scheduling problem.

Computing ``CDens`` exactly requires knowing the next ``h`` leaf
entries, which may hide behind unexpanded MBRs.  The scheduler therefore:

1. picks a **pivot** queue by a cheap density estimate built from the
   ``[MINDIST, MAXDIST]`` ranges already carried by queue entries
   (uniform-distribution assumption, as in the paper);
2. resolves the pivot's exact ``CDens`` (expanding only its own nodes);
3. for every other queue computes ``LB_CDens`` (Definition 8) from the
   *current* queue contents — a proven lower bound (Lemma 7) — and
   **selectively expands** only queues whose bound stays below the
   pivot's density, adopting any queue whose exact density beats the
   pivot.

The lookahead ``h`` defaults to the index blocking factor, which the
paper found uniformly stable; ``adaptive_h`` enables the
start-small-and-grow variant the paper mentions as future work
(ablation benches exercise both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.lower_bounds import root
from repro.core.windows import candidate_in_bounds, candidate_start
from repro.engines.queues import LEAF, NODE, QueueEntry, WindowQueue
from repro.exceptions import ConfigurationError
from repro.index.rstar import LeafRecord
from repro.storage.sequences import SequenceStore

#: A density key: (density value, denominator).  Comparison is
#: lexicographic — the paper breaks zero-density ties on the smaller
#: denominator.
DensityKey = Tuple[float, float]

_WORST: DensityKey = (math.inf, math.inf)


@dataclass(frozen=True)
class CostDensityConfig:
    """Tuning knobs for RU-COST (paper defaults: alpha=1, beta=0)."""

    alpha: float = 1.0
    beta: float = 0.0
    #: Lookahead depth ``h``; ``None`` means the index blocking factor.
    lookahead_h: Optional[int] = None
    #: Start with ``h = 1`` and double per selection up to the blocking
    #: factor (the paper's future-work adaptive variant; ablation only).
    adaptive_h: bool = False
    #: Disable to fall back to exact densities everywhere (ablation).
    selective_expansion: bool = True
    #: Node expansions the scheduler may perform per queue per select
    #: call.  Bounds the scheduling overhead: at scale the expansions
    #: amortise (expanded entries stay in the queue), while on small
    #: workloads the *effective* lookahead simply shrinks below ``h``
    #: instead of force-expanding every queue.
    max_expansions_per_select: int = 1
    #: Pops consumed from a selected queue before densities are
    #: re-evaluated (see CostAwareStrategy).
    sticky_pops: int = 12

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError(
                f"alpha/beta must be non-negative, got {self.alpha}, "
                f"{self.beta}"
            )
        if self.lookahead_h is not None and self.lookahead_h < 1:
            raise ConfigurationError(
                f"lookahead_h must be >= 1, got {self.lookahead_h}"
            )
        if self.max_expansions_per_select < 0:
            raise ConfigurationError(
                f"max_expansions_per_select must be >= 0, got "
                f"{self.max_expansions_per_select}"
            )


class CostAwareDensityScheduler:
    """Selects the next queue to pop using cost-aware densities."""

    def __init__(
        self,
        store: SequenceStore,
        query_length: int,
        omega: int,
        blocking_factor: int,
        p: float,
        config: CostDensityConfig,
        cap_for: Callable[[WindowQueue], float],
    ) -> None:
        self._store = store
        self._query_length = query_length
        self._omega = omega
        self._p = p
        self._config = config
        self._cap_for = cap_for
        self._h_max = (
            config.lookahead_h
            if config.lookahead_h is not None
            else blocking_factor
        )
        self._h_current = 1 if config.adaptive_h else self._h_max
        # Per-queue caches keyed by id(queue); values carry the queue
        # version (and lookahead) they were computed under.
        self._lb_cache: Dict[int, Tuple[int, int, DensityKey]] = {}
        self._exact_cache: Dict[int, Tuple[int, int, DensityKey, int]] = {}
        self._approx_cache: Dict[int, Tuple[int, float]] = {}
        self._prefix_cache: Dict[int, Tuple[int, int, tuple]] = {}
        # Candidate-page layout is immutable per (sid, window, offset).
        self._pages_cache: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def select(self, queues: Sequence[WindowQueue]) -> WindowQueue:
        """Choose the queue to pop next (Section 4's RU-COST policy)."""
        live = [queue for queue in queues if not queue.is_empty]
        if not live:
            raise ConfigurationError("select() called with no live queues")
        if len(live) == 1:
            return live[0]
        h = self._advance_h()

        if not self._config.selective_expansion:
            # Ablation path: exact density everywhere.
            return min(live, key=lambda queue: self._exact_cdens(queue, h))

        pivot = min(live, key=self._approx_density)
        pivot_key, resolved = self._exact_cdens_resolved(pivot, h)
        # Compare every queue at the lookahead the pivot actually
        # resolved within its expansion budget; on large workloads this
        # is ``h`` itself, on small ones it degrades gracefully.
        h_eff = max(1, min(h, resolved))
        improved = True
        while improved:
            improved = False
            for queue in live:
                if queue is pivot or queue.is_empty:
                    continue
                budget = self._config.max_expansions_per_select
                while self._lb_cdens(queue, h_eff) < pivot_key:
                    if self._prefix_resolved(queue, h_eff):
                        exact_key = self._exact_cdens(queue, h_eff)
                        if exact_key < pivot_key:
                            pivot, pivot_key = queue, exact_key
                            improved = True
                        break
                    if budget <= 0:
                        break
                    if not queue.expand_first_node(self._cap_for(queue)):
                        break
                    budget -= 1
                    if queue.is_empty:
                        break
        if pivot.is_empty:
            # Expansion pruning may have emptied the pivot; fall back to
            # any surviving queue with the best bound.
            survivors = [queue for queue in live if not queue.is_empty]
            if not survivors:
                return live[0]
            return min(
                survivors, key=lambda queue: self._lb_cdens(queue, h_eff)
            )
        return pivot

    def _advance_h(self) -> int:
        if not self._config.adaptive_h:
            return self._h_max
        h = self._h_current
        self._h_current = min(self._h_max, self._h_current * 2)
        return h

    # ------------------------------------------------------------------
    # NUM_IO — bitmap-based candidate page counting
    # ------------------------------------------------------------------

    def _candidate_pages(
        self, record: LeafRecord, sliding_offset: int
    ) -> Tuple[int, ...]:
        key = (record.sid, record.window_index, sliding_offset)
        cached = self._pages_cache.get(key)
        if cached is not None:
            return cached
        start = candidate_start(
            record.window_index, sliding_offset, self._omega
        )
        if not candidate_in_bounds(
            start, self._query_length, self._store.length(record.sid)
        ):
            pages: Tuple[int, ...] = ()
        else:
            pages = tuple(
                self._store.pages_for_range(
                    record.sid, start, self._query_length
                )
            )
        self._pages_cache[key] = pages
        return pages

    def _num_io(
        self, leaves: Sequence[QueueEntry], sliding_offset: int
    ) -> int:
        pages: Set[int] = set()
        for _dist, _seq, _kind, payload, _far in leaves:
            pages.update(
                self._candidate_pages(payload, sliding_offset)
            )  # type: ignore[arg-type]
        return self._store.buffer.count_non_resident(pages)

    # ------------------------------------------------------------------
    # Density computations
    # ------------------------------------------------------------------

    def _density_key(self, cost: float, denominator: float) -> DensityKey:
        if denominator <= 1e-12:
            # Zero spread: infinitely dense unless also zero cost, in
            # which case the smallest-denominator tie-break applies.
            return (math.inf, 0.0) if cost > 0 else (0.0, 0.0)
        return (cost / denominator, denominator)

    def _scan_prefix(
        self, queue: WindowQueue, h: int
    ) -> Tuple[List[QueueEntry], bool, List[QueueEntry]]:
        """Scan sorted entries until ``h`` leaves are seen.

        Returns ``(leaves, saw_node_before_hth_leaf, pre_node_leaves)``
        where ``pre_node_leaves`` are leaves ordered before the first
        node entry (Definition 8's ``le'_1..le'_{m-1}``).
        """
        cached = self._prefix_cache.get(id(queue))
        if (
            cached is not None
            and cached[0] == queue.version
            and cached[1] == h
        ):
            return cached[2]  # type: ignore[return-value]
        result = self._scan_prefix_uncached(queue, h)
        self._prefix_cache[id(queue)] = (queue.version, h, result)
        return result

    def _scan_prefix_uncached(
        self, queue: WindowQueue, h: int
    ) -> Tuple[List[QueueEntry], bool, List[QueueEntry]]:
        limit = max(2 * h, 8)
        while True:
            prefix = queue.sorted_prefix(limit)
            leaves: List[QueueEntry] = []
            pre_node_leaves: List[QueueEntry] = []
            saw_node = False
            for entry in prefix:
                if entry[2] == NODE:
                    saw_node = True
                else:
                    leaves.append(entry)
                    if not saw_node:
                        pre_node_leaves.append(entry)
                    if len(leaves) == h:
                        return leaves, saw_node, pre_node_leaves
            if len(prefix) >= len(queue):
                return leaves, saw_node, pre_node_leaves
            limit *= 2

    def _prefix_resolved(self, queue: WindowQueue, h: int) -> bool:
        """True when no node entry hides among the next ``h`` leaves."""
        leaves, saw_node, _pre = self._scan_prefix(queue, h)
        if len(leaves) < h:
            # Fewer than h leaves known; resolved only if no nodes remain.
            return not any(
                entry[2] == NODE for entry in queue.iter_entries()
            )
        return not saw_node

    def _density_from_leaves(
        self, queue: WindowQueue, leaves: Sequence[QueueEntry]
    ) -> DensityKey:
        if not leaves:
            return _WORST
        offset = queue.window.sliding_offset
        cost = (
            self._config.alpha * self._num_io(leaves, offset)
            + self._config.beta * len(leaves)
        )
        denominator = root(leaves[-1][0], self._p) - root(
            queue.last_popped_leaf_pow, self._p
        )
        return self._density_key(cost, denominator)

    def _exact_cdens_resolved(
        self, queue: WindowQueue, h: int
    ) -> Tuple[DensityKey, int]:
        """Definition 7 under the expansion budget.

        Expands the queue's own nearest nodes (counted I/O, at most
        ``max_expansions_per_select``) until the top-``h`` leaf entries
        are in the clear or the budget runs out, then evaluates the
        density over the leaves actually resolved.  Returns the density
        key and the resolved leaf count (the effective lookahead).
        """
        cached = self._exact_cache.get(id(queue))
        if (
            cached is not None
            and cached[0] == queue.version
            and cached[1] == h
        ):
            return cached[2], cached[3]
        budget = self._config.max_expansions_per_select
        while budget > 0 and not self._prefix_resolved(queue, h):
            if not queue.expand_first_node(self._cap_for(queue)):
                break
            budget -= 1
            if queue.is_empty:
                break
        # Leaves before the first remaining node are the pops whose
        # order is already final (Lemma 7's argument).
        leaves, saw_node, pre_node_leaves = self._scan_prefix(queue, h)
        resolved = pre_node_leaves if saw_node else leaves
        key = self._density_from_leaves(queue, resolved)
        self._exact_cache[id(queue)] = (
            queue.version,
            h,
            key,
            len(resolved),
        )
        return key, len(resolved)

    def _exact_cdens(self, queue: WindowQueue, h: int) -> DensityKey:
        """Density over the resolvable lookahead (budgeted Definition 7)."""
        key, _resolved = self._exact_cdens_resolved(queue, h)
        return key

    def _lb_cdens(self, queue: WindowQueue, h: int) -> DensityKey:
        """Definition 8 — a lower bound on :meth:`_exact_cdens` (Lemma 7)."""
        cached = self._lb_cache.get(id(queue))
        if (
            cached is not None
            and cached[0] == queue.version
            and cached[1] == h
        ):
            return cached[2]
        leaves, _saw_node, pre_node_leaves = self._scan_prefix(queue, h)
        if len(leaves) < h and any(
            entry[2] == NODE for entry in queue.iter_entries()
        ):
            # The h-th leaf is unknown and could be arbitrarily far, so
            # the only safe lower bound is zero density (expansion
            # pressure); the per-select expansion budget keeps this from
            # degenerating into full expansion.
            key: DensityKey = (0.0, math.inf)
        elif not leaves:
            key = _WORST
        else:
            offset = queue.window.sliding_offset
            cost = (
                self._config.alpha * self._num_io(pre_node_leaves, offset)
                + self._config.beta * h
            )
            denominator = root(leaves[-1][0], self._p) - root(
                queue.last_popped_leaf_pow, self._p
            )
            key = self._density_key(cost, denominator)
        self._lb_cache[id(queue)] = (queue.version, h, key)
        return key

    # ------------------------------------------------------------------
    # Pivot approximation (no expansion, no I/O)
    # ------------------------------------------------------------------

    def _approx_density(self, queue: WindowQueue) -> float:
        """Estimate density from [MINDIST, MAXDIST] ranges.

        Every node entry is assumed to hold ``h_max`` leaf entries spread
        uniformly over its distance range (the paper's uniformity
        assumption); leaf entries count as themselves.  The estimated
        distance of the ``h``-th leaf gives the density denominator; the
        numerator is the pessimistic ``alpha * h + beta * h``.
        """
        cached = self._approx_cache.get(id(queue))
        if cached is not None and cached[0] == queue.version:
            return cached[1]
        h = self._h_max
        # Only the nearest entries can shape the h-th-leaf estimate; a
        # bounded prefix keeps the estimator O(h log n) per refresh.
        prefix = queue.sorted_prefix(max(4 * h, 16))
        ranges: List[Tuple[float, float, float]] = []
        for dist_pow, _seq, kind, _payload, far_pow in prefix:
            low = root(dist_pow, self._p)
            high = low if kind == LEAF else root(far_pow, self._p)
            count = 1.0 if kind == LEAF else float(self._h_max)
            ranges.append((low, high, count))
        estimate = self._estimate_hth_distance(ranges, h)
        anchor = root(queue.last_popped_leaf_pow, self._p)
        spread = estimate - anchor
        if spread <= 1e-12:
            value = math.inf
        else:
            value = (
                self._config.alpha * h + self._config.beta * h
            ) / spread
        self._approx_cache[id(queue)] = (queue.version, value)
        return value

    @staticmethod
    def _estimate_hth_distance(
        ranges: List[Tuple[float, float, float]], h: int
    ) -> float:
        """Distance at which the expected leaf count reaches ``h``.

        ``ranges`` holds ``(low, high, expected_count)`` triples with
        counts assumed uniform over ``[low, high]``.
        """
        if not ranges:
            return math.inf
        # Sweep over endpoints, maintaining the total density (count per
        # unit distance) of the ranges active at the sweep position.
        events: List[Tuple[float, float]] = []  # (position, density delta)
        point_mass: List[Tuple[float, float]] = []  # degenerate ranges
        for low, high, count in ranges:
            if high <= low or not math.isfinite(high):
                # Degenerate or unbounded range (e.g. the root entry,
                # whose MAXDIST is unknown): treat the expected leaves
                # as sitting at the lower edge — conservative for pivot
                # selection.
                point_mass.append((low, count))
                continue
            density = count / (high - low)
            events.append((low, density))
            events.append((high, -density))
        events.sort()
        point_mass.sort()

        mass = 0.0
        density = 0.0
        position = events[0][0] if events else point_mass[0][0]
        event_index = 0
        point_index = 0
        while event_index < len(events) or point_index < len(point_mass):
            next_event = (
                events[event_index][0]
                if event_index < len(events)
                else math.inf
            )
            next_point = (
                point_mass[point_index][0]
                if point_index < len(point_mass)
                else math.inf
            )
            target = min(next_event, next_point)
            if density > 0.0 and target > position:
                gained = density * (target - position)
                if mass + gained >= h:
                    return position + (h - mass) / density
                mass += gained
            position = max(position, target)
            if next_point <= next_event:
                mass += point_mass[point_index][1]
                point_index += 1
            else:
                density += events[event_index][1]
                event_index += 1
            if mass >= h:
                return position
        return position
