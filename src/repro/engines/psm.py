"""PSM: the adapted progressive/selective merge baseline (Xin et al. [22]).

PSM answers top-k queries with *ad-hoc, non-monotonic* ranking functions
by progressively merging several indexes: a **join state** holds one
component per index, states are popped in increasing combined-lower-bound
order, and **join signatures** — membership probes against a bloom filter
— discard states that cannot produce any joinable result.

Adaptation to ranked subsequence matching (as in the paper's Experiment
6, which treats each disjoint query window as one joining index):

* The query is cut into ``n = Len(Q) // omega`` **disjoint** windows;
  each acts as one join attribute.
* Data sequences are indexed FRM-style [7]: every **sliding** window is
  PAA-transformed and stored in an R*-tree (:func:`build_sliding_index`),
  so that disjoint query windows can align at arbitrary candidate
  offsets.  The join condition is alignment: component ``t`` must hit
  the window at offset ``start + t * omega`` of the same sequence.
* The bloom filter is populated with every indexed ``(sid, offset)``
  key; expanding a node probes, for each new state, the keys its fixed
  leaf components require from the still-unresolved components.  Each
  expansion of a fan-out-``f`` node in an ``n``-way join issues up to
  ``f * (n - 1)`` probes — the ``f^n`` signature blow-up the paper
  reports for ``n > 3`` falls out of the state tree.

The final all-leaf alignment check is exact, so bloom false positives
never corrupt the result; exactness additionally requires the sliding
index to be built with ``stride=1``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lower_bounds import (
    batch_lower_bounds,
    batch_lower_bounds_znorm,
    lb_paa_pow_batch,
    lb_paa_znorm_pow_batch,
)
from repro.core.normalize import WindowNormalizer
from repro.core.paa import segment_length
from repro.core.windows import (
    QueryWindow,
    QueryWindowSet,
    candidate_in_bounds,
)
from repro.engines.base import CandidateEvaluator, Engine, EngineConfig
from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    StorageError,
)
from repro.index.bloom import BloomFilter
from repro.index.rstar import LeafRecord, RStarNode, RStarTree
from repro.storage.sequences import SequenceStore

_NODE = 0
_LEAF = 1

#: A join-state component: (kind, payload, dist_pow) where payload is a
#: node page id or a LeafRecord whose ``window_index`` field holds the
#: sliding-window *offset*.
Component = Tuple[int, object, float]

#: Heap entry of the best-first join: (score ** p, tiebreak, state).
JoinHeapEntry = Tuple[float, int, Tuple[Component, ...]]


@dataclass
class SlidingWindowIndex:
    """FRM-style index: every sliding data window as an R*-tree point.

    Structurally compatible with
    :class:`~repro.index.builder.DualMatchIndex` (same attribute set) so
    the shared engine template can drive candidate evaluation, but leaf
    records carry sliding-window **offsets**, not disjoint-window
    numbers.
    """

    tree: RStarTree
    store: SequenceStore
    omega: int
    features: int
    bloom: BloomFilter
    stride: int = 1
    p: float = 2.0

    @property
    def seg_len(self) -> int:
        return segment_length(self.omega, self.features)


def build_sliding_index(
    store: SequenceStore,
    omega: int,
    features: int,
    stride: int = 1,
    p: float = 2.0,
    max_entries: Optional[int] = None,
    bulk: bool = True,
) -> SlidingWindowIndex:
    """Index every sliding window of every sequence (offline build).

    ``stride > 1`` subsamples offsets and breaks the no-false-dismissal
    guarantee; it exists only for index-size experiments.  ``bulk``
    selects STR packing (default) versus one-at-a-time insertion.
    """
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")
    from repro.core.paa import paa  # local import avoids cycle at startup

    tree = RStarTree(
        pager=store.pager,
        buffer=store.buffer,
        dimensions=features,
        max_entries=max_entries,
    )
    expected = max(1, store.total_values // stride)
    bloom = BloomFilter.with_capacity(expected)
    points = []
    records = []
    for sid, values in store.iter_sequences():
        seg = values.size - omega + 1
        for offset in range(0, seg, stride):
            points.append(paa(values[offset : offset + omega], features))
            records.append(LeafRecord(sid=sid, window_index=offset))
            bloom.add((sid, offset))
    if bulk and points:
        tree.bulk_load(points, records)
    else:
        for point, record in zip(points, records):
            tree.insert(point, record)
    return SlidingWindowIndex(
        tree=tree,
        store=store,
        omega=omega,
        features=features,
        bloom=bloom,
        stride=stride,
        p=p,
    )


class PsmEngine(Engine):
    """Progressive index-merge top-k matching over disjoint query windows.

    Parameters
    ----------
    index:
        A :func:`build_sliding_index` result.
    max_heap_pops:
        Optional budget on join-state pops (PSM's state space explodes
        for many-window queries — the paper reports it "cannot finish
        with reasonable times" beyond 4-way joins and caps its own runs
        at ``Len(Q) = 256``).
    budget_action:
        What to do when the budget is hit: ``"raise"`` (default) raises
        :class:`~repro.exceptions.BudgetExceededError`; ``"stop"`` ends
        the search gracefully, marking ``stats.budget_exhausted`` — the
        returned matches are then a best-effort result, **not exact**,
        and the benchmarks report such cells as lower bounds.
    """

    name = "PSM"

    def __init__(
        self,
        index: SlidingWindowIndex,
        max_heap_pops: Optional[int] = None,
        budget_action: str = "raise",
    ) -> None:
        super().__init__(index)  # type: ignore[arg-type]
        if budget_action not in ("raise", "stop"):
            raise ConfigurationError(
                f"budget_action must be 'raise' or 'stop', got "
                f"{budget_action!r}"
            )
        self.max_heap_pops = max_heap_pops
        self.budget_action = budget_action

    def _run(
        self,
        window_set: QueryWindowSet,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        index: SlidingWindowIndex = self.index  # type: ignore[assignment]
        omega = index.omega
        num_joins = window_set.length // omega
        # Disjoint query windows live at sliding offsets 0, omega, ... —
        # exactly the mseq_position-th windows of class 0.
        join_windows = [
            window_set.window_at(t * omega) for t in range(num_joins)
        ]
        seg_len = index.seg_len
        stats = evaluator.stats
        tree = index.tree
        tiebreak = itertools.count()

        root_state: Tuple[Component, ...] = tuple(
            (_NODE, tree.root_page, 0.0) for _ in range(num_joins)
        )
        heap: List[JoinHeapEntry] = [(0.0, next(tiebreak), root_state)]
        budget = evaluator.control
        tracer = evaluator.tracer

        while heap:
            # Join states pop in non-decreasing combined-lower-bound
            # order, so the top score bounds every unexamined candidate.
            budget.checkpoint(heap[0][0])
            score_pow, _seq, state = heapq.heappop(heap)
            stats.heap_pops += 1
            if (
                self.max_heap_pops is not None
                and stats.heap_pops > self.max_heap_pops
            ):
                if self.budget_action == "stop":
                    stats.budget_exhausted = 1
                    break
                raise BudgetExceededError(
                    f"PSM exceeded {self.max_heap_pops} state pops "
                    f"({num_joins}-way join)"
                )
            if score_pow > evaluator.threshold_pow:
                break
            expand_at = next(
                (
                    position
                    for position, component in enumerate(state)
                    if component[0] == _NODE
                ),
                None,
            )
            if expand_at is None:
                self._emit_candidate(state, window_set, evaluator, score_pow)
                continue
            if tracer.enabled:
                tracer.metrics.histogram("queue.depth").observe(
                    len(heap) + 1
                )
                with tracer.span(
                    "engine.heap_pop", kind="state", expand_at=expand_at
                ):
                    self._expand_state(
                        heap,
                        tiebreak,
                        state,
                        score_pow,
                        expand_at,
                        join_windows,
                        seg_len,
                        evaluator,
                        config,
                    )
            else:
                self._expand_state(
                    heap,
                    tiebreak,
                    state,
                    score_pow,
                    expand_at,
                    join_windows,
                    seg_len,
                    evaluator,
                    config,
                )

    def _expand_state(
        self,
        heap: List[JoinHeapEntry],
        tiebreak: Iterator[int],
        state: Tuple[Component, ...],
        score_pow: float,
        expand_at: int,
        join_windows: Sequence[QueryWindow],
        seg_len: int,
        evaluator: CandidateEvaluator,
        config: EngineConfig,
    ) -> None:
        index: SlidingWindowIndex = self.index  # type: ignore[assignment]
        page_id = state[expand_at][1]
        try:
            node = index.tree.read_node(page_id)
        except StorageError as error:
            # Degrade: this join state (and every state it would spawn)
            # is dropped; other states keep merging.
            evaluator.fault(error, page_id=page_id)  # type: ignore[arg-type]
            return
        evaluator.stats.node_expansions += 1
        window = join_windows[expand_at]
        old_pow = state[expand_at][2]
        threshold_pow = evaluator.threshold_pow
        entries = node.entries
        if not entries:
            return
        # Sliding leaf records hold raw offsets (stride 1), so the
        # candidate a record implies under this join window starts at
        # ``offset - sliding_offset`` — aligned states therefore score
        # every component under the *same* candidate stats.
        norm = (
            None
            if evaluator.norm is None
            else evaluator.norm.for_window(window.sliding_offset, 1)
        )
        tracer = evaluator.tracer
        if tracer.enabled:
            with tracer.span(
                "engine.lb_batch", n=len(entries), leaf=node.is_leaf
            ):
                dist_pows = self._score_node(
                    node, window, seg_len, config, norm
                )
            tracer.metrics.histogram("lb.batch_size").observe(len(entries))
        else:
            dist_pows = self._score_node(node, window, seg_len, config, norm)
        for entry, dist_pow in zip(entries, dist_pows.tolist()):
            if node.is_leaf:
                component: Component = (_LEAF, entry.record, dist_pow)
            else:
                component = (_NODE, entry.child_page, dist_pow)
            new_score = score_pow - old_pow + dist_pow
            if new_score > threshold_pow:
                continue
            new_state = (
                state[:expand_at] + (component,) + state[expand_at + 1 :]
            )
            if not self._signature_allows(new_state, evaluator):
                continue
            heapq.heappush(heap, (new_score, next(tiebreak), new_state))

    @staticmethod
    def _score_node(
        node: RStarNode,
        window: QueryWindow,
        seg_len: int,
        config: EngineConfig,
        norm: Optional[WindowNormalizer] = None,
    ) -> np.ndarray:
        """Score a node's entries with one batched kernel call.

        The push loop keeps storage order and per-survivor tie-break
        draws, so join-state order is unchanged versus scoring one
        entry at a time.
        """
        entries = node.entries
        if node.is_leaf:
            points = np.stack([entry.low for entry in entries])
            if norm is None:
                return lb_paa_pow_batch(
                    window.paa_lower,
                    window.paa_upper,
                    points,
                    seg_len,
                    config.p,
                )
            mus, sigmas = norm.leaf_stats(
                [entry.record for entry in entries]
            )
            return lb_paa_znorm_pow_batch(
                window.paa_lower,
                window.paa_upper,
                points,
                mus,
                sigmas,
                seg_len,
                config.p,
            )
        lows = np.stack([entry.low for entry in entries])
        highs = np.stack([entry.high for entry in entries])
        if norm is None:
            dist_pows, _far = batch_lower_bounds(
                window.paa_lower,
                window.paa_upper,
                lows,
                highs,
                seg_len,
                config.p,
            )
        else:
            dist_pows, _far = batch_lower_bounds_znorm(
                window.paa_lower,
                window.paa_upper,
                lows,
                highs,
                norm.mu_range,
                norm.sigma_range,
                seg_len,
                config.p,
            )
        return dist_pows

    def _signature_allows(
        self, state: Tuple[Component, ...], evaluator: CandidateEvaluator
    ) -> bool:
        """Join-signature screening (bloom probes are counted).

        Every resolved (leaf) component implies the exact key each other
        component must eventually produce; leaf/leaf conflicts are exact
        checks, leaf/node requirements are bloom probes.
        """
        index: SlidingWindowIndex = self.index  # type: ignore[assignment]
        omega = index.omega
        anchor: Optional[Tuple[int, int, int]] = None  # (pos, sid, offset)
        for position, (kind, payload, _dist) in enumerate(state):
            if kind != _LEAF:
                continue
            record: LeafRecord = payload  # type: ignore[assignment]
            if anchor is None:
                anchor = (position, record.sid, record.window_index)
                continue
            expected = anchor[2] + (position - anchor[0]) * omega
            if record.sid != anchor[1] or record.window_index != expected:
                return False
        if anchor is None:
            return True
        anchor_pos, sid, offset = anchor
        bloom = index.bloom
        stats = evaluator.stats
        for position, (kind, _payload, _dist) in enumerate(state):
            if kind == _LEAF:
                continue
            required = (sid, offset + (position - anchor_pos) * omega)
            stats.bloom_calls += 1
            if not bloom.might_contain(required):
                return False
        return True

    def _emit_candidate(
        self,
        state: Tuple[Component, ...],
        window_set: QueryWindowSet,
        evaluator: CandidateEvaluator,
        score_pow: float,
    ) -> None:
        index: SlidingWindowIndex = self.index  # type: ignore[assignment]
        omega = index.omega
        first: LeafRecord = state[0][1]  # type: ignore[assignment]
        sid = first.sid
        start = first.window_index
        for position, (_kind, payload, _dist) in enumerate(state):
            record: LeafRecord = payload  # type: ignore[assignment]
            if (
                record.sid != sid
                or record.window_index != start + position * omega
            ):
                return  # exact alignment check (bloom false positive)
        if not candidate_in_bounds(
            start, window_set.length, index.store.length(sid)
        ):
            return
        evaluator.submit(sid, start, score_pow)
