"""repro — ranked subsequence matching via ranked union.

A from-scratch reproduction of Han, Lee, Moon, Hwang, Yu,
*A New Approach for Processing Ranked Subsequence Matching Based on
Ranked Union* (SIGMOD 2011): exact top-k subsequence search under
banded dynamic time warping, evaluated as a ranked union over matching
subsequence equivalence classes with cost-aware density-based
scheduling (RU-COST), together with the baselines the paper compares
against (SeqScan, HLMJ, adapted PSM) and every substrate they need
(paged storage with an LRU buffer pool, an R*-tree, the
LB_Keogh / LB_PAA lower-bound stack, DualMatch windowing, deferred
retrieval).

Quickstart::

    import numpy as np
    from repro import SubsequenceDatabase

    db = SubsequenceDatabase(omega=64, features=4)
    db.insert(0, np.cumsum(np.random.standard_normal(100_000)))
    db.build()
    result = db.search(query, k=25, method="ru-cost", deferred=True)
"""

from repro.api import MatchStream, SubsequenceDatabase
from repro.control import (
    AdmissionController,
    CancellationToken,
    Deadline,
    ExecutionControl,
    QueryBudget,
)
from repro.core.clock import Clock, FakeClock, MonotonicClock
from repro.core.distance import dtw_distance, lp_distance
from repro.core.envelope import Envelope, query_envelope
from repro.core.metrics import QueryStats
from repro.core.results import Match
from repro.engines.base import (
    EngineConfig,
    FaultReport,
    PartialResult,
    SearchResult,
)
from repro.engines.cost_density import CostDensityConfig
from repro.exceptions import (
    AdmissionRejectedError,
    CircuitOpenError,
    ConfigurationError,
    CorruptPageError,
    ExecutionInterrupted,
    IntegrityError,
    PartialSaveError,
    ProtocolError,
    ReproError,
    ServiceOverloadedError,
    StorageError,
    TransientIOError,
)
from repro.serve import (
    QosClass,
    QueryRequest,
    QueryService,
    ServeClient,
    ServiceConfig,
    ServiceResponse,
    SocketServer,
    TenantPolicy,
)
from repro.shard import (
    ShardedDatabase,
    ShardedMatchStream,
    ShardedPartialResult,
    ShardedSearchResult,
    ShardPlan,
    ShardPlanner,
)
from repro.storage.backends import (
    FileBackend,
    MmapBackend,
    StorageBackend,
    resolve_backend,
)
from repro.storage.buffer import RetryPolicy
from repro.storage.circuit import CircuitBreaker
from repro.storage.faults import FaultInjector, FaultSpec, FaultyPager

__version__ = "1.9.0"

__all__ = [
    "SubsequenceDatabase",
    "ShardedDatabase",
    "ShardedMatchStream",
    "ShardedPartialResult",
    "ShardedSearchResult",
    "ShardPlan",
    "ShardPlanner",
    "SearchResult",
    "PartialResult",
    "MatchStream",
    "EngineConfig",
    "CostDensityConfig",
    "Match",
    "QueryStats",
    "Envelope",
    "query_envelope",
    "dtw_distance",
    "lp_distance",
    "QueryBudget",
    "Deadline",
    "CancellationToken",
    "ExecutionControl",
    "AdmissionController",
    "CircuitBreaker",
    "QosClass",
    "QueryRequest",
    "QueryService",
    "ServeClient",
    "ServiceConfig",
    "ServiceResponse",
    "SocketServer",
    "TenantPolicy",
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "ReproError",
    "ConfigurationError",
    "StorageError",
    "TransientIOError",
    "CorruptPageError",
    "IntegrityError",
    "PartialSaveError",
    "ExecutionInterrupted",
    "CircuitOpenError",
    "AdmissionRejectedError",
    "ProtocolError",
    "ServiceOverloadedError",
    "FaultInjector",
    "FaultSpec",
    "FaultyPager",
    "FaultReport",
    "RetryPolicy",
    "StorageBackend",
    "FileBackend",
    "MmapBackend",
    "resolve_backend",
    "__version__",
]
